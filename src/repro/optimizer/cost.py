"""A cardinality-based cost model and plan explainer.

The model estimates, for each node, the cardinality of its result and the
cumulative number of tuples *produced* while evaluating the tree (a proxy
for work under our set-at-a-time evaluator).  Cardinalities come from a
statistics mapping (relation identifier -> estimated tuple count) with
textbook default selectivities; a :class:`repro.optimizer.stats.Statistics`
object additionally prices rollback leaves by version-chain depth (the
reconstruction work a historical ``ρ(I, N)`` probe pays on a delta
backend).

Everything is computed in **one bottom-up pass** per tree
(:func:`analyze`): each distinct subtree's cardinality and cumulative
cost are established exactly once and reused by every parent.  The
public helpers :func:`estimate_cardinality`, :func:`estimate_cost` and
:func:`explain` all delegate to that pass, so pricing a chain of depth
*n* visits *n* nodes — not the *n²/2* the naive formulation
(``cost = card(root) + Σ cost(children)`` with ``card`` recomputed from
scratch at every level) pays.  :attr:`PlanAnalysis.node_visits` counts
the visits so the regression test can assert linearity without timing
anything.

This is intentionally simple: its job in the reproduction is to show that
rewrites the rules license reduce estimated *and measured* cost (benchmark
E4), not to be a state-of-the-art estimator.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Expression,
    Product,
    Project,
    Rename,
    Rollback,
    Select,
    Union,
)

__all__ = [
    "PlanAnalysis",
    "analyze",
    "estimate_cardinality",
    "estimate_cost",
    "explain",
]

#: Default selectivity of a selection predicate.
SELECT_SELECTIVITY = 0.33
#: Default duplicate-elimination factor for projections.
PROJECT_DEDUP = 0.9
#: Default cardinality for a rollback leaf with no statistics.
DEFAULT_RELATION_CARD = 100.0
#: Cost per recorded version of reaching back through a relation's
#: history — the reconstruction work a ``ρ(I, N)`` probe may pay on a
#: delta backend.  Charged only when the statistics carry version
#: counts (a plain ``{identifier: cardinality}`` dict never does).
VERSION_ACCESS_WEIGHT = 0.5

Stats = Mapping[str, float]


class PlanAnalysis:
    """Cardinality and cost for every distinct subtree of one plan.

    Produced by :func:`analyze` in a single bottom-up pass.  Shared
    subtrees are priced once; per-occurrence work still counts toward
    the parent's cumulative cost (our evaluator re-produces a shared
    subtree's tuples at each occurrence unless the compiled engine's
    CSE is in play, and the cost model prices the plain evaluator).
    """

    __slots__ = ("expression", "node_visits", "_cards", "_costs")

    def __init__(
        self,
        expression: Expression,
        cards: "dict[Expression, float]",
        costs: "dict[Expression, float]",
        node_visits: int,
    ) -> None:
        self.expression = expression
        #: Distinct subtrees priced during the pass — the unit the
        #: linear-cost regression test counts.
        self.node_visits = node_visits
        self._cards = cards
        self._costs = costs

    def cardinality(self, node: Optional[Expression] = None) -> float:
        """Estimated result cardinality of ``node`` (default: root)."""
        return self._cards[self.expression if node is None else node]

    def cost(self, node: Optional[Expression] = None) -> float:
        """Estimated cumulative tuples produced evaluating ``node``
        (default: root)."""
        return self._costs[self.expression if node is None else node]

    def __repr__(self) -> str:
        return (
            f"PlanAnalysis(cost={self.cost():.1f}, "
            f"card={self.cardinality():.1f}, "
            f"visits={self.node_visits})"
        )


def analyze(
    expression: Expression, stats: Optional[Stats] = None
) -> PlanAnalysis:
    """Price every distinct subtree in one bottom-up pass.

    Iterative post-order (explicit stack), so arbitrarily deep chains —
    the shape the Quel translator emits for long conjunctions — analyze
    without recursion and in time linear in the number of distinct
    subtrees.
    """
    stats = stats if stats is not None else {}
    version_count = getattr(stats, "version_count", None)
    cards: dict = {}
    costs: dict = {}
    visits = 0

    stack: "list[tuple[Expression, bool]]" = [(expression, False)]
    while stack:
        node, children_done = stack.pop()
        if node in cards:
            continue
        children = node.children()
        if not children_done and children:
            stack.append((node, True))
            for child in children:
                if child not in cards:
                    stack.append((child, False))
            continue
        if node in cards:  # a duplicate frame finished first
            continue
        visits += 1
        card = _node_cardinality(node, children, cards, stats)
        cost = card + sum(costs[child] for child in children)
        if version_count is not None and isinstance(node, Rollback):
            cost += VERSION_ACCESS_WEIGHT * version_count(
                node.identifier, 0
            )
        cards[node] = card
        costs[node] = cost

    return PlanAnalysis(expression, cards, costs, visits)


def _node_cardinality(
    node: Expression,
    children: "tuple[Expression, ...]",
    cards: "dict[Expression, float]",
    stats: Stats,
) -> float:
    """One node's output cardinality, given its children's."""
    if isinstance(node, Const):
        return float(len(node.state))
    if isinstance(node, Rollback):
        return float(stats.get(node.identifier, DEFAULT_RELATION_CARD))
    if isinstance(node, Union):
        return cards[node.left] + cards[node.right]
    if isinstance(node, Difference):
        return cards[node.left]
    if isinstance(node, Product):
        return cards[node.left] * cards[node.right]
    if isinstance(node, Select):
        return SELECT_SELECTIVITY * cards[node.operand]
    if isinstance(node, Project):
        return PROJECT_DEDUP * cards[node.operand]
    if isinstance(node, (Rename, Derive)):
        return cards[node.operand]
    return DEFAULT_RELATION_CARD


def estimate_cardinality(
    expression: Expression, stats: Optional[Stats] = None
) -> float:
    """Estimated result cardinality of the expression."""
    return analyze(expression, stats).cardinality()


def estimate_cost(
    expression: Expression, stats: Optional[Stats] = None
) -> float:
    """Estimated total tuples produced while evaluating the tree —
    the result cardinality of every node occurrence, summed."""
    return analyze(expression, stats).cost()


def explain(
    expression: Expression,
    stats: Optional[Stats] = None,
    indent: int = 0,
) -> str:
    """An EXPLAIN-style rendering of the tree with estimated
    cardinalities (one cost pass for the whole tree, then an iterative
    render — deep plans neither re-price nor recurse)."""
    analysis = analyze(expression, stats)
    lines: list = []
    stack: "list[tuple[Expression, int]]" = [(expression, indent)]
    while stack:
        node, depth = stack.pop()
        pad = "  " * depth
        label = _node_label(node)
        card = analysis.cardinality(node)
        lines.append(f"{pad}{label}  (≈{card:.0f} tuples)")
        for child in reversed(node.children()):
            stack.append((child, depth + 1))
    return "\n".join(lines)


def _node_label(expression: Expression) -> str:
    if isinstance(expression, Const):
        return f"Const[{len(expression.state)} tuples]"
    if isinstance(expression, Rollback):
        return f"Rollback[{expression.identifier} @ {expression.numeral!r}]"
    if isinstance(expression, Union):
        return "Union"
    if isinstance(expression, Difference):
        return "Difference"
    if isinstance(expression, Product):
        return "Product"
    if isinstance(expression, Select):
        return f"Select[{expression.predicate!r}]"
    if isinstance(expression, Project):
        return f"Project[{', '.join(expression.names)}]"
    if isinstance(expression, Rename):
        return "Rename"
    if isinstance(expression, Derive):
        return "Derive"
    return type(expression).__name__
