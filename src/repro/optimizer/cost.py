"""A cardinality-based cost model and plan explainer.

The model estimates, for each node, the cardinality of its result and the
cumulative number of tuples *produced* while evaluating the tree (a proxy
for work under our set-at-a-time evaluator).  Cardinalities come from a
statistics mapping (relation identifier -> estimated tuple count) with
textbook default selectivities.

This is intentionally simple: its job in the reproduction is to show that
rewrites the rules license reduce estimated *and measured* cost (benchmark
E4), not to be a state-of-the-art estimator.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Expression,
    Product,
    Project,
    Rename,
    Rollback,
    Select,
    Union,
)

__all__ = ["estimate_cardinality", "estimate_cost", "explain"]

#: Default selectivity of a selection predicate.
SELECT_SELECTIVITY = 0.33
#: Default duplicate-elimination factor for projections.
PROJECT_DEDUP = 0.9
#: Default cardinality for a rollback leaf with no statistics.
DEFAULT_RELATION_CARD = 100.0

Stats = Mapping[str, float]


def estimate_cardinality(
    expression: Expression, stats: Optional[Stats] = None
) -> float:
    """Estimated result cardinality of the expression."""
    stats = stats or {}
    if isinstance(expression, Const):
        return float(len(expression.state))
    if isinstance(expression, Rollback):
        return float(
            stats.get(expression.identifier, DEFAULT_RELATION_CARD)
        )
    if isinstance(expression, Union):
        return estimate_cardinality(
            expression.left, stats
        ) + estimate_cardinality(expression.right, stats)
    if isinstance(expression, Difference):
        return estimate_cardinality(expression.left, stats)
    if isinstance(expression, Product):
        return estimate_cardinality(
            expression.left, stats
        ) * estimate_cardinality(expression.right, stats)
    if isinstance(expression, Select):
        return SELECT_SELECTIVITY * estimate_cardinality(
            expression.operand, stats
        )
    if isinstance(expression, Project):
        return PROJECT_DEDUP * estimate_cardinality(
            expression.operand, stats
        )
    if isinstance(expression, (Rename, Derive)):
        return estimate_cardinality(expression.operand, stats)
    return DEFAULT_RELATION_CARD


def estimate_cost(
    expression: Expression, stats: Optional[Stats] = None
) -> float:
    """Estimated total tuples produced while evaluating the tree —
    the result cardinality of every node, summed."""
    stats = stats or {}
    total = estimate_cardinality(expression, stats)
    for child in expression.children():
        total += estimate_cost(child, stats)
    return total


def explain(
    expression: Expression,
    stats: Optional[Stats] = None,
    indent: int = 0,
) -> str:
    """An EXPLAIN-style rendering of the tree with estimated
    cardinalities."""
    stats = stats or {}
    pad = "  " * indent
    label = _node_label(expression)
    card = estimate_cardinality(expression, stats)
    lines = [f"{pad}{label}  (≈{card:.0f} tuples)"]
    for child in expression.children():
        lines.append(explain(child, stats, indent + 1))
    return "\n".join(lines)


def _node_label(expression: Expression) -> str:
    if isinstance(expression, Const):
        return f"Const[{len(expression.state)} tuples]"
    if isinstance(expression, Rollback):
        return f"Rollback[{expression.identifier} @ {expression.numeral!r}]"
    if isinstance(expression, Union):
        return "Union"
    if isinstance(expression, Difference):
        return "Difference"
    if isinstance(expression, Product):
        return "Product"
    if isinstance(expression, Select):
        return f"Select[{expression.predicate!r}]"
    if isinstance(expression, Project):
        return f"Project[{', '.join(expression.names)}]"
    if isinstance(expression, Rename):
        return "Rename"
    if isinstance(expression, Derive):
        return "Derive"
    return type(expression).__name__
