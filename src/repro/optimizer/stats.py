"""Per-relation statistics feeding the cost model.

The cost model in :mod:`repro.optimizer.cost` prices a plan from two
numbers per relation: the *cardinality* of its current state (how many
tuples a ``ρ(I, now)`` scan produces) and the *version-chain depth* (how
many states are recorded — the reconstruction work a historical
``ρ(I, N)`` probe may pay on a delta backend, and a proxy for how much
history a temporal query materializes).

:func:`collect_statistics` gathers both from whatever is actually
serving reads, using the O(1) metadata accessors the read-path engine
added (``latest_txn`` / ``version_count``) so collection never replays
history:

* a semantic :class:`~repro.core.database.Database` value — walks the
  relation state sequences directly;
* a :class:`~repro.storage.versioned_db.VersionedDatabase` or bare
  :class:`~repro.storage.backend.StorageBackend` — asks the backend;
* a :class:`~repro.lang.session.Session` — delegates to its current
  database value (which sharded and replica sessions already assemble).

Statistics are advisory by construction: every rewrite the optimizer
applies is a semantic identity, so stale statistics can only make a plan
slower, never wrong.  That is what lets sessions cache compiled plans
and refresh statistics lazily.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Statistics", "collect_statistics"]


class Statistics:
    """Cardinality and version-depth estimates per relation identifier.

    Implements the read side of the ``Mapping[str, float]`` protocol the
    cost functions historically accepted (``get``/``__getitem__``/
    ``__contains__`` over cardinalities), so a ``Statistics`` drops in
    anywhere a plain ``{identifier: cardinality}`` dict did, while also
    carrying version counts for the rollback-aware cost terms.
    """

    __slots__ = ("_cardinalities", "_version_counts", "_latest_txns")

    def __init__(
        self,
        cardinalities: Optional[dict] = None,
        version_counts: Optional[dict] = None,
        latest_txns: Optional[dict] = None,
    ) -> None:
        self._cardinalities = dict(cardinalities or {})
        self._version_counts = dict(version_counts or {})
        self._latest_txns = dict(latest_txns or {})

    # -- the Stats mapping protocol (cardinalities) --------------------------

    def get(self, identifier: str, default=None):
        return self._cardinalities.get(identifier, default)

    def __getitem__(self, identifier: str) -> float:
        return self._cardinalities[identifier]

    def __contains__(self, identifier: object) -> bool:
        return identifier in self._cardinalities

    def __iter__(self):
        return iter(self._cardinalities)

    def __len__(self) -> int:
        return len(self._cardinalities)

    def keys(self):
        return self._cardinalities.keys()

    def items(self):
        return self._cardinalities.items()

    # -- the version-aware extension ----------------------------------------

    def cardinality(self, identifier: str, default: float = 0.0) -> float:
        """Estimated tuple count of the relation's current state."""
        return self._cardinalities.get(identifier, default)

    def version_count(self, identifier: str, default: int = 0) -> int:
        """How many states the relation has recorded."""
        return self._version_counts.get(identifier, default)

    def latest_txn(self, identifier: str):
        """The newest installed transaction number, or None."""
        return self._latest_txns.get(identifier)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{identifier}: {int(card)}t/"
            f"{self._version_counts.get(identifier, 0)}v"
            for identifier, card in sorted(self._cardinalities.items())
        )
        return f"Statistics({parts})"


def collect_statistics(source) -> Statistics:
    """Gather :class:`Statistics` from a database-shaped object.

    Accepts a semantic ``Database``, a ``VersionedDatabase``, a bare
    ``StorageBackend``, or a lang ``Session`` (including sharded and
    replica sessions, whose ``database`` property assembles the global
    value).  Unknown sources yield empty statistics — the cost model
    falls back to its defaults.
    """
    # a lang Session (or anything session-shaped exposing .database)
    database = getattr(source, "database", None)
    if database is not None and hasattr(database, "state"):
        source = database
    # a VersionedDatabase wraps a backend
    backend = getattr(source, "backend", None)
    if backend is not None and hasattr(backend, "version_count"):
        source = backend

    if hasattr(source, "state") and hasattr(source, "require"):
        return _from_database(source)
    if hasattr(source, "identifiers") and hasattr(source, "state_at"):
        return _from_backend(source)
    return Statistics()


def _from_database(database) -> Statistics:
    cardinalities: dict = {}
    version_counts: dict = {}
    latest_txns: dict = {}
    for identifier in database.state:
        relation = database.require(identifier)
        state = relation.current_state
        cardinalities[identifier] = float(len(state))
        version_counts[identifier] = relation.history_length
        txns = relation.transaction_numbers
        if txns:
            latest_txns[identifier] = txns[-1]
    return Statistics(cardinalities, version_counts, latest_txns)


def _from_backend(backend) -> Statistics:
    cardinalities: dict = {}
    version_counts: dict = {}
    latest_txns: dict = {}
    for identifier in backend.identifiers():
        version_counts[identifier] = backend.version_count(identifier)
        txn = backend.latest_txn(identifier)
        if txn is None:
            cardinalities[identifier] = 0.0
            continue
        latest_txns[identifier] = txn
        # the latest state is the engine's O(1) hot read, never a replay
        state = backend.state_at(identifier, txn)
        cardinalities[identifier] = float(
            0 if state is None else len(state)
        )
    return Statistics(cardinalities, version_counts, latest_txns)
