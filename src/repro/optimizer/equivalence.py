"""Evaluation-based expression equivalence.

Used by the test suite and benchmark E4 to verify that every rewrite is
semantics-preserving: two expressions are judged equivalent on a database
when they evaluate to equal states (including both denoting the untyped
empty set ∅).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.database import Database
from repro.core.expressions import Expression, is_empty_set

__all__ = ["expressions_equivalent", "states_equal"]


def states_equal(left: object, right: object) -> bool:
    """Equality on evaluation results, treating the untyped ∅ as equal to
    itself and to any typed *empty* state (∅ carries no schema, so its
    information content matches any empty state's)."""
    if is_empty_set(left) and is_empty_set(right):
        return True
    if is_empty_set(left):
        return _is_typed_empty(right)
    if is_empty_set(right):
        return _is_typed_empty(left)
    return left == right


def _is_typed_empty(state: object) -> bool:
    return hasattr(state, "is_empty") and state.is_empty()  # type: ignore[union-attr]


def expressions_equivalent(
    left: Expression,
    right: Expression,
    databases: Iterable[Database],
) -> bool:
    """True iff the two expressions evaluate to equal states on every
    provided database."""
    for database in databases:
        if not states_equal(
            left.evaluate(database), right.evaluate(database)
        ):
            return False
    return True
