"""Rewrite rules — the snapshot algebra's laws, preserved by the extension.

Each rule is a class with an :meth:`apply` method that returns the rewritten
expression or None when the rule does not apply at this node.  Every rule
implements a textbook identity (cited in its docstring); the test suite
property-checks each identity by evaluating both sides on randomized
databases *including rollback sub-expressions*, which is the reproduction
of the paper's claim that the extension preserves the laws.
"""

from __future__ import annotations

from typing import Optional

from repro.core.expressions import (
    Difference,
    Expression,
    Product,
    Project,
    Select,
    Union,
)
from repro.optimizer.schema_inference import Catalog, infer_schema
from repro.snapshot.predicates import And

__all__ = [
    "Rule",
    "SplitConjunctiveSelect",
    "PushSelectBelowUnion",
    "PushSelectBelowDifference",
    "PushSelectBelowProduct",
    "MergeProjects",
    "PushProjectBelowUnion",
    "EliminateIdentityProject",
    "CombineSelects",
    "DEFAULT_RULES",
]


class Rule:
    """A local rewrite.  ``apply`` returns the rewritten node or None."""

    #: Short name used by the rewriter's trace.
    name = "rule"

    def apply(
        self, expression: Expression, catalog: Catalog
    ) -> Optional[Expression]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name


class SplitConjunctiveSelect(Rule):
    """``σ_{F1 ∧ F2}(E) = σ_{F1}(σ_{F2}(E))`` — cascade of selections.

    Splitting enables the halves to be pushed independently.
    """

    name = "split-conjunctive-select"

    def apply(self, expression, catalog):
        if isinstance(expression, Select) and isinstance(
            expression.predicate, And
        ):
            return Select(
                Select(expression.operand, expression.predicate.right),
                expression.predicate.left,
            )
        return None


class CombineSelects(Rule):
    """``σ_{F1}(σ_{F2}(E)) = σ_{F1 ∧ F2}(E)`` — the inverse cascade,
    useful after pushdown to collapse adjacent selections."""

    name = "combine-selects"

    def apply(self, expression, catalog):
        if isinstance(expression, Select) and isinstance(
            expression.operand, Select
        ):
            return Select(
                expression.operand.operand,
                And(expression.predicate, expression.operand.predicate),
            )
        return None


class PushSelectBelowUnion(Rule):
    """``σ_F(E1 ∪ E2) = σ_F(E1) ∪ σ_F(E2)`` — selection distributes
    over union."""

    name = "push-select-below-union"

    def apply(self, expression, catalog):
        if isinstance(expression, Select) and isinstance(
            expression.operand, Union
        ):
            union = expression.operand
            return Union(
                Select(union.left, expression.predicate),
                Select(union.right, expression.predicate),
            )
        return None


class PushSelectBelowDifference(Rule):
    """``σ_F(E1 − E2) = σ_F(E1) − E2`` — selection needs to filter only
    the left operand of a difference."""

    name = "push-select-below-difference"

    def apply(self, expression, catalog):
        if isinstance(expression, Select) and isinstance(
            expression.operand, Difference
        ):
            diff = expression.operand
            return Difference(
                Select(diff.left, expression.predicate), diff.right
            )
        return None


class PushSelectBelowProduct(Rule):
    """``σ_F(E1 × E2) = σ_F(E1) × E2`` when ``F`` references only
    attributes of ``E1`` (symmetrically for ``E2``) — the *distributivity
    of select over join* the paper names explicitly (Section 2).

    Requires schema inference to know which side owns the referenced
    attributes; inapplicable (returns None) when the predicate spans both.
    """

    name = "push-select-below-product"

    def apply(self, expression, catalog):
        if not (
            isinstance(expression, Select)
            and isinstance(expression.operand, Product)
        ):
            return None
        product = expression.operand
        refs = expression.predicate.referenced_attributes()
        left_names = set(infer_schema(product.left, catalog).names)
        right_names = set(infer_schema(product.right, catalog).names)
        if refs <= left_names:
            return Product(
                Select(product.left, expression.predicate), product.right
            )
        if refs <= right_names:
            return Product(
                product.left, Select(product.right, expression.predicate)
            )
        return None


class MergeProjects(Rule):
    """``π_X(π_Y(E)) = π_X(E)`` when ``X ⊆ Y`` — projection cascade."""

    name = "merge-projects"

    def apply(self, expression, catalog):
        if (
            isinstance(expression, Project)
            and isinstance(expression.operand, Project)
            and set(expression.names) <= set(expression.operand.names)
        ):
            return Project(expression.operand.operand, expression.names)
        return None


class PushProjectBelowUnion(Rule):
    """``π_X(E1 ∪ E2) = π_X(E1) ∪ π_X(E2)`` — projection distributes
    over union."""

    name = "push-project-below-union"

    def apply(self, expression, catalog):
        if isinstance(expression, Project) and isinstance(
            expression.operand, Union
        ):
            union = expression.operand
            return Union(
                Project(union.left, expression.names),
                Project(union.right, expression.names),
            )
        return None


class EliminateIdentityProject(Rule):
    """``π_X(E) = E`` when ``X`` is exactly ``E``'s schema in order."""

    name = "eliminate-identity-project"

    def apply(self, expression, catalog):
        if isinstance(expression, Project):
            inner_schema = infer_schema(expression.operand, catalog)
            if expression.names == inner_schema.names:
                return expression.operand
        return None


#: The default rule set, ordered so that splits happen before pushes and
#: cleanups come last.  ``CombineSelects`` is intentionally *not* in the
#: default set (it is the inverse of ``SplitConjunctiveSelect`` and the
#: pair would never reach a fixpoint); it is available for cost-directed
#: use.
DEFAULT_RULES: tuple[Rule, ...] = (
    SplitConjunctiveSelect(),
    PushSelectBelowUnion(),
    PushSelectBelowDifference(),
    PushSelectBelowProduct(),
    MergeProjects(),
    PushProjectBelowUnion(),
    EliminateIdentityProject(),
)


class RewriteDeleteAsNegatedSelect(Rule):
    """``E − σ_F(E) = σ_{¬F}(E)`` — the *delete rewrite*.

    The Quel translator renders ``delete from R where F`` as
    ``ρ(R, now) − σ_F(ρ(R, now))``, which evaluates ``ρ`` twice and
    materializes both the doomed subset and the difference.  The rewrite
    evaluates one negated selection instead — an example of the *update
    optimizations* the paper says the algebraic treatment of update makes
    possible (Section 1).

    Sound for any sub-expression ``E`` because expressions are
    side-effect-free (both occurrences denote the same state).
    """

    name = "rewrite-delete-as-negated-select"

    def apply(self, expression, catalog):
        from repro.snapshot.predicates import Not

        if (
            isinstance(expression, Difference)
            and isinstance(expression.right, Select)
            and expression.right.operand == expression.left
        ):
            return Select(
                expression.left, Not(expression.right.predicate)
            )
        return None


class DeduplicateUnion(Rule):
    """``E ∪ E = E`` — idempotence of union (set semantics)."""

    name = "deduplicate-union"

    def apply(self, expression, catalog):
        if (
            isinstance(expression, Union)
            and expression.left == expression.right
        ):
            return expression.left
        return None


#: Rules aimed at modify_state expressions (applied on top of the
#: retrieval rules by :func:`repro.optimizer.update_rewrites.optimize_update`).
UPDATE_RULES: tuple[Rule, ...] = (
    RewriteDeleteAsNegatedSelect(),
    DeduplicateUnion(),
)
