"""Rewrite rules — the snapshot algebra's laws, preserved by the extension.

Each rule is a class with an :meth:`apply` method that returns the rewritten
expression or None when the rule does not apply at this node.  Every rule
implements a textbook identity (cited in its docstring); the test suite
property-checks each identity by evaluating both sides on randomized
databases *including rollback sub-expressions*, which is the reproduction
of the paper's claim that the extension preserves the laws.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchemaError
from repro.core.expressions import (
    Derive,
    Difference,
    Expression,
    Product,
    Project,
    Select,
    Union,
)
from repro.optimizer.schema_inference import Catalog, infer_schema
from repro.snapshot.predicates import And

__all__ = [
    "Rule",
    "SplitConjunctiveSelect",
    "PushSelectBelowUnion",
    "PushSelectBelowDifference",
    "PushSelectBelowProduct",
    "PushSelectBelowDerive",
    "MergeProjects",
    "PushProjectBelowUnion",
    "PushProjectBelowSelect",
    "PushProjectBelowProduct",
    "EliminateIdentityProject",
    "CombineSelects",
    "DEFAULT_RULES",
    "EXTENDED_RULES",
]


class Rule:
    """A local rewrite.  ``apply`` returns the rewritten node or None."""

    #: Short name used by the rewriter's trace.
    name = "rule"

    def apply(
        self, expression: Expression, catalog: Catalog
    ) -> Optional[Expression]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name


class SplitConjunctiveSelect(Rule):
    """``σ_{F1 ∧ F2}(E) = σ_{F1}(σ_{F2}(E))`` — cascade of selections.

    Splitting enables the halves to be pushed independently.
    """

    name = "split-conjunctive-select"

    def apply(self, expression, catalog):
        if isinstance(expression, Select) and isinstance(
            expression.predicate, And
        ):
            return Select(
                Select(expression.operand, expression.predicate.right),
                expression.predicate.left,
            )
        return None


class CombineSelects(Rule):
    """``σ_{F1}(σ_{F2}(E)) = σ_{F1 ∧ F2}(E)`` — the inverse cascade,
    useful after pushdown to collapse adjacent selections."""

    name = "combine-selects"

    def apply(self, expression, catalog):
        if isinstance(expression, Select) and isinstance(
            expression.operand, Select
        ):
            return Select(
                expression.operand.operand,
                And(expression.predicate, expression.operand.predicate),
            )
        return None


class PushSelectBelowUnion(Rule):
    """``σ_F(E1 ∪ E2) = σ_F(E1) ∪ σ_F(E2)`` — selection distributes
    over union."""

    name = "push-select-below-union"

    def apply(self, expression, catalog):
        if isinstance(expression, Select) and isinstance(
            expression.operand, Union
        ):
            union = expression.operand
            return Union(
                Select(union.left, expression.predicate),
                Select(union.right, expression.predicate),
            )
        return None


class PushSelectBelowDifference(Rule):
    """``σ_F(E1 − E2) = σ_F(E1) − E2`` — selection needs to filter only
    the left operand of a difference."""

    name = "push-select-below-difference"

    def apply(self, expression, catalog):
        if isinstance(expression, Select) and isinstance(
            expression.operand, Difference
        ):
            diff = expression.operand
            return Difference(
                Select(diff.left, expression.predicate), diff.right
            )
        return None


class PushSelectBelowProduct(Rule):
    """``σ_F(E1 × E2) = σ_F(E1) × E2`` when ``F`` references only
    attributes of ``E1`` (symmetrically for ``E2``) — the *distributivity
    of select over join* the paper names explicitly (Section 2).

    Requires schema inference to know which side owns the referenced
    attributes; inapplicable (returns None) when the predicate spans both.
    """

    name = "push-select-below-product"

    def apply(self, expression, catalog):
        if not (
            isinstance(expression, Select)
            and isinstance(expression.operand, Product)
        ):
            return None
        product = expression.operand
        refs = expression.predicate.referenced_attributes()
        left_names = set(infer_schema(product.left, catalog).names)
        right_names = set(infer_schema(product.right, catalog).names)
        if refs <= left_names:
            return Product(
                Select(product.left, expression.predicate), product.right
            )
        if refs <= right_names:
            return Product(
                product.left, Select(product.right, expression.predicate)
            )
        return None


class PushSelectBelowDerive(Rule):
    """``σ̂_F(δ_{G,V}(E)) = δ_{G,V}(σ̂_F(E))`` — value selection commutes
    with valid-time derivation.

    ``σ̂`` examines only the *value part* of each historical tuple and
    leaves valid times untouched; ``δ`` filters and re-stamps only the
    *valid-time part* and leaves values untouched.  Each survivor of the
    composition is the same tuple ``(value, V(t))`` either way, so the
    operators commute unconditionally.  Pushing the selection below the
    derivation filters tuples *before* their derived period sets are
    computed — fewer historical timestamps are materialized.
    """

    name = "push-select-below-derive"

    def apply(self, expression, catalog):
        if isinstance(expression, Select) and isinstance(
            expression.operand, Derive
        ):
            derive = expression.operand
            return Derive(
                Select(derive.operand, expression.predicate),
                derive.predicate,
                derive.expression,
            )
        return None


class MergeProjects(Rule):
    """``π_X(π_Y(E)) = π_X(E)`` when ``X ⊆ Y`` — projection cascade."""

    name = "merge-projects"

    def apply(self, expression, catalog):
        if (
            isinstance(expression, Project)
            and isinstance(expression.operand, Project)
            and set(expression.names) <= set(expression.operand.names)
        ):
            return Project(expression.operand.operand, expression.names)
        return None


class PushProjectBelowUnion(Rule):
    """``π_X(E1 ∪ E2) = π_X(E1) ∪ π_X(E2)`` — projection distributes
    over union."""

    name = "push-project-below-union"

    def apply(self, expression, catalog):
        if isinstance(expression, Project) and isinstance(
            expression.operand, Union
        ):
            union = expression.operand
            return Union(
                Project(union.left, expression.names),
                Project(union.right, expression.names),
            )
        return None


class PushProjectBelowSelect(Rule):
    """``π_X(σ_F(E)) = σ_F(π_X(E))`` when ``F`` references only
    attributes in ``X``.

    Valid under set semantics because, with ``F`` confined to ``X``,
    ``F(t) = F(t|X)`` — a projected tuple survives the right-hand side
    iff some witness survived the left.  For historical states the valid
    time of each projected value is the union of its witnesses' periods
    on both sides.  On its own this rewrite usually *raises* the
    estimated cost (the projection dedups a larger input); it earns its
    keep by carrying projections toward ``ρ`` leaves where they unlock
    merges and union pushdowns, which is why it lives in the
    cost-guided rule set rather than :data:`DEFAULT_RULES`.
    """

    name = "push-project-below-select"

    def apply(self, expression, catalog):
        if not (
            isinstance(expression, Project)
            and isinstance(expression.operand, Select)
        ):
            return None
        select = expression.operand
        refs = select.predicate.referenced_attributes()
        if refs <= set(expression.names):
            return Select(
                Project(select.operand, expression.names),
                select.predicate,
            )
        return None


class PushProjectBelowProduct(Rule):
    """``π_X(E1 × E2) = π_{X1}(E1) × π_{X2}(E2)`` when ``X`` is an
    ordered partition ``X1 ++ X2`` with ``X1`` drawn from ``E1``'s
    schema and ``X2`` from ``E2``'s, both non-empty.

    The split must respect the projection list's order because the
    product concatenates schemas positionally.  For historical states
    the identity follows from distributivity of period-set intersection
    (the product's valid-time combination) over union (the projection's
    coalescing).  Requires schema inference; inapplicable when the
    catalog cannot type an operand or the list interleaves sides.
    """

    name = "push-project-below-product"

    def apply(self, expression, catalog):
        if not (
            isinstance(expression, Project)
            and isinstance(expression.operand, Product)
        ):
            return None
        product = expression.operand
        try:
            left_names = set(infer_schema(product.left, catalog).names)
            right_names = set(infer_schema(product.right, catalog).names)
        except SchemaError:
            return None
        names = expression.names
        split = 0
        while split < len(names) and names[split] in left_names:
            split += 1
        left_part, right_part = names[:split], names[split:]
        if not left_part or not right_part:
            return None
        if not all(name in right_names for name in right_part):
            return None
        return Product(
            Project(product.left, left_part),
            Project(product.right, right_part),
        )


class EliminateIdentityProject(Rule):
    """``π_X(E) = E`` when ``X`` is exactly ``E``'s schema in order."""

    name = "eliminate-identity-project"

    def apply(self, expression, catalog):
        if isinstance(expression, Project):
            inner_schema = infer_schema(expression.operand, catalog)
            if expression.names == inner_schema.names:
                return expression.operand
        return None


#: The default rule set, ordered so that splits happen before pushes and
#: cleanups come last.  ``CombineSelects`` is intentionally *not* in the
#: default set (it is the inverse of ``SplitConjunctiveSelect`` and the
#: pair would never reach a fixpoint); it is available for cost-directed
#: use.
DEFAULT_RULES: tuple[Rule, ...] = (
    SplitConjunctiveSelect(),
    PushSelectBelowUnion(),
    PushSelectBelowDifference(),
    PushSelectBelowProduct(),
    MergeProjects(),
    PushProjectBelowUnion(),
    EliminateIdentityProject(),
)


#: The rule set the cost-guided rewriter explores: the classical
#: defaults plus the rollback-oriented rewrites that move selections
#: and projections toward ``ρ`` leaves so fewer historical states are
#: materialized.  Still terminating as a fixpoint set (each new rule
#: strictly advances an operator toward the leaves and nothing moves it
#: back), but some members only pay off situationally — which is why
#: they ride behind the cost gate instead of joining DEFAULT_RULES.
EXTENDED_RULES: tuple[Rule, ...] = DEFAULT_RULES + (
    PushSelectBelowDerive(),
    PushProjectBelowSelect(),
    PushProjectBelowProduct(),
)


class RewriteDeleteAsNegatedSelect(Rule):
    """``E − σ_F(E) = σ_{¬F}(E)`` — the *delete rewrite*.

    The Quel translator renders ``delete from R where F`` as
    ``ρ(R, now) − σ_F(ρ(R, now))``, which evaluates ``ρ`` twice and
    materializes both the doomed subset and the difference.  The rewrite
    evaluates one negated selection instead — an example of the *update
    optimizations* the paper says the algebraic treatment of update makes
    possible (Section 1).

    Sound for any sub-expression ``E`` because expressions are
    side-effect-free (both occurrences denote the same state).
    """

    name = "rewrite-delete-as-negated-select"

    def apply(self, expression, catalog):
        from repro.snapshot.predicates import Not

        if (
            isinstance(expression, Difference)
            and isinstance(expression.right, Select)
            and expression.right.operand == expression.left
        ):
            return Select(
                expression.left, Not(expression.right.predicate)
            )
        return None


class DeduplicateUnion(Rule):
    """``E ∪ E = E`` — idempotence of union (set semantics)."""

    name = "deduplicate-union"

    def apply(self, expression, catalog):
        if (
            isinstance(expression, Union)
            and expression.left == expression.right
        ):
            return expression.left
        return None


#: Rules aimed at modify_state expressions (applied on top of the
#: retrieval rules by :func:`repro.optimizer.update_rewrites.optimize_update`).
UPDATE_RULES: tuple[Rule, ...] = (
    RewriteDeleteAsNegatedSelect(),
    DeduplicateUnion(),
)
