"""Update optimization — commands, not just queries.

One of the paper's stated benefits (Section 1): with update available in
the algebra, "update optimizations analogous to the retrieval
optimizations that have been extensively studied can now be investigated
in a rigorous fashion."  :func:`optimize_update` is that investigation
made executable: the expression inside a ``modify_state`` (or each
command of a sequence) is rewritten with the retrieval rules *plus* the
update-specific rules (the delete rewrite ``E − σ_F(E) → σ_{¬F}(E)``,
union deduplication).

Correctness follows from command semantics: ``modify_state(I, E)`` and
``modify_state(I, E′)`` produce identical databases whenever ``E ≡ E′``,
because the expression's denotation is the only thing the command
consumes.  The tests verify this end to end and experiment E11 measures
the speedup.
"""

from __future__ import annotations

from typing import Optional, Sequence as TypingSequence

from repro.core.commands import (
    Command,
    DefineRelation,
    ModifyState,
    Sequence,
)
from repro.optimizer.rewriter import Rewriter
from repro.optimizer.rules import DEFAULT_RULES, UPDATE_RULES, Rule
from repro.optimizer.schema_inference import Catalog

__all__ = ["optimize_update", "ALL_UPDATE_RULES"]

#: Retrieval rules plus update-specific rules.  The delete rewrite runs
#: first so ``E − σ_F(E)`` collapses before pushdown duplicates ``σ``.
ALL_UPDATE_RULES: tuple[Rule, ...] = UPDATE_RULES + DEFAULT_RULES


def optimize_update(
    command: Command,
    catalog: Optional[Catalog] = None,
    rules: TypingSequence[Rule] = ALL_UPDATE_RULES,
) -> Command:
    """Rewrite the expressions inside a command (tree).

    ``define_relation`` has no expression and passes through unchanged;
    ``modify_state`` gets its expression rewritten to a fixpoint;
    sequences are rewritten component-wise.
    """
    if isinstance(command, DefineRelation):
        return command
    if isinstance(command, ModifyState):
        rewritten = Rewriter(rules, catalog).rewrite(command.expression)
        if rewritten == command.expression:
            return command
        return ModifyState(
            command.identifier, rewritten, strict=command.strict
        )
    if isinstance(command, Sequence):
        return Sequence(
            optimize_update(command.first, catalog, rules),
            optimize_update(command.second, catalog, rules),
        )
    return command
