"""Durable serialization of databases to JSON.

The paper defines the *information content* of a database formally; this
package gives that content a durable, implementation-independent encoding
so a rollback/temporal database can be saved, shipped and re-loaded.  The
encoding is purely logical — it serializes the semantic ``DATABASE`` value
(every relation's full state sequence), not any physical backend — so a
database can be dumped from one backend and loaded into another.

Round-trip guarantee (tested): ``loads(dumps(db)) == db``.

Scope notes:

* Attribute domains are encoded by *name*; the built-in domains
  (``integer``, ``string``, ``number``, ``boolean``, ``any``,
  ``user_defined_time``) round-trip exactly.  Custom domains load as
  ``ANY`` with a warning entry in the payload, since a membership
  predicate is not serializable.
* Values must be JSON-representable (int, float, str, bool).  This covers
  every domain the library ships.
"""

from repro.persistence.json_codec import (
    dump,
    dumps,
    load,
    loads,
    database_to_dict,
    database_from_dict,
    state_to_dict,
    state_from_dict,
)

__all__ = [
    "dump",
    "dumps",
    "load",
    "loads",
    "database_to_dict",
    "database_from_dict",
    "state_to_dict",
    "state_from_dict",
]
