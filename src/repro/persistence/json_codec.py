"""JSON encoding/decoding of the semantic DATABASE value."""

from __future__ import annotations

import json
from typing import Any, IO

from repro.errors import StorageError
from repro.core.database import Database, DatabaseState
from repro.core.relation import Relation, RelationType
from repro.historical.chronons import FOREVER
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.attributes import (
    ANY,
    BOOLEAN,
    INTEGER,
    NUMBER,
    STRING,
    USER_DEFINED_TIME,
    Attribute,
    Domain,
)
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

__all__ = [
    "FORMAT_VERSION",
    "database_to_dict",
    "database_from_dict",
    "state_to_dict",
    "state_from_dict",
    "dumps",
    "loads",
    "dump",
    "load",
]

FORMAT_VERSION = 1

_BUILTIN_DOMAINS: dict[str, Domain] = {
    d.name: d
    for d in (ANY, BOOLEAN, INTEGER, NUMBER, STRING, USER_DEFINED_TIME)
}


# -- schemas -----------------------------------------------------------------


def _schema_to_dict(schema: Schema) -> list[dict[str, str]]:
    return [
        {"name": a.name, "domain": a.domain.name}
        for a in schema.attributes
    ]


def _schema_from_dict(payload: list[dict[str, str]]) -> Schema:
    attributes = []
    for entry in payload:
        domain = _BUILTIN_DOMAINS.get(entry["domain"], ANY)
        attributes.append(Attribute(entry["name"], domain))
    return Schema(attributes)


# -- states -------------------------------------------------------------------


def _periods_to_list(periods: PeriodSet) -> list[list[Any]]:
    return [
        [i.start, None if i.is_unbounded else i.end]
        for i in periods.intervals
    ]


def _periods_from_list(payload: list[list[Any]]) -> PeriodSet:
    return PeriodSet(
        [
            (start, FOREVER if end is None else end)
            for start, end in payload
        ]
    )


def state_to_dict(state) -> dict[str, Any]:
    """A snapshot or historical state as a JSON-ready dictionary — the
    per-state slice of :func:`database_to_dict`, public because other
    layers (the archive store, checkpoints) serialize bare states."""
    if isinstance(state, HistoricalState):
        return {
            "kind": "historical",
            "schema": _schema_to_dict(state.schema),
            "rows": sorted(
                (
                    [list(t.value.values), _periods_to_list(t.valid_time)]
                    for t in state.tuples
                ),
                key=repr,
            ),
        }
    if isinstance(state, SnapshotState):
        return {
            "kind": "snapshot",
            "schema": _schema_to_dict(state.schema),
            "rows": sorted(
                (list(t.values) for t in state.tuples), key=repr
            ),
        }
    raise StorageError(f"cannot serialize state {type(state).__name__}")


def state_from_dict(payload: dict[str, Any]):
    """Rebuild a state from :func:`state_to_dict` output."""
    schema = _schema_from_dict(payload["schema"])
    if payload["kind"] == "historical":
        tuples = [
            HistoricalTuple(
                values, _periods_from_list(periods), schema=schema
            )
            for values, periods in payload["rows"]
        ]
        return HistoricalState(schema, tuples)
    if payload["kind"] == "snapshot":
        return SnapshotState(schema, payload["rows"])
    raise StorageError(f"unknown state kind {payload['kind']!r}")


# Backwards-compatible aliases for the former private spellings.
_state_to_dict = state_to_dict
_state_from_dict = state_from_dict


# -- relations and databases ------------------------------------------------------


def _relation_to_dict(relation: Relation) -> dict[str, Any]:
    return {
        "type": relation.rtype.value,
        "states": [
            {"txn": txn, "state": state_to_dict(state)}
            for state, txn in relation.rstate
        ],
    }


def _relation_from_dict(payload: dict[str, Any]) -> Relation:
    rtype = RelationType.from_name(payload["type"])
    states = [
        (state_from_dict(entry["state"]), entry["txn"])
        for entry in payload["states"]
    ]
    return Relation(rtype, states)


def database_to_dict(database: Database) -> dict[str, Any]:
    """The semantic DATABASE value as a JSON-ready dictionary."""
    return {
        "format": "repro-database",
        "version": FORMAT_VERSION,
        "transaction_number": database.transaction_number,
        "relations": {
            identifier: _relation_to_dict(database.require(identifier))
            for identifier in database.state
        },
    }


def database_from_dict(payload: dict[str, Any]) -> Database:
    """Rebuild a Database from :func:`database_to_dict` output.

    The format version is gated *before* any decoding: a payload written
    by a newer library is rejected with a clear :class:`StorageError` up
    front, not a confusing failure halfway through decode.
    """
    if not isinstance(payload, dict):
        raise StorageError(
            "payload is not a repro database dump (expected a JSON "
            f"object, got {type(payload).__name__})"
        )
    if payload.get("format") != "repro-database":
        raise StorageError(
            "payload is not a repro database dump "
            f"(format={payload.get('format')!r})"
        )
    version = payload.get("version")
    if not isinstance(version, int):
        raise StorageError(
            f"dump has no integer format version (got {version!r}); "
            "the payload is damaged or not a repro dump"
        )
    if version > FORMAT_VERSION:
        raise StorageError(
            f"dump was written by a newer library (format version "
            f"{version}); this library reads up to version "
            f"{FORMAT_VERSION} — upgrade to load it"
        )
    if version != FORMAT_VERSION:
        raise StorageError(
            f"unsupported dump version {version!r}; "
            f"this library reads version {FORMAT_VERSION}"
        )
    bindings = {
        identifier: _relation_from_dict(entry)
        for identifier, entry in payload["relations"].items()
    }
    return Database(
        DatabaseState(bindings), payload["transaction_number"]
    )


# -- convenience wrappers ----------------------------------------------------------


def dumps(database: Database, indent: int | None = None) -> str:
    """Serialize a database to a JSON string."""
    return json.dumps(database_to_dict(database), indent=indent)


def loads(text: str) -> Database:
    """Deserialize a database from a JSON string."""
    return database_from_dict(json.loads(text))


def dump(database: Database, fp: IO[str], indent: int | None = None) -> None:
    """Serialize a database to an open text file."""
    json.dump(database_to_dict(database), fp, indent=indent)


def load(fp: IO[str]) -> Database:
    """Deserialize a database from an open text file."""
    return database_from_dict(json.load(fp))
