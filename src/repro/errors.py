"""Exception hierarchy for the repro library.

The paper (Section 3.4) restricts the semantic function ``E`` to *valid*
expressions and delegates the treatment of invalid expressions to a companion
technical report.  This library makes the invalid cases explicit: every
semantic violation raises a typed exception rooted at :class:`ReproError`, so
callers can distinguish schema problems from rollback problems from language
(syntax) problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "DomainError",
    "PredicateError",
    "UnknownRelationError",
    "RelationTypeError",
    "RollbackError",
    "CommandError",
    "ExpressionError",
    "IntervalError",
    "ParseError",
    "LexError",
    "TranslationError",
    "StorageError",
    "ShardingError",
    "ClusterError",
    "ClusterDegradedError",
    "WalError",
    "CheckpointError",
    "ReplicationError",
    "StreamGapError",
    "DivergenceError",
    "RetryExhaustedError",
    "StaleReadError",
    "ConcurrencyError",
    "EvolutionError",
    "WorkloadError",
    "ProtocolError",
    "ServerError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServerShutdownError",
    "ConnectionClosedError",
    "RemoteError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema violation: duplicate attributes, incompatible schemas for a
    set operation, projection onto attributes a relation does not have, etc."""


class DomainError(ReproError):
    """A tuple value does not belong to the declared attribute domain."""


class PredicateError(ReproError):
    """A selection predicate (the ``F`` or ``G`` syntactic domain) references
    an unknown attribute or compares incomparable values."""


class UnknownRelationError(ReproError):
    """An identifier is unbound in the database state (maps to the bottom
    element in the paper's ``DATABASE STATE`` domain)."""


class RelationTypeError(ReproError):
    """An operation was applied to a relation of the wrong type, e.g. rolling
    back a snapshot relation to a past transaction."""


class RollbackError(ReproError):
    """A rollback operation could not produce a state, e.g. the requested
    transaction number predates the relation's first recorded state."""


class CommandError(ReproError):
    """A command is semantically invalid on the current database."""


class ExpressionError(ReproError):
    """An algebraic expression is ill-formed independent of any database."""


class IntervalError(ReproError):
    """A valid-time interval or period set is ill-formed (end before start,
    overlapping components in a canonical period set, ...)."""


class LexError(ReproError):
    """The lexer encountered an invalid character sequence."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class ParseError(ReproError):
    """The parser could not derive a sentence/command/expression."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class TranslationError(ReproError):
    """A Quel-style update statement could not be translated to the algebra."""


class StorageError(ReproError):
    """A physical storage backend detected an inconsistency.

    Root of the durability/replication taxonomy below, so ``except
    StorageError`` written against earlier releases keeps catching the
    finer-grained errors."""


class ShardingError(StorageError):
    """The shard coordinator detected an inconsistency: shards opened
    over non-empty stores without coordinator metadata, a moved
    identifier whose replayed history disagrees with the source, or a
    partitioner that maps outside the shard set."""


class ClusterError(StorageError):
    """The cluster topology rejected an operation: failing over a shard
    with no (live) replicas, a promotion candidate that cannot reach the
    primary's tail, or a configuration that names an invalid topology."""


class ClusterDegradedError(ClusterError):
    """A shard has no live primary, so the cluster shed the write rather
    than hang or half-apply it.  Reads keep serving from the shard's
    replicas; the health supervisor (or an operator failover) clears the
    condition, after which a retry of the same sentence succeeds.
    Transient by construction — retrying clients treat it like
    :class:`QueueFullError`."""


class WalError(StorageError):
    """The write-ahead log rejected an operation or found damage it
    could not repair (bad fsync policy, empty record, rebase below the
    retained tail, a segment losing records under a live log)."""


class CheckpointError(StorageError):
    """A checkpoint failed validation (unreadable envelope, wrong
    format/version, CRC mismatch, bad LSN) or could not be written."""


class ReplicationError(StorageError):
    """Base class for replication failures.  Raised directly for
    *transient* conditions — an injected stream fault, an undecodable
    shipped record — that a retry of the fetch may clear."""


class StreamGapError(ReplicationError):
    """The replication stream skipped one or more LSNs.

    ``compacted=True`` means the gap is authoritative — the primary no
    longer retains the records (log compaction or a rebase) and the
    replica must re-snapshot; ``compacted=False`` means the delivery
    itself was gappy (drop/reorder) and a re-fetch may heal it.
    """

    def __init__(
        self,
        message: str,
        *,
        expected: int = 0,
        got: int = 0,
        compacted: bool = False,
    ) -> None:
        super().__init__(message)
        self.expected = expected
        self.got = got
        self.compacted = compacted


class DivergenceError(ReplicationError):
    """A replica's replay no longer matches the primary: applying a
    shipped record produced a transaction number different from the one
    the record committed with.  Fatal for the replica — it must be
    discarded or rebuilt from a snapshot, never retried."""


class RetryExhaustedError(ReplicationError):
    """A :class:`~repro.replication.retry.RetryPolicy` gave up: every
    attempt failed and the attempt budget or deadline ran out.  The last
    underlying error is chained as ``__cause__``."""

    def __init__(
        self, message: str, *, attempts: int = 0, elapsed: float = 0.0
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.elapsed = elapsed


class StaleReadError(ReplicationError):
    """A replica configured with ``max_lag`` + reject semantics refused
    a read because it had fallen too far behind the primary."""

    def __init__(self, message: str, *, lag: int = 0, max_lag: int = 0) -> None:
        super().__init__(message)
        self.lag = lag
        self.max_lag = max_lag


class ConcurrencyError(ReproError):
    """The transaction manager rejected or aborted a transaction."""


class EvolutionError(ReproError):
    """A schema-evolution operation is invalid (e.g. redefining a live
    relation with an incompatible scheme)."""


class WorkloadError(ReproError):
    """A workload generator was configured with invalid parameters."""


class ProtocolError(ReproError):
    """A wire frame or message violated the protocol: short or torn
    header, CRC mismatch, an oversized frame, non-JSON payload, or a
    message missing required fields.  Framing errors are not recoverable
    mid-stream (the byte positions of later frames are unknown), so the
    peer that detects one closes the connection."""


class ServerError(ReproError):
    """Base class for request failures reported by a repro server."""


class QueueFullError(ServerError):
    """The server shed the request: its admission queue was above the
    high watermark (or the connection exceeded its per-connection
    budget).  Retry after backoff — the server is saturated, not broken."""


class DeadlineExceededError(ServerError):
    """The request's deadline expired — either while queued (never
    executed) or mid-execution (the slow query was killed)."""


class ServerShutdownError(ServerError):
    """The server is draining: it finishes requests already admitted but
    accepts no new ones."""


class ConnectionClosedError(ServerError):
    """The connection closed before a complete response arrived."""


class RemoteError(ServerError):
    """The server executed the request and it failed; carries the remote
    exception's class name so clients can dispatch on it."""

    def __init__(self, message: str, *, remote_type: str = "ReproError") -> None:
        super().__init__(message)
        self.remote_type = remote_type
