"""The temporal-expression domain ``V``.

Section 4 of the paper introduces a syntactic domain ``V`` of *temporal
expressions* used by the historical derivation operator ``δ_{G,V}``.  A
temporal expression, evaluated against an historical tuple, produces a
period set.  ``δ`` then uses that period set as the tuple's new valid time
(valid-time *projection*/derivation) while ``G`` (see
:mod:`repro.historical.predicates`) filters tuples by their valid time
(valid-time *selection*).

The expressions provided here are the ones needed by the paper's examples,
the Ben-Zvi comparison, and the benchmarks:

* :class:`ValidTime` — the tuple's own valid time;
* :class:`TemporalConstant` — a literal period set;
* :class:`First` / :class:`Last` — the earliest/latest chronon of an
  expression, as a single-chronon period set;
* :class:`Intersect` / :class:`Union` — set combination;
* :class:`Extend` — extend an expression's final run through another
  expression's last chronon;
* :class:`Shift` — displace by a constant number of chronons.
"""

from __future__ import annotations

from repro.errors import IntervalError
from repro.historical.periods import PeriodSet
from repro.historical.tuples import HistoricalTuple

__all__ = [
    "TemporalExpression",
    "ValidTime",
    "TemporalConstant",
    "First",
    "Last",
    "Intersect",
    "Union",
    "Extend",
    "Shift",
]


class TemporalExpression:
    """Base class: a function from an historical tuple to a period set."""

    __slots__ = ()

    def evaluate(self, row: HistoricalTuple) -> PeriodSet:
        raise NotImplementedError

    def __call__(self, row: HistoricalTuple) -> PeriodSet:
        return self.evaluate(row)


class ValidTime(TemporalExpression):
    """The tuple's own valid-time period set."""

    __slots__ = ()

    def evaluate(self, row: HistoricalTuple) -> PeriodSet:
        return row.valid_time

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ValidTime)

    def __hash__(self) -> int:
        return hash("ValidTime")

    def __repr__(self) -> str:
        return "valid"


class TemporalConstant(TemporalExpression):
    """A literal period set, independent of the tuple."""

    __slots__ = ("periods",)

    def __init__(self, periods: PeriodSet) -> None:
        if not isinstance(periods, PeriodSet):
            periods = PeriodSet(periods)
        self.periods = periods

    def evaluate(self, row: HistoricalTuple) -> PeriodSet:
        return self.periods

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TemporalConstant)
            and self.periods == other.periods
        )

    def __hash__(self) -> int:
        return hash(("TemporalConstant", self.periods))

    def __repr__(self) -> str:
        return repr(self.periods)


class First(TemporalExpression):
    """The single-chronon period set at the operand's earliest chronon."""

    __slots__ = ("operand",)

    def __init__(self, operand: TemporalExpression) -> None:
        self.operand = operand

    def evaluate(self, row: HistoricalTuple) -> PeriodSet:
        inner = self.operand.evaluate(row)
        if inner.is_empty():
            return PeriodSet.empty()
        return PeriodSet.from_chronon(inner.first())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, First) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash(("First", self.operand))

    def __repr__(self) -> str:
        return f"first({self.operand!r})"


class Last(TemporalExpression):
    """The single-chronon period set at the operand's latest chronon.
    Empty when the operand is empty or unbounded."""

    __slots__ = ("operand",)

    def __init__(self, operand: TemporalExpression) -> None:
        self.operand = operand

    def evaluate(self, row: HistoricalTuple) -> PeriodSet:
        inner = self.operand.evaluate(row)
        if inner.is_empty() or inner.is_unbounded():
            return PeriodSet.empty()
        return PeriodSet.from_chronon(inner.last())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Last) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash(("Last", self.operand))

    def __repr__(self) -> str:
        return f"last({self.operand!r})"


class Intersect(TemporalExpression):
    """Period-set intersection of two expressions."""

    __slots__ = ("left", "right")

    def __init__(
        self, left: TemporalExpression, right: TemporalExpression
    ) -> None:
        self.left = left
        self.right = right

    def evaluate(self, row: HistoricalTuple) -> PeriodSet:
        return self.left.evaluate(row).intersect(self.right.evaluate(row))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Intersect)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("Intersect", self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} ∩ {self.right!r})"


class Union(TemporalExpression):
    """Period-set union of two expressions."""

    __slots__ = ("left", "right")

    def __init__(
        self, left: TemporalExpression, right: TemporalExpression
    ) -> None:
        self.left = left
        self.right = right

    def evaluate(self, row: HistoricalTuple) -> PeriodSet:
        return self.left.evaluate(row).union(self.right.evaluate(row))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Union)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("Union", self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} ∪ {self.right!r})"


class Extend(TemporalExpression):
    """Extend the left expression's final run through the last chronon of
    the right expression.  Empty when either operand is empty; when the
    right operand is unbounded, the result's final run is unbounded."""

    __slots__ = ("left", "right")

    def __init__(
        self, left: TemporalExpression, right: TemporalExpression
    ) -> None:
        self.left = left
        self.right = right

    def evaluate(self, row: HistoricalTuple) -> PeriodSet:
        base = self.left.evaluate(row)
        target = self.right.evaluate(row)
        if base.is_empty() or target.is_empty():
            return PeriodSet.empty()
        if target.is_unbounded():
            from repro.historical.chronons import FOREVER
            from repro.historical.intervals import Interval

            final = base.intervals[-1]
            return base.union(
                PeriodSet([Interval(final.start, FOREVER)])
            )
        try:
            return base.extend_to(target.last())
        except IntervalError:
            return base

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Extend)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("Extend", self.left, self.right))

    def __repr__(self) -> str:
        return f"extend({self.left!r}, {self.right!r})"


class Shift(TemporalExpression):
    """The operand displaced by a constant number of chronons."""

    __slots__ = ("operand", "delta")

    def __init__(self, operand: TemporalExpression, delta: int) -> None:
        self.operand = operand
        self.delta = delta

    def evaluate(self, row: HistoricalTuple) -> PeriodSet:
        return self.operand.evaluate(row).shift(self.delta)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Shift)
            and self.operand == other.operand
            and self.delta == other.delta
        )

    def __hash__(self) -> int:
        return hash(("Shift", self.operand, self.delta))

    def __repr__(self) -> str:
        return f"shift({self.operand!r}, {self.delta})"
