"""An historical algebra supporting valid time.

The paper (Section 4) extends its command language over *any* historical
algebra; it illustrates with the algebra of McKenzie & Snodgrass TR87-008.
This package implements such an algebra:

* valid time is a discrete line of *chronons* (non-negative integers);
* an historical tuple pairs an ordinary value tuple with a *period set* — a
  canonical union of disjoint half-open intervals of chronons during which
  the tuple's fact held in the modeled reality;
* an :class:`HistoricalState` is a set of historical tuples over one schema,
  kept *coalesced*: no two tuples share the same value part;
* operators ``∪̂ −̂ ×̂ π̂ σ̂`` mirror their snapshot counterparts but combine
  valid times (union of periods on ``∪̂``, difference of periods on ``−̂``,
  intersection of periods on ``×̂``), and the new operator ``δ_{G,V}``
  performs selection (``G``) and derivation (``V``) on the valid-time
  component.

The only property :mod:`repro.core` relies on is that every operator maps
historical states to historical states — exactly the paper's requirement.
"""

from repro.historical.chronons import (
    Chronon,
    FOREVER,
    BEGINNING,
    as_chronon,
)
from repro.historical.intervals import Interval
from repro.historical.periods import PeriodSet
from repro.historical.tuples import HistoricalTuple
from repro.historical.state import HistoricalState
from repro.historical.temporal_exprs import (
    TemporalExpression,
    ValidTime,
    TemporalConstant,
    First,
    Last,
    Intersect,
    Union as TemporalUnion,
    Extend,
    Shift,
)
from repro.historical.predicates import (
    TemporalPredicate,
    Precedes,
    Overlaps,
    Contains,
    Meets,
    Equals as TemporalEquals,
    NonEmpty,
    ValidAt,
    TemporalAnd,
    TemporalOr,
    TemporalNot,
)
from repro.historical.operators import (
    historical_union,
    historical_difference,
    historical_product,
    historical_project,
    historical_select,
    historical_derive,
)

__all__ = [
    "Chronon",
    "FOREVER",
    "BEGINNING",
    "as_chronon",
    "Interval",
    "PeriodSet",
    "HistoricalTuple",
    "HistoricalState",
    "TemporalExpression",
    "ValidTime",
    "TemporalConstant",
    "First",
    "Last",
    "Intersect",
    "TemporalUnion",
    "Extend",
    "Shift",
    "TemporalPredicate",
    "Precedes",
    "Overlaps",
    "Contains",
    "Meets",
    "TemporalEquals",
    "NonEmpty",
    "ValidAt",
    "TemporalAnd",
    "TemporalOr",
    "TemporalNot",
    "historical_union",
    "historical_difference",
    "historical_product",
    "historical_project",
    "historical_select",
    "historical_derive",
]
