"""Derived historical operators.

Like :mod:`repro.snapshot.derived`, everything here is definable from the
primitive historical operators; the implementations fuse steps for
efficiency and the tests check both the definitions and *snapshot
reducibility* (timeslicing commutes with each operator).
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.historical.operators import (
    historical_product,
    historical_select,
)
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.predicates import Predicate
from repro.snapshot.schema import Schema
from repro.snapshot.tuples import SnapshotTuple

__all__ = [
    "historical_intersection",
    "historical_theta_join",
    "historical_natural_join",
]


def historical_intersection(
    left: HistoricalState, right: HistoricalState
) -> HistoricalState:
    """Per-value intersection: a fact survives for exactly the chronons at
    which *both* states record it.

    Equal to ``L −̂ (L −̂ R)``.
    """
    left.schema.require_compatible(right.schema, "historical intersection")
    right_times: dict[SnapshotTuple, PeriodSet] = {
        t.value: t.valid_time for t in right.tuples
    }
    kept: list[HistoricalTuple] = []
    for t in left.tuples:
        other = right_times.get(t.value)
        if other is None:
            continue
        shared = t.valid_time.intersect(other)
        if not shared.is_empty():
            kept.append(HistoricalTuple(t.value, shared))
    return HistoricalState(left.schema, kept)


def historical_theta_join(
    left: HistoricalState,
    right: HistoricalState,
    predicate: Predicate,
) -> HistoricalState:
    """``σ̂_F(L ×̂ R)`` — value parts join under ``F``, valid times
    intersect (facts join only while simultaneously valid)."""
    return historical_select(historical_product(left, right), predicate)


def historical_natural_join(
    left: HistoricalState, right: HistoricalState
) -> HistoricalState:
    """Natural join on common attribute names; valid times intersect.

    With no common attributes this is the historical product; with
    identical schemas it is the per-value intersection.
    """
    common = left.schema.common_names(right.schema)
    if not common:
        return historical_product(left, right)
    if left.schema == right.schema:
        return historical_intersection(left, right)

    right_only = [n for n in right.schema.names if n not in common]
    joined_schema = Schema(
        list(left.schema.attributes)
        + [right.schema[n] for n in right_only]
    )
    buckets: dict[tuple, list[HistoricalTuple]] = {}
    for r in right.tuples:
        key = tuple(r[name] for name in common)
        buckets.setdefault(key, []).append(r)

    out: list[HistoricalTuple] = []
    for l in left.tuples:
        key = tuple(l[name] for name in common)
        for r in buckets.get(key, ()):
            shared = l.valid_time.intersect(r.valid_time)
            if shared.is_empty():
                continue
            values = l.value.values + tuple(
                r[name] for name in right_only
            )
            out.append(
                HistoricalTuple(values, shared, schema=joined_schema)
            )
    return HistoricalState(joined_schema, out)
