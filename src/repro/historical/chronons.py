"""The discrete valid-time line.

Valid time is modeled as a discrete, totally ordered, countably infinite set
of *chronons* — the standard temporal-database abstraction of indivisible
time quanta.  We represent chronons as non-negative integers and provide a
distinguished :data:`FOREVER` bound usable as the exclusive end of an
interval that extends indefinitely.

``FOREVER`` compares greater than every integer chronon and is only legal as
an interval *end*, never as a start.
"""

from __future__ import annotations

from typing import Any, Union

from repro.errors import IntervalError

__all__ = ["Chronon", "FOREVER", "BEGINNING", "as_chronon"]

Chronon = int

#: The first chronon on the valid-time line.
BEGINNING: Chronon = 0


class _Forever:
    """Singleton upper bound of the valid-time line (exclusive)."""

    _instance: "_Forever | None" = None

    def __new__(cls) -> "_Forever":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __lt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return other is self

    def __gt__(self, other: Any) -> bool:
        return other is not self

    def __ge__(self, other: Any) -> bool:
        return True

    def __eq__(self, other: Any) -> bool:
        return other is self

    def __hash__(self) -> int:
        return hash("repro.historical.FOREVER")

    def __repr__(self) -> str:
        return "FOREVER"

    def __reduce__(self):
        return (_Forever, ())


#: The exclusive upper bound of the valid-time line.  An interval ending at
#: ``FOREVER`` models a fact believed to hold indefinitely.
FOREVER = _Forever()

Bound = Union[Chronon, _Forever]


def as_chronon(value: Any) -> Chronon:
    """Validate and return a chronon (a non-negative integer)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise IntervalError(f"chronon must be an integer, got {value!r}")
    if value < 0:
        raise IntervalError(f"chronon must be non-negative, got {value}")
    return value


def as_bound(value: Any) -> Bound:
    """Validate an interval end bound: a chronon or ``FOREVER``."""
    if value is FOREVER:
        return FOREVER
    return as_chronon(value)
