"""Historical tuples: a value part plus a valid-time part.

An :class:`HistoricalTuple` records *when in modeled reality* a fact held:
it pairs a :class:`~repro.snapshot.tuples.SnapshotTuple` (the value part)
with a :class:`~repro.historical.periods.PeriodSet` (the valid-time part).
This is the attribute-value-timestamped design of the McKenzie & Snodgrass
historical algebra at tuple granularity, which suffices for the paper's
Section 4: the command layer never inspects the inside of an historical
state.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence, Union

from repro.errors import IntervalError, SchemaError
from repro.historical.periods import PeriodSet
from repro.snapshot.schema import Schema
from repro.snapshot.tuples import SnapshotTuple

__all__ = ["HistoricalTuple"]


class HistoricalTuple:
    """An immutable (value tuple, valid-time period set) pair.

    The period set must be non-empty: a fact that held at no time is not a
    fact.  States drop tuples whose valid time becomes empty.
    """

    __slots__ = ("_value", "_valid_time", "_hash")

    def __init__(
        self,
        value: Union[SnapshotTuple, Sequence[Any], Mapping[str, Any]],
        valid_time: PeriodSet,
        schema: Schema | None = None,
    ) -> None:
        if isinstance(value, SnapshotTuple):
            snapshot_value = value
        else:
            if schema is None:
                raise SchemaError(
                    "raw values require an explicit schema for an "
                    "historical tuple"
                )
            snapshot_value = SnapshotTuple(schema, value)
        if not isinstance(valid_time, PeriodSet):
            valid_time = PeriodSet(valid_time)
        if valid_time.is_empty():
            raise IntervalError(
                "an historical tuple requires a non-empty valid time"
            )
        self._value = snapshot_value
        self._valid_time = valid_time
        self._hash: int | None = None

    @property
    def value(self) -> SnapshotTuple:
        """The ordinary (explicit-attribute) part of the tuple."""
        return self._value

    @property
    def valid_time(self) -> PeriodSet:
        """The chronons during which the fact held in modeled reality."""
        return self._valid_time

    @property
    def schema(self) -> Schema:
        """The schema of the value part."""
        return self._value.schema

    def __getitem__(self, key: Union[int, str]) -> Any:
        return self._value[key]

    def as_dict(self) -> dict[str, Any]:
        """Name -> value mapping of the value part."""
        return self._value.as_dict()

    # -- derivation ----------------------------------------------------------

    def with_valid_time(self, valid_time: PeriodSet) -> "HistoricalTuple":
        """The same value part with a different (non-empty) valid time."""
        return HistoricalTuple(self._value, valid_time)

    def restricted_to(self, window: PeriodSet) -> "HistoricalTuple | None":
        """The tuple with valid time intersected with ``window``, or None
        when the intersection is empty."""
        clipped = self._valid_time.intersect(window)
        if clipped.is_empty():
            return None
        return HistoricalTuple(self._value, clipped)

    def project(self, names: Sequence[str]) -> "HistoricalTuple":
        """Project the value part; the valid time is unchanged."""
        return HistoricalTuple(self._value.project(names), self._valid_time)

    def concat(self, other: "HistoricalTuple") -> "HistoricalTuple | None":
        """Historical product of two tuples: value parts concatenate, valid
        times intersect.  None when the valid times are disjoint."""
        shared = self._valid_time.intersect(other._valid_time)
        if shared.is_empty():
            return None
        return HistoricalTuple(self._value.concat(other._value), shared)

    # -- equality ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistoricalTuple):
            return NotImplemented
        return (
            self._value == other._value
            and self._valid_time == other._valid_time
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                ("HistoricalTuple", self._value, self._valid_time)
            )
        return self._hash

    def __repr__(self) -> str:
        return f"{self._value!r}@{self._valid_time!r}"
