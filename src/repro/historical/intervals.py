"""Half-open valid-time intervals ``[start, end)``.

An :class:`Interval` covers the chronons ``start, start+1, ..., end-1`` (or
all chronons from ``start`` on, when ``end`` is :data:`FOREVER`).  Intervals
are immutable, hashable and totally ordered by ``(start, end)``, which gives
period sets a canonical form.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.errors import IntervalError
from repro.historical.chronons import FOREVER, Bound, as_bound, as_chronon

__all__ = ["Interval"]


class Interval:
    """A non-empty half-open interval of chronons.

    >>> Interval(3, 7).chronons()
    [3, 4, 5, 6]
    >>> Interval(3, 7).overlaps(Interval(6, 10))
    True
    """

    __slots__ = ("_start", "_end")

    def __init__(self, start: int, end: Any) -> None:
        start_c = as_chronon(start)
        end_b: Bound = as_bound(end)
        if end_b is not FOREVER and end_b <= start_c:
            raise IntervalError(
                f"interval [{start_c}, {end_b}) is empty or inverted"
            )
        self._start = start_c
        self._end = end_b

    @property
    def start(self) -> int:
        """The first chronon covered (inclusive)."""
        return self._start

    @property
    def end(self) -> Bound:
        """The first chronon *not* covered (exclusive); may be FOREVER."""
        return self._end

    @property
    def is_unbounded(self) -> bool:
        """True iff the interval extends to FOREVER."""
        return self._end is FOREVER

    def duration(self) -> Optional[int]:
        """Number of chronons covered, or None when unbounded."""
        if self.is_unbounded:
            return None
        return self._end - self._start  # type: ignore[operator]

    # -- membership and relationships ---------------------------------------

    def covers(self, chronon: int) -> bool:
        """True iff the chronon lies inside the interval."""
        c = as_chronon(chronon)
        return self._start <= c and (self.is_unbounded or c < self._end)

    def overlaps(self, other: "Interval") -> bool:
        """True iff the two intervals share at least one chronon."""
        starts_before_other_ends = (
            other.is_unbounded or self._start < other._end
        )
        other_starts_before_self_ends = (
            self.is_unbounded or other._start < self._end
        )
        return starts_before_other_ends and other_starts_before_self_ends

    def meets(self, other: "Interval") -> bool:
        """Allen's *meets*: this interval ends exactly where the other
        starts (no gap, no overlap)."""
        return not self.is_unbounded and self._end == other._start

    def adjacent_or_overlapping(self, other: "Interval") -> bool:
        """True iff the union of the two intervals is itself an interval."""
        return (
            self.overlaps(other)
            or self.meets(other)
            or other.meets(self)
        )

    def contains(self, other: "Interval") -> bool:
        """True iff the other interval lies entirely within this one."""
        start_ok = self._start <= other._start
        if self.is_unbounded:
            return start_ok
        if other.is_unbounded:
            return False
        return start_ok and other._end <= self._end

    def precedes(self, other: "Interval") -> bool:
        """True iff every chronon of this interval is before every chronon
        of the other (meeting counts as preceding)."""
        return not self.is_unbounded and self._end <= other._start

    # -- combination ---------------------------------------------------------

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """The common sub-interval, or None when disjoint."""
        if not self.overlaps(other):
            return None
        start = max(self._start, other._start)
        if self.is_unbounded:
            end: Bound = other._end
        elif other.is_unbounded:
            end = self._end
        else:
            end = min(self._end, other._end)  # type: ignore[type-var]
        return Interval(start, end)

    def merge(self, other: "Interval") -> "Interval":
        """The single interval covering both operands; they must be
        adjacent or overlapping."""
        if not self.adjacent_or_overlapping(other):
            raise IntervalError(
                f"cannot merge disjoint intervals {self} and {other}"
            )
        start = min(self._start, other._start)
        if self.is_unbounded or other.is_unbounded:
            end: Bound = FOREVER
        else:
            end = max(self._end, other._end)  # type: ignore[type-var]
        return Interval(start, end)

    def subtract(self, other: "Interval") -> list["Interval"]:
        """The (0, 1 or 2) intervals covering this interval's chronons not
        covered by the other."""
        if not self.overlaps(other):
            return [self]
        pieces: list[Interval] = []
        if self._start < other._start:
            pieces.append(Interval(self._start, other._start))
        if not other.is_unbounded:
            if self.is_unbounded:
                pieces.append(Interval(other._end, FOREVER))
            elif other._end < self._end:
                pieces.append(Interval(other._end, self._end))
        return pieces

    def shift(self, delta: int) -> "Interval":
        """The interval displaced by ``delta`` chronons (may be negative,
        but may not push the start below chronon 0)."""
        new_start = self._start + delta
        if new_start < 0:
            raise IntervalError(
                f"shifting {self} by {delta} moves start below 0"
            )
        new_end: Bound = (
            FOREVER if self.is_unbounded else self._end + delta  # type: ignore[operator]
        )
        return Interval(new_start, new_end)

    def chronons(self) -> list[int]:
        """The covered chronons as a list; only legal on bounded intervals."""
        if self.is_unbounded:
            raise IntervalError("cannot enumerate an unbounded interval")
        return list(range(self._start, self._end))  # type: ignore[arg-type]

    def iter_chronons(self) -> Iterator[int]:
        """Iterate the covered chronons; only legal on bounded intervals."""
        return iter(self.chronons())

    # -- ordering and equality ------------------------------------------------

    def _key(self) -> tuple:
        end_key = (1, 0) if self.is_unbounded else (0, self._end)
        return (self._start, end_key)

    def __lt__(self, other: "Interval") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Interval") -> bool:
        return self._key() <= other._key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return self._start == other._start and self._end == other._end

    def __hash__(self) -> int:
        return hash(("Interval", self._start, self._end))

    def __repr__(self) -> str:
        return f"[{self._start}, {self._end!r})"
