"""The historical algebraic operators.

Section 4 of the paper lists "historical counterparts to conventional
algebraic operators" — ``∪̂ −̂ ×̂ π̂ σ̂`` — plus the new operator
``δ_{G,V}`` "which performs functions, similar to those of the selection and
projection operators in the snapshot algebra, on the valid-time components
of historical tuples".  All evaluate to historical states.

Design (following the McKenzie & Snodgrass TR87-008 family of algebras, with
tuple-granularity timestamps):

* ``∪̂`` — value-equivalent tuples coalesce; valid times union.
* ``−̂`` — per value-equivalent tuple, valid times subtract; tuples whose
  valid time becomes empty disappear.
* ``×̂`` — value parts concatenate; valid times intersect; pairs whose valid
  times are disjoint produce nothing.
* ``π̂`` — value parts project; newly value-equivalent tuples coalesce.
* ``σ̂`` — ordinary predicate on the value part; valid times untouched.
* ``δ_{G,V}`` — keep the tuples satisfying the temporal predicate ``G``,
  and re-stamp each with the period set its temporal expression ``V``
  denotes (dropping tuples whose new valid time is empty).  With ``G = true``
  and ``V = valid`` it is the identity.

Each operator maps historical states to historical states, the only
property :mod:`repro.core` requires of the historical algebra.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SchemaError
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.historical.temporal_exprs import TemporalExpression, ValidTime
from repro.historical.predicates import TemporalPredicate
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.predicates import Predicate
from repro.snapshot.tuples import SnapshotTuple

__all__ = [
    "historical_union",
    "historical_difference",
    "historical_product",
    "historical_project",
    "historical_select",
    "historical_derive",
    "historical_rename",
]


def historical_union(
    left: HistoricalState, right: HistoricalState
) -> HistoricalState:
    """``E1 ∪̂ E2``: coalescing union of two compatible states."""
    left.schema.require_compatible(right.schema, "historical union")
    return HistoricalState(
        left.schema, list(left.tuples) + list(right.tuples)
    )


def historical_difference(
    left: HistoricalState, right: HistoricalState
) -> HistoricalState:
    """``E1 −̂ E2``: per-value valid-time subtraction.

    A fact survives for exactly the chronons at which the left state records
    it and the right state does not.
    """
    left.schema.require_compatible(right.schema, "historical difference")
    right_times: dict[SnapshotTuple, PeriodSet] = {
        t.value: t.valid_time for t in right.tuples
    }
    kept: list[HistoricalTuple] = []
    for t in left.tuples:
        removed = right_times.get(t.value)
        if removed is None:
            kept.append(t)
            continue
        remaining = t.valid_time.difference(removed)
        if not remaining.is_empty():
            kept.append(HistoricalTuple(t.value, remaining))
    return HistoricalState(left.schema, kept)


def historical_product(
    left: HistoricalState, right: HistoricalState
) -> HistoricalState:
    """``E1 ×̂ E2``: concatenate value parts, intersect valid times.

    Operand schemas must have disjoint attribute names (as for the snapshot
    product).  Pairs of tuples that were never simultaneously valid
    contribute nothing.
    """
    joined_schema = left.schema.concat(right.schema)
    out: list[HistoricalTuple] = []
    for l in left.tuples:
        for r in right.tuples:
            combined = l.concat(r)
            if combined is not None:
                out.append(combined)
    return HistoricalState(joined_schema, out)


def historical_project(
    state: HistoricalState, names: Sequence[str]
) -> HistoricalState:
    """``π̂_X(E)``: project value parts; coalesce newly value-equivalent
    tuples by unioning their valid times."""
    if len(set(names)) != len(names):
        raise SchemaError(f"projection list has duplicates: {list(names)}")
    sub_schema = state.schema.project(names)
    return HistoricalState(
        sub_schema, [t.project(names) for t in state.tuples]
    )


def historical_select(
    state: HistoricalState, predicate: Predicate
) -> HistoricalState:
    """``σ̂_F(E)``: keep tuples whose *value part* satisfies the ordinary
    predicate ``F``; valid times are untouched."""
    from repro.snapshot.predicates import compile_predicate

    test = compile_predicate(predicate, state.schema)
    kept = [t for t in state.tuples if test(t.value.values)]
    return HistoricalState(state.schema, kept)


def historical_derive(
    state: HistoricalState,
    predicate: TemporalPredicate | None = None,
    expression: TemporalExpression | None = None,
) -> HistoricalState:
    """``δ_{G,V}(E)``: valid-time selection and derivation.

    Keep the tuples satisfying the temporal predicate ``G`` (default: all),
    then re-stamp each survivor with the period set denoted by the temporal
    expression ``V`` (default: its own valid time).  Tuples whose derived
    valid time is empty are dropped, preserving the historical-state
    invariant that every tuple has a non-empty valid time.
    """
    expr = expression if expression is not None else ValidTime()
    out: list[HistoricalTuple] = []
    for t in state.tuples:
        if predicate is not None and not predicate.evaluate(t):
            continue
        derived = expr.evaluate(t)
        if derived.is_empty():
            continue
        out.append(HistoricalTuple(t.value, derived))
    return HistoricalState(state.schema, out)


def historical_rename(
    state: HistoricalState, mapping: dict[str, str]
) -> HistoricalState:
    """Rename value-part attributes per ``mapping`` (old -> new names).

    A derived operator (expressible as π̂ over a relabeled schema); valid
    times are untouched.
    """
    new_schema = state.schema.rename(mapping)
    return HistoricalState(
        new_schema,
        [
            HistoricalTuple(t.value.with_schema(new_schema), t.valid_time)
            for t in state.tuples
        ],
    )
