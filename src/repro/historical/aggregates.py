"""Aggregation over historical states.

Two temporal aggregation styles, both extensions in the spirit of TQuel's
aggregates (Snodgrass 1987, cited by the paper):

* **instantaneous** — :func:`aggregate_at` aggregates the timeslice at
  one chronon (and :func:`aggregate_series` produces a time series of
  such aggregates), answering "how many facts held at time t?";
* **duration-weighted** — :func:`duration_aggregate` aggregates over the
  whole history, weighting each fact by how long it was valid, answering
  "for how many fact-chronons ...?" / "what was the time-weighted
  average ...?".

Duration-weighted aggregation requires bounded valid times (an unbounded
fact has infinite weight); :class:`~repro.errors.IntervalError` is raised
otherwise.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.errors import IntervalError, SchemaError
from repro.historical.state import HistoricalState
from repro.snapshot.aggregates import aggregate as snapshot_aggregate
from repro.snapshot.attributes import NUMBER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

__all__ = [
    "aggregate_at",
    "aggregate_series",
    "duration_aggregate",
    "DURATION_FUNCTIONS",
]


def aggregate_at(
    state: HistoricalState,
    chronon: int,
    group_by: Sequence[str],
    aggregations: Mapping[str, tuple[str, str | None]],
) -> SnapshotState:
    """Aggregate the facts valid at ``chronon`` (ordinary snapshot
    aggregation of the timeslice)."""
    return snapshot_aggregate(
        state.snapshot_at(chronon), group_by, aggregations
    )


def aggregate_series(
    state: HistoricalState,
    chronons: Sequence[int],
    group_by: Sequence[str],
    aggregations: Mapping[str, tuple[str, str | None]],
) -> list[tuple[int, SnapshotState]]:
    """A time series of instantaneous aggregates, one per chronon."""
    return [
        (chronon, aggregate_at(state, chronon, group_by, aggregations))
        for chronon in chronons
    ]


#: Duration-weighted aggregate functions.
DURATION_FUNCTIONS = ("count", "total_duration", "weighted_sum",
                      "weighted_avg")


def duration_aggregate(
    state: HistoricalState,
    group_by: Sequence[str],
    aggregations: Mapping[str, tuple[str, str | None]],
) -> SnapshotState:
    """Aggregate facts weighted by their valid-time duration.

    Functions:

    * ``count`` — number of distinct facts in the group;
    * ``total_duration`` — total fact-chronons;
    * ``weighted_sum`` — Σ value × duration over an attribute;
    * ``weighted_avg`` — the duration-weighted mean of an attribute.

    >>> s = Schema(['who', 'salary'])
    >>> h = HistoricalState.from_rows(s, [
    ...     (['ann', 100], [(0, 10)]),      # 100 for 10 chronons
    ...     (['ann', 150], [(10, 15)]),     # 150 for 5 chronons
    ... ])
    >>> out = duration_aggregate(h, ['who'],
    ...                          {'avg': ('weighted_avg', 'salary')})
    >>> out.sorted_rows()
    [('ann', 116.66666666666667)]
    """
    if not aggregations:
        raise SchemaError(
            "duration_aggregate requires at least one aggregation"
        )
    if len(set(group_by)) != len(group_by):
        raise SchemaError(f"duplicate group-by attributes: {group_by}")
    collisions = set(aggregations) & set(group_by)
    if collisions:
        raise SchemaError(
            "aggregate output names collide with group-by attributes: "
            f"{sorted(collisions)}"
        )

    plans = []
    for out_name, (function_name, input_name) in aggregations.items():
        if function_name not in DURATION_FUNCTIONS:
            raise SchemaError(
                f"unknown duration aggregate {function_name!r}; "
                f"available: {sorted(DURATION_FUNCTIONS)}"
            )
        needs_input = function_name in ("weighted_sum", "weighted_avg")
        if needs_input and input_name is None:
            raise SchemaError(
                f"{function_name} requires an input attribute"
            )
        if not needs_input and input_name is not None:
            raise SchemaError(f"{function_name} takes no input attribute")
        if input_name is not None:
            state.schema.position(input_name)
        plans.append((out_name, function_name, input_name))

    group_schema = (
        state.schema.project(list(group_by)) if group_by else Schema([])
    )
    out_schema = Schema(
        list(group_schema.attributes)
        + [Attribute(out_name, NUMBER) for out_name, _, _ in plans]
    )

    # group members: (tuple, duration)
    groups: dict[tuple, list[tuple[Any, int]]] = {}
    for t in state.tuples:
        duration = t.valid_time.duration()
        if duration is None:
            raise IntervalError(
                "duration-weighted aggregation requires bounded valid "
                f"times; {t.value.values} is valid to FOREVER"
            )
        key = tuple(t[name] for name in group_by)
        groups.setdefault(key, []).append((t, duration))

    rows = []
    for key, members in groups.items():
        row: list[Any] = list(key)
        for _, function_name, input_name in plans:
            if function_name == "count":
                row.append(len(members))
            elif function_name == "total_duration":
                row.append(sum(d for _, d in members))
            elif function_name == "weighted_sum":
                row.append(
                    sum(t[input_name] * d for t, d in members)
                )
            else:  # weighted_avg
                total_duration = sum(d for _, d in members)
                row.append(
                    sum(t[input_name] * d for t, d in members)
                    / total_duration
                )
        rows.append(row)
    return SnapshotState(out_schema, rows)
