"""Historical states.

An :class:`HistoricalState` "models the history of changes in the real
world" (Section 2 of the paper).  It is an immutable set of historical
tuples over one schema, kept in *coalesced form*: no two tuples share the
same value part (their valid times would simply be unioned).  Coalescing
makes state equality canonical, which the reproduction relies on throughout
(backend equivalence, orthogonality checks, Ben-Zvi comparison).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.historical.periods import PeriodSet
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.snapshot.tuples import SnapshotTuple

__all__ = ["HistoricalState"]


def _coalesce(
    schema: Schema, tuples: Iterable[HistoricalTuple]
) -> frozenset[HistoricalTuple]:
    """Merge value-equivalent tuples by unioning their valid times."""
    by_value: dict[SnapshotTuple, PeriodSet] = {}
    for t in tuples:
        if t.schema != schema:
            raise SchemaError(
                f"historical tuple schema {t.schema.names} does not match "
                f"state schema {schema.names}"
            )
        existing = by_value.get(t.value)
        by_value[t.value] = (
            t.valid_time if existing is None else existing.union(t.valid_time)
        )
    return frozenset(
        HistoricalTuple(value, valid_time)
        for value, valid_time in by_value.items()
        if not valid_time.is_empty()
    )


class HistoricalState:
    """An immutable, coalesced set of historical tuples over one schema."""

    __slots__ = ("_schema", "_tuples", "_hash")

    def __init__(
        self, schema: Schema, tuples: Iterable[HistoricalTuple] = ()
    ) -> None:
        self._schema = schema
        self._tuples = _coalesce(schema, tuples)
        self._hash: int | None = None

    @classmethod
    def empty(cls, schema: Schema) -> "HistoricalState":
        """The empty historical state over the given schema."""
        return cls(schema, ())

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[tuple[Any, Any]],
    ) -> "HistoricalState":
        """Build a state from ``(values, periods)`` pairs, where ``values``
        is a sequence/mapping acceptable to :class:`SnapshotTuple` and
        ``periods`` is anything acceptable to :class:`PeriodSet` (or a
        PeriodSet itself).

        >>> s = Schema(['name'])
        >>> h = HistoricalState.from_rows(s, [(['merrie'], [(0, 10)])])
        >>> len(h)
        1
        """
        tuples = []
        for values, periods in rows:
            period_set = (
                periods if isinstance(periods, PeriodSet) else PeriodSet(periods)
            )
            tuples.append(HistoricalTuple(values, period_set, schema=schema))
        return cls(schema, tuples)

    @classmethod
    def _from_coalesced(
        cls, schema: Schema, tuples: frozenset[HistoricalTuple]
    ) -> "HistoricalState":
        state = cls.__new__(cls)
        state._schema = schema
        state._tuples = tuples
        state._hash = None
        return state

    # -- access ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema of every tuple's value part."""
        return self._schema

    @property
    def tuples(self) -> frozenset[HistoricalTuple]:
        """The coalesced historical tuples."""
        return self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[HistoricalTuple]:
        return iter(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def is_empty(self) -> bool:
        """True iff the state contains no tuple."""
        return not self._tuples

    def valid_time_of(self, value: SnapshotTuple) -> PeriodSet:
        """The valid time recorded for a value part (empty when absent)."""
        for t in self._tuples:
            if t.value == value:
                return t.valid_time
        return PeriodSet.empty()

    # -- time-slicing --------------------------------------------------------

    def snapshot_at(self, chronon: int) -> SnapshotState:
        """The *timeslice*: the snapshot state of facts valid at the given
        chronon.  This is the standard bridge from historical to snapshot
        semantics, used by the Ben-Zvi comparison (E9)."""
        rows = frozenset(
            t.value for t in self._tuples if t.valid_time.covers(chronon)
        )
        return SnapshotState.from_tuples(self._schema, rows)

    def window(self, periods: PeriodSet) -> "HistoricalState":
        """The state restricted to the given valid-time window."""
        kept = []
        for t in self._tuples:
            clipped = t.restricted_to(periods)
            if clipped is not None:
                kept.append(clipped)
        return HistoricalState(self._schema, kept)

    def value_parts(self) -> SnapshotState:
        """All value parts regardless of valid time, as a snapshot state."""
        return SnapshotState.from_tuples(
            self._schema, frozenset(t.value for t in self._tuples)
        )

    def sorted_rows(self) -> list[tuple]:
        """Deterministically ordered ``(values..., valid_time)`` rows for
        display and golden tests."""
        rows = [
            t.value.values + (repr(t.valid_time),) for t in self._tuples
        ]
        return sorted(rows, key=lambda row: tuple(map(repr, row)))

    # -- equality ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistoricalState):
            return NotImplemented
        return self._schema == other._schema and self._tuples == other._tuples

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                ("HistoricalState", self._schema, self._tuples)
            )
        return self._hash

    def __repr__(self) -> str:
        sample = ", ".join(repr(t) for t in list(self._tuples)[:3])
        suffix = ", ..." if len(self._tuples) > 3 else ""
        return (
            f"HistoricalState({self._schema.names}, "
            f"{len(self._tuples)} tuples: {sample}{suffix})"
        )
