"""Canonical period sets.

A :class:`PeriodSet` is a finite union of disjoint, non-adjacent, sorted
half-open intervals — the canonical representation of an arbitrary set of
chronons with finitely many "runs".  Period sets are the valid-time stamps
of historical tuples; keeping them canonical makes historical-state equality
(and therefore all the reproduction's equivalence checks) a structural
comparison.

The empty period set is allowed: a tuple whose valid time becomes empty is
dropped from an historical state (see :mod:`repro.historical.state`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.errors import IntervalError
from repro.historical.chronons import FOREVER
from repro.historical.intervals import Interval

__all__ = ["PeriodSet"]


def _canonicalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    """Sort intervals and merge overlapping/adjacent runs."""
    ordered = sorted(intervals)
    merged: list[Interval] = []
    for interval in ordered:
        if merged and merged[-1].adjacent_or_overlapping(interval):
            merged[-1] = merged[-1].merge(interval)
        else:
            merged.append(interval)
    return tuple(merged)


class PeriodSet:
    """An immutable, canonical set of valid-time intervals.

    Constructors accept any iterable of :class:`Interval` or ``(start, end)``
    pairs; overlapping and adjacent intervals are merged.

    >>> PeriodSet([(1, 3), (3, 5), (8, 9)])
    PeriodSet([1, 5) ∪ [8, 9))
    """

    __slots__ = ("_intervals", "_hash")

    def __init__(self, intervals: Iterable[Any] = ()) -> None:
        normalized = []
        for item in intervals:
            if isinstance(item, Interval):
                normalized.append(item)
            elif isinstance(item, Sequence) and len(item) == 2:
                normalized.append(Interval(item[0], item[1]))
            else:
                raise IntervalError(
                    f"cannot interpret {item!r} as a valid-time interval"
                )
        self._intervals = _canonicalize(normalized)
        self._hash: int | None = None

    @classmethod
    def empty(cls) -> "PeriodSet":
        """The empty period set."""
        return cls(())

    @classmethod
    def from_chronon(cls, chronon: int) -> "PeriodSet":
        """The period set covering exactly one chronon."""
        return cls([Interval(chronon, chronon + 1)])

    @classmethod
    def always(cls) -> "PeriodSet":
        """The period set covering the whole valid-time line."""
        return cls([Interval(0, FOREVER)])

    @classmethod
    def _from_canonical(
        cls, intervals: tuple[Interval, ...]
    ) -> "PeriodSet":
        ps = cls.__new__(cls)
        ps._intervals = intervals
        ps._hash = None
        return ps

    # -- access ------------------------------------------------------------

    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The component intervals, sorted and disjoint."""
        return self._intervals

    def is_empty(self) -> bool:
        """True iff the period set covers no chronon."""
        return not self._intervals

    def is_unbounded(self) -> bool:
        """True iff the period set extends to FOREVER."""
        return bool(self._intervals) and self._intervals[-1].is_unbounded

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def duration(self) -> Optional[int]:
        """Total number of chronons covered, or None when unbounded."""
        if self.is_unbounded():
            return None
        return sum(i.duration() for i in self._intervals)  # type: ignore[misc]

    def first(self) -> int:
        """The earliest covered chronon."""
        if self.is_empty():
            raise IntervalError("empty period set has no first chronon")
        return self._intervals[0].start

    def last(self) -> int:
        """The latest covered chronon; only legal when bounded."""
        if self.is_empty():
            raise IntervalError("empty period set has no last chronon")
        final = self._intervals[-1]
        if final.is_unbounded:
            raise IntervalError("unbounded period set has no last chronon")
        return final.end - 1  # type: ignore[operator]

    def covers(self, chronon: int) -> bool:
        """True iff the chronon is covered by some component interval."""
        return any(i.covers(chronon) for i in self._intervals)

    def chronons(self) -> list[int]:
        """All covered chronons; only legal when bounded."""
        out: list[int] = []
        for interval in self._intervals:
            out.extend(interval.chronons())
        return out

    # -- algebra -------------------------------------------------------------

    def union(self, other: "PeriodSet") -> "PeriodSet":
        """Chronon-set union."""
        return PeriodSet._from_canonical(
            _canonicalize(self._intervals + other._intervals)
        )

    def intersect(self, other: "PeriodSet") -> "PeriodSet":
        """Chronon-set intersection (merge-scan over sorted runs)."""
        out: list[Interval] = []
        i, j = 0, 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            piece = a[i].intersect(b[j])
            if piece is not None:
                out.append(piece)
            # Advance whichever run ends first.
            a_unbounded = a[i].is_unbounded
            b_unbounded = b[j].is_unbounded
            if a_unbounded:
                j += 1
            elif b_unbounded:
                i += 1
            elif a[i].end <= b[j].end:  # type: ignore[operator]
                i += 1
            else:
                j += 1
        return PeriodSet._from_canonical(tuple(out))

    def difference(self, other: "PeriodSet") -> "PeriodSet":
        """Chronon-set difference."""
        remaining = list(self._intervals)
        for cut in other._intervals:
            next_remaining: list[Interval] = []
            for piece in remaining:
                next_remaining.extend(piece.subtract(cut))
            remaining = next_remaining
        return PeriodSet._from_canonical(_canonicalize(remaining))

    def extend_to(self, chronon: int) -> "PeriodSet":
        """The period set with its last run extended to cover through the
        given chronon (used by derivation expressions)."""
        if self.is_empty():
            raise IntervalError("cannot extend an empty period set")
        last = self._intervals[-1]
        if last.is_unbounded or last.covers(chronon):
            return self
        if chronon < last.start:
            raise IntervalError(
                f"extend target {chronon} precedes final run {last}"
            )
        extended = Interval(last.start, chronon + 1)
        return PeriodSet._from_canonical(
            _canonicalize(self._intervals[:-1] + (extended,))
        )

    def shift(self, delta: int) -> "PeriodSet":
        """Every component interval displaced by ``delta`` chronons."""
        return PeriodSet._from_canonical(
            tuple(i.shift(delta) for i in self._intervals)
        )

    def overlaps(self, other: "PeriodSet") -> bool:
        """True iff the two period sets share at least one chronon."""
        return not self.intersect(other).is_empty()

    def contains_set(self, other: "PeriodSet") -> bool:
        """True iff the other period set is a subset of this one."""
        return other.difference(self).is_empty()

    def precedes(self, other: "PeriodSet") -> bool:
        """True iff every covered chronon is before every chronon of the
        other; vacuously false when either side is empty."""
        if self.is_empty() or other.is_empty():
            return False
        if self.is_unbounded():
            return False
        return self.last() < other.first()

    # -- equality ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PeriodSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(("PeriodSet", self._intervals))
        return self._hash

    def __repr__(self) -> str:
        if not self._intervals:
            return "PeriodSet(∅)"
        inner = " ∪ ".join(repr(i) for i in self._intervals)
        return f"PeriodSet({inner})"
