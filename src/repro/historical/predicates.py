"""The temporal-predicate domain ``G``.

Section 4 of the paper defines ``G`` as "boolean expressions of elements
from the domain V, the relational operators, and the logical operators".  A
:class:`TemporalPredicate` evaluates an historical tuple to a boolean by
comparing the period sets its temporal sub-expressions denote, using the
standard interval-algebra relationships (precedes, overlaps, contains,
meets, equals) lifted to period sets, plus point membership
(:class:`ValidAt`) and non-emptiness.
"""

from __future__ import annotations

from repro.historical.temporal_exprs import TemporalExpression
from repro.historical.tuples import HistoricalTuple

__all__ = [
    "TemporalPredicate",
    "Precedes",
    "Overlaps",
    "Contains",
    "Meets",
    "Equals",
    "NonEmpty",
    "ValidAt",
    "TemporalAnd",
    "TemporalOr",
    "TemporalNot",
]


class TemporalPredicate:
    """Base class: a boolean function of an historical tuple's times."""

    __slots__ = ()

    def evaluate(self, row: HistoricalTuple) -> bool:
        raise NotImplementedError

    def __call__(self, row: HistoricalTuple) -> bool:
        return self.evaluate(row)

    def __and__(self, other: "TemporalPredicate") -> "TemporalPredicate":
        return TemporalAnd(self, other)

    def __or__(self, other: "TemporalPredicate") -> "TemporalPredicate":
        return TemporalOr(self, other)

    def __invert__(self) -> "TemporalPredicate":
        return TemporalNot(self)


class _Binary(TemporalPredicate):
    """Shared structure for binary temporal comparisons."""

    __slots__ = ("left", "right")
    _symbol = "?"

    def __init__(
        self, left: TemporalExpression, right: TemporalExpression
    ) -> None:
        self.left = left
        self.right = right

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.left == other.left  # type: ignore[attr-defined]
            and self.right == other.right  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} {self._symbol} {self.right!r})"


class Precedes(_Binary):
    """Every chronon of the left expression is before every chronon of the
    right.  False when either side is empty."""

    _symbol = "precedes"

    def evaluate(self, row: HistoricalTuple) -> bool:
        return self.left.evaluate(row).precedes(self.right.evaluate(row))


class Overlaps(_Binary):
    """The two expressions share at least one chronon."""

    _symbol = "overlaps"

    def evaluate(self, row: HistoricalTuple) -> bool:
        return self.left.evaluate(row).overlaps(self.right.evaluate(row))


class Contains(_Binary):
    """The left expression covers every chronon of the right."""

    _symbol = "contains"

    def evaluate(self, row: HistoricalTuple) -> bool:
        return self.left.evaluate(row).contains_set(self.right.evaluate(row))


class Meets(_Binary):
    """The left expression's final run ends exactly where the right's first
    run begins."""

    _symbol = "meets"

    def evaluate(self, row: HistoricalTuple) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left.is_empty() or right.is_empty() or left.is_unbounded():
            return False
        return left.intervals[-1].meets(right.intervals[0])


class Equals(_Binary):
    """The two expressions denote the same period set."""

    _symbol = "="

    def evaluate(self, row: HistoricalTuple) -> bool:
        return self.left.evaluate(row) == self.right.evaluate(row)


class NonEmpty(TemporalPredicate):
    """The expression denotes a non-empty period set."""

    __slots__ = ("operand",)

    def __init__(self, operand: TemporalExpression) -> None:
        self.operand = operand

    def evaluate(self, row: HistoricalTuple) -> bool:
        return not self.operand.evaluate(row).is_empty()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NonEmpty) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash(("NonEmpty", self.operand))

    def __repr__(self) -> str:
        return f"nonempty({self.operand!r})"


class ValidAt(TemporalPredicate):
    """The expression's period set covers the given chronon."""

    __slots__ = ("operand", "chronon")

    def __init__(self, operand: TemporalExpression, chronon: int) -> None:
        self.operand = operand
        self.chronon = chronon

    def evaluate(self, row: HistoricalTuple) -> bool:
        return self.operand.evaluate(row).covers(self.chronon)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ValidAt)
            and self.operand == other.operand
            and self.chronon == other.chronon
        )

    def __hash__(self) -> int:
        return hash(("ValidAt", self.operand, self.chronon))

    def __repr__(self) -> str:
        return f"valid_at({self.operand!r}, {self.chronon})"


class TemporalAnd(TemporalPredicate):
    """Conjunction of temporal predicates."""

    __slots__ = ("left", "right")

    def __init__(
        self, left: TemporalPredicate, right: TemporalPredicate
    ) -> None:
        self.left = left
        self.right = right

    def evaluate(self, row: HistoricalTuple) -> bool:
        return self.left.evaluate(row) and self.right.evaluate(row)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TemporalAnd)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("TemporalAnd", self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} and {self.right!r})"


class TemporalOr(TemporalPredicate):
    """Disjunction of temporal predicates."""

    __slots__ = ("left", "right")

    def __init__(
        self, left: TemporalPredicate, right: TemporalPredicate
    ) -> None:
        self.left = left
        self.right = right

    def evaluate(self, row: HistoricalTuple) -> bool:
        return self.left.evaluate(row) or self.right.evaluate(row)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TemporalOr)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("TemporalOr", self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} or {self.right!r})"


class TemporalNot(TemporalPredicate):
    """Negation of a temporal predicate."""

    __slots__ = ("operand",)

    def __init__(self, operand: TemporalPredicate) -> None:
        self.operand = operand

    def evaluate(self, row: HistoricalTuple) -> bool:
        return not self.operand.evaluate(row)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TemporalNot) and self.operand == other.operand
        )

    def __hash__(self) -> int:
        return hash(("TemporalNot", self.operand))

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"
