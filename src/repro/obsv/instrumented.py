"""A transparent observability wrapper for any storage backend.

:class:`InstrumentedBackend` wraps a :class:`~repro.storage.backend.
StorageBackend` and records call counts, latencies and atom volumes for
every interface method, without the backend knowing it is being watched.
This is the non-invasive complement to the light-weight hooks the
concrete backends carry internally (replay lengths, checkpoint hits):
wrap any backend — including future or third-party ones — and it becomes
observable with zero modification, and the equivalence checker
``backends_agree`` still accepts it because the wrapper *is* a
``StorageBackend`` answering identical ``state_at`` probes.

Metrics are written under ``backend.<name>.*`` (the wrapper's view of
the interface boundary), distinct from ``storage.<name>.*`` (the
backends' internal hooks).  By default the wrapper records into the
process-wide registry, so with metrics disabled it degrades to no-ops;
pass an explicit registry to observe unconditionally.
"""

from __future__ import annotations

from typing import Optional

from repro.core.relation import RelationType
from repro.core.txn import TransactionNumber
from repro.obsv import registry as _obsv
from repro.obsv.registry import MetricsRegistry
from repro.storage.backend import State, StorageBackend

__all__ = ["InstrumentedBackend"]


class InstrumentedBackend(StorageBackend):
    """Delegates every ``StorageBackend`` operation to ``inner``,
    recording per-operation counters and latency histograms."""

    def __init__(
        self,
        inner: StorageBackend,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._inner = inner
        self._registry = registry
        self.name = f"instrumented({inner.name})"
        self._prefix = f"backend.{inner.name}"

    @property
    def inner(self) -> StorageBackend:
        """The wrapped backend."""
        return self._inner

    def _sink(self):
        """The registry to record into: the explicit one, else the
        process-wide registry (a no-op sink while metrics are off)."""
        return self._registry if self._registry is not None else _obsv.get()

    # -- write path -----------------------------------------------------------

    def create(self, identifier: str, rtype: RelationType) -> None:
        sink = self._sink()
        sink.counter(f"{self._prefix}.create_calls").inc()
        self._inner.create(identifier, rtype)

    def install(
        self, identifier: str, state: State, txn: TransactionNumber
    ) -> None:
        sink = self._sink()
        sink.counter(f"{self._prefix}.install_calls").inc()
        sink.counter(f"{self._prefix}.atoms_installed").inc(len(state))
        with sink.timer(f"{self._prefix}.install_seconds"):
            self._inner.install(identifier, state, txn)

    # -- read path ----------------------------------------------------------

    def clear(self) -> None:
        self._inner.clear()

    def state_at(
        self, identifier: str, txn: TransactionNumber
    ) -> Optional[State]:
        sink = self._sink()
        sink.counter(f"{self._prefix}.state_at_calls").inc()
        with sink.timer(f"{self._prefix}.state_at_seconds"):
            return self._inner.state_at(identifier, txn)

    def type_of(self, identifier: str) -> RelationType:
        return self._inner.type_of(identifier)

    def identifiers(self) -> tuple[str, ...]:
        return self._inner.identifiers()

    def has(self, identifier: str) -> bool:
        return self._inner.has(identifier)

    def transaction_numbers(
        self, identifier: str
    ) -> tuple[TransactionNumber, ...]:
        return self._inner.transaction_numbers(identifier)

    def latest_txn(
        self, identifier: str
    ) -> Optional[TransactionNumber]:
        return self._inner.latest_txn(identifier)

    def version_count(self, identifier: str) -> int:
        return self._inner.version_count(identifier)

    def cache_info(self) -> dict:
        return self._inner.cache_info()

    # -- accounting ------------------------------------------------------------

    def stored_atoms(self) -> int:
        return self._inner.stored_atoms()

    def stored_versions(self) -> int:
        return self._inner.stored_versions()

    def record_space(self) -> None:
        """Write the inner backend's space accounting into gauges
        (``stored_atoms`` / ``stored_versions``).  Explicit rather than
        ambient: space accounting walks every relation, too costly for
        the install path."""
        sink = self._sink()
        sink.gauge(f"{self._prefix}.stored_atoms").set(
            self._inner.stored_atoms()
        )
        sink.gauge(f"{self._prefix}.stored_versions").set(
            self._inner.stored_versions()
        )

    def __repr__(self) -> str:
        return f"InstrumentedBackend({self._inner!r})"
