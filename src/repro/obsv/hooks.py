"""Observer installation for the expression-evaluation and WAL hot paths.

Expression evaluation is the innermost loop of the whole stack — every
``modify_state``, Quel statement and benchmark hits it — so it uses the
cheapest possible disabled-state guard: a module-global observer slot in
:mod:`repro.core.expressions` that is ``None`` until metrics are enabled.
Each node's ``evaluate`` pays one global load and an ``is None`` test;
when metrics are on, the installed :class:`ExpressionObserver` holds its
counters directly so the enabled path is a bound-method call and an
integer add, with no per-event name lookup.

The durability layer uses the same pattern: :class:`WalObserver` holds
the ``wal.*`` instruments (records appended, fsyncs, rotations,
compactions, recovery replay lengths), and
:func:`repro.durability.wal` / ``checkpoint`` / ``recovery`` fetch it
through :func:`wal_observer`, which is ``None`` until metrics are on —
appends in the ``never``/``batch`` fsync configurations stay on the
fast path.

:func:`install` / :func:`uninstall` are called by
:func:`repro.obsv.registry.enable` / ``disable``; they are not part of
the public surface.
"""

from __future__ import annotations

from typing import Optional

from repro.obsv.registry import MetricsRegistry

__all__ = [
    "ExpressionObserver",
    "WalObserver",
    "install",
    "uninstall",
    "wal_observer",
]


class ExpressionObserver:
    """Per-event callbacks the expression evaluator fires when metrics
    are enabled.  Counters are resolved once, at installation."""

    __slots__ = ("_nodes", "_rollbacks", "_memo_hits", "_memo_misses")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._nodes = registry.counter("expr.nodes_evaluated")
        self._rollbacks = registry.counter("expr.rollback_evaluations")
        self._memo_hits = registry.counter("expr.memo_hits")
        self._memo_misses = registry.counter("expr.memo_misses")

    def node(self) -> None:
        """An expression node was evaluated."""
        self._nodes.inc()

    def rollback(self) -> None:
        """A ``ρ(I, N)`` leaf was evaluated — the fan-out of reads an
        expression issues against relation histories."""
        self._rollbacks.inc()

    def memo_hit(self) -> None:
        """``evaluate_memoized`` served a subtree from its cache."""
        self._memo_hits.inc()

    def memo_miss(self) -> None:
        """``evaluate_memoized`` had to compute a subtree."""
        self._memo_misses.inc()


class WalObserver:
    """Per-event callbacks for the durability layer (``wal.*`` metrics).
    Instruments are resolved once, at installation."""

    __slots__ = (
        "_records",
        "_bytes",
        "_fsyncs",
        "_rotations",
        "_torn",
        "_compactions",
        "_segments_dropped",
        "_checkpoints",
        "_invalid_checkpoints",
        "_recoveries",
        "_replay_length",
        "_recovery_seconds",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self._records = registry.counter("wal.records_appended")
        self._bytes = registry.counter("wal.bytes_appended")
        self._fsyncs = registry.counter("wal.fsyncs")
        self._rotations = registry.counter("wal.segments_rotated")
        self._torn = registry.counter("wal.torn_records_truncated")
        self._compactions = registry.counter("wal.compactions")
        self._segments_dropped = registry.counter("wal.segments_dropped")
        self._checkpoints = registry.counter("wal.checkpoints_written")
        self._invalid_checkpoints = registry.counter(
            "wal.checkpoints_invalid_skipped"
        )
        self._recoveries = registry.counter("wal.recoveries")
        self._replay_length = registry.histogram(
            "wal.recovery_replay_length"
        )
        self._recovery_seconds = registry.histogram(
            "wal.recovery_seconds"
        )

    def appended(self, nbytes: int) -> None:
        """One record (``nbytes`` framed bytes) was appended."""
        self._records.inc()
        self._bytes.inc(nbytes)

    def fsynced(self) -> None:
        """The log fsynced its current segment."""
        self._fsyncs.inc()

    def rotated(self) -> None:
        """A full segment was closed and a new one started."""
        self._rotations.inc()

    def torn(self, records: int) -> None:
        """Torn/corrupt records were truncated away at log open."""
        self._torn.inc(records)

    def compacted(self, segments: int) -> None:
        """A compaction pass dropped fully-checkpointed segments."""
        self._compactions.inc()
        self._segments_dropped.inc(segments)

    def checkpointed(self) -> None:
        """A checkpoint file was published."""
        self._checkpoints.inc()

    def invalid_checkpoint(self) -> None:
        """Recovery skipped a checkpoint that failed validation."""
        self._invalid_checkpoints.inc()

    def recovered(self, replayed: int, seconds: float) -> None:
        """A recovery completed, re-executing ``replayed`` records."""
        self._recoveries.inc()
        self._replay_length.observe(replayed)
        self._recovery_seconds.observe(seconds)


_WAL_OBSERVER: Optional[WalObserver] = None


def wal_observer() -> Optional[WalObserver]:
    """The installed :class:`WalObserver`, or None while metrics are
    disabled (the durability layer's zero-cost guard)."""
    return _WAL_OBSERVER


def install(registry: MetricsRegistry) -> None:
    """Point the expression evaluator's and durability layer's observer
    slots at ``registry``."""
    global _WAL_OBSERVER
    from repro.core import expressions

    expressions._OBSERVER = ExpressionObserver(registry)
    _WAL_OBSERVER = WalObserver(registry)


def uninstall() -> None:
    """Clear the observer slots (the disabled, zero-cost state)."""
    global _WAL_OBSERVER
    from repro.core import expressions

    expressions._OBSERVER = None
    _WAL_OBSERVER = None
