"""Observer installation for the expression-evaluation hot path.

Expression evaluation is the innermost loop of the whole stack — every
``modify_state``, Quel statement and benchmark hits it — so it uses the
cheapest possible disabled-state guard: a module-global observer slot in
:mod:`repro.core.expressions` that is ``None`` until metrics are enabled.
Each node's ``evaluate`` pays one global load and an ``is None`` test;
when metrics are on, the installed :class:`ExpressionObserver` holds its
counters directly so the enabled path is a bound-method call and an
integer add, with no per-event name lookup.

:func:`install` / :func:`uninstall` are called by
:func:`repro.obsv.registry.enable` / ``disable``; they are not part of
the public surface.
"""

from __future__ import annotations

from repro.obsv.registry import MetricsRegistry

__all__ = ["ExpressionObserver", "install", "uninstall"]


class ExpressionObserver:
    """Per-event callbacks the expression evaluator fires when metrics
    are enabled.  Counters are resolved once, at installation."""

    __slots__ = ("_nodes", "_rollbacks", "_memo_hits", "_memo_misses")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._nodes = registry.counter("expr.nodes_evaluated")
        self._rollbacks = registry.counter("expr.rollback_evaluations")
        self._memo_hits = registry.counter("expr.memo_hits")
        self._memo_misses = registry.counter("expr.memo_misses")

    def node(self) -> None:
        """An expression node was evaluated."""
        self._nodes.inc()

    def rollback(self) -> None:
        """A ``ρ(I, N)`` leaf was evaluated — the fan-out of reads an
        expression issues against relation histories."""
        self._rollbacks.inc()

    def memo_hit(self) -> None:
        """``evaluate_memoized`` served a subtree from its cache."""
        self._memo_hits.inc()

    def memo_miss(self) -> None:
        """``evaluate_memoized`` had to compute a subtree."""
        self._memo_misses.inc()


def install(registry: MetricsRegistry) -> None:
    """Point the expression evaluator's observer slot at ``registry``."""
    from repro.core import expressions

    expressions._OBSERVER = ExpressionObserver(registry)


def uninstall() -> None:
    """Clear the observer slot (the disabled, zero-cost state)."""
    from repro.core import expressions

    expressions._OBSERVER = None
