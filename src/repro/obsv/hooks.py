"""Observer installation for the expression-evaluation and WAL hot paths.

Expression evaluation is the innermost loop of the whole stack — every
``modify_state``, Quel statement and benchmark hits it — so it uses the
cheapest possible disabled-state guard: a module-global observer slot in
:mod:`repro.core.expressions` that is ``None`` until metrics are enabled.
Each node's ``evaluate`` pays one global load and an ``is None`` test;
when metrics are on, the installed :class:`ExpressionObserver` holds its
counters directly so the enabled path is a bound-method call and an
integer add, with no per-event name lookup.

The durability layer uses the same pattern: :class:`WalObserver` holds
the ``wal.*`` instruments (records appended, fsyncs, rotations,
compactions, recovery replay lengths), and
:func:`repro.durability.wal` / ``checkpoint`` / ``recovery`` fetch it
through :func:`wal_observer`, which is ``None`` until metrics are on —
appends in the ``never``/``batch`` fsync configurations stay on the
fast path.

:func:`install` / :func:`uninstall` are called by
:func:`repro.obsv.registry.enable` / ``disable``; they are not part of
the public surface.
"""

from __future__ import annotations

from typing import Optional

from repro.obsv.registry import MetricsRegistry

__all__ = [
    "ClusterObserver",
    "EngineObserver",
    "ExpressionObserver",
    "OptimizerObserver",
    "ReplicationObserver",
    "ShardObserver",
    "WalObserver",
    "install",
    "uninstall",
    "cluster_observer",
    "repl_observer",
    "shard_observer",
    "wal_observer",
]


class ExpressionObserver:
    """Per-event callbacks the expression evaluator fires when metrics
    are enabled.  Counters are resolved once, at installation."""

    __slots__ = ("_nodes", "_rollbacks", "_memo_hits", "_memo_misses")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._nodes = registry.counter("expr.nodes_evaluated")
        self._rollbacks = registry.counter("expr.rollback_evaluations")
        self._memo_hits = registry.counter("expr.memo_hits")
        self._memo_misses = registry.counter("expr.memo_misses")

    def node(self) -> None:
        """An expression node was evaluated."""
        self._nodes.inc()

    def rollback(self) -> None:
        """A ``ρ(I, N)`` leaf was evaluated — the fan-out of reads an
        expression issues against relation histories."""
        self._rollbacks.inc()

    def memo_hit(self) -> None:
        """``evaluate_memoized`` served a subtree from its cache."""
        self._memo_hits.inc()

    def memo_miss(self) -> None:
        """``evaluate_memoized`` had to compute a subtree."""
        self._memo_misses.inc()


class EngineObserver:
    """Per-event callbacks the compiled expression engine fires when
    metrics are enabled (``engine.*``).  Counters are resolved once, at
    installation; the per-step hot path reuses the expression layer's
    ``expr.nodes_evaluated`` counter through :meth:`node` so interpreted
    and compiled evaluation report node work under one name."""

    __slots__ = (
        "_nodes",
        "_compiled",
        "_steps_compiled",
        "_cse_saved",
        "_executions",
        "_steps_executed",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self._nodes = registry.counter("expr.nodes_evaluated")
        self._compiled = registry.counter("engine.plans_compiled")
        self._steps_compiled = registry.counter("engine.steps_compiled")
        self._cse_saved = registry.counter("engine.cse_nodes_saved")
        self._executions = registry.counter("engine.plan_executions")
        self._steps_executed = registry.counter("engine.steps_executed")

    def node(self) -> None:
        """A compiled step computed one composite node's result."""
        self._nodes.inc()

    def compiled(self, steps: int, tree_nodes: int) -> None:
        """A plan was compiled: ``steps`` distinct subtrees covering a
        tree of ``tree_nodes`` nodes (the difference is CSE sharing)."""
        self._compiled.inc()
        self._steps_compiled.inc(steps)
        self._cse_saved.inc(max(0, tree_nodes - steps))

    def executed(self, steps: int) -> None:
        """A compiled plan ran to completion."""
        self._executions.inc()
        self._steps_executed.inc(steps)


class OptimizerObserver:
    """Per-event callbacks the cost-guided rewriter fires when metrics
    are enabled (``optimizer.*``).  Counters are resolved once, at
    installation."""

    __slots__ = (
        "_plans",
        "_considered",
        "_accepted",
        "_rejected",
        "_cost_ratio",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self._plans = registry.counter("optimizer.plans_optimized")
        self._considered = registry.counter(
            "optimizer.rewrites_considered"
        )
        self._accepted = registry.counter("optimizer.rewrites_accepted")
        self._rejected = registry.counter("optimizer.rewrites_rejected")
        self._cost_ratio = registry.histogram("optimizer.cost_ratio")

    def rewrite(self, accepted: bool) -> None:
        """One candidate rewrite was priced against the cost gate."""
        self._considered.inc()
        if accepted:
            self._accepted.inc()
        else:
            self._rejected.inc()

    def optimized(self, baseline: float, final: float) -> None:
        """A plan finished optimization; record the cost ratio (final
        over baseline — below 1.0 means the optimizer found a win)."""
        self._plans.inc()
        if baseline > 0:
            self._cost_ratio.observe(final / baseline)


class WalObserver:
    """Per-event callbacks for the durability layer (``wal.*`` metrics).
    Instruments are resolved once, at installation."""

    __slots__ = (
        "_records",
        "_bytes",
        "_fsyncs",
        "_rotations",
        "_torn",
        "_compactions",
        "_segments_dropped",
        "_checkpoints",
        "_invalid_checkpoints",
        "_recoveries",
        "_replay_length",
        "_recovery_seconds",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self._records = registry.counter("wal.records_appended")
        self._bytes = registry.counter("wal.bytes_appended")
        self._fsyncs = registry.counter("wal.fsyncs")
        self._rotations = registry.counter("wal.segments_rotated")
        self._torn = registry.counter("wal.torn_records_truncated")
        self._compactions = registry.counter("wal.compactions")
        self._segments_dropped = registry.counter("wal.segments_dropped")
        self._checkpoints = registry.counter("wal.checkpoints_written")
        self._invalid_checkpoints = registry.counter(
            "wal.checkpoints_invalid_skipped"
        )
        self._recoveries = registry.counter("wal.recoveries")
        self._replay_length = registry.histogram(
            "wal.recovery_replay_length"
        )
        self._recovery_seconds = registry.histogram(
            "wal.recovery_seconds"
        )

    def appended(self, nbytes: int) -> None:
        """One record (``nbytes`` framed bytes) was appended."""
        self._records.inc()
        self._bytes.inc(nbytes)

    def fsynced(self) -> None:
        """The log fsynced its current segment."""
        self._fsyncs.inc()

    def rotated(self) -> None:
        """A full segment was closed and a new one started."""
        self._rotations.inc()

    def torn(self, records: int) -> None:
        """Torn/corrupt records were truncated away at log open."""
        self._torn.inc(records)

    def compacted(self, segments: int) -> None:
        """A compaction pass dropped fully-checkpointed segments."""
        self._compactions.inc()
        self._segments_dropped.inc(segments)

    def checkpointed(self) -> None:
        """A checkpoint file was published."""
        self._checkpoints.inc()

    def invalid_checkpoint(self) -> None:
        """Recovery skipped a checkpoint that failed validation."""
        self._invalid_checkpoints.inc()

    def recovered(self, replayed: int, seconds: float) -> None:
        """A recovery completed, re-executing ``replayed`` records."""
        self._recoveries.inc()
        self._replay_length.observe(replayed)
        self._recovery_seconds.observe(seconds)


class ReplicationObserver:
    """Per-event callbacks for the replication layer (``repl.*``
    metrics).  Instruments are resolved once, at installation."""

    __slots__ = (
        "_batches",
        "_applied",
        "_duplicates",
        "_gaps",
        "_divergences",
        "_transient_errors",
        "_retries",
        "_retry_sleep",
        "_resnapshots",
        "_promotions",
        "_stale_rejected",
        "_stale_served",
        "_lag",
        "_batch_size",
        "_apply_seconds",
        "_catchup_seconds",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self._batches = registry.counter("repl.batches_fetched")
        self._applied = registry.counter("repl.records_applied")
        self._duplicates = registry.counter("repl.duplicates_skipped")
        self._gaps = registry.counter("repl.gaps_detected")
        self._divergences = registry.counter("repl.divergences_detected")
        self._transient_errors = registry.counter(
            "repl.transient_errors"
        )
        self._retries = registry.counter("repl.retries")
        self._retry_sleep = registry.histogram("repl.retry_sleep_seconds")
        self._resnapshots = registry.counter("repl.resnapshots")
        self._promotions = registry.counter("repl.promotions")
        self._stale_rejected = registry.counter(
            "repl.stale_reads_rejected"
        )
        self._stale_served = registry.counter("repl.stale_reads_served")
        self._lag = registry.histogram("repl.lag_records")
        self._batch_size = registry.histogram("repl.batch_records")
        self._apply_seconds = registry.histogram("repl.apply_seconds")
        self._catchup_seconds = registry.histogram(
            "repl.catchup_seconds"
        )

    def fetched(self, records: int) -> None:
        """One batch came back from the stream (possibly empty)."""
        self._batches.inc()
        self._batch_size.observe(records)

    def applied(self, records: int, seconds: float) -> None:
        """An apply round executed ``records`` shipped records."""
        self._applied.inc(records)
        self._apply_seconds.observe(seconds)

    def duplicate(self) -> None:
        """A record at or below the applied LSN was skipped."""
        self._duplicates.inc()

    def gap(self) -> None:
        """A delivery skipped LSNs (reorder/drop or compaction)."""
        self._gaps.inc()

    def diverged(self) -> None:
        """Replay produced a transaction number the record disagrees
        with — the replica is now condemned."""
        self._divergences.inc()

    def transient_error(self) -> None:
        """A fetch failed in a way retry may clear."""
        self._transient_errors.inc()

    def retried(self, sleep_seconds: float) -> None:
        """The retry policy is about to back off and go again."""
        self._retries.inc()
        self._retry_sleep.observe(sleep_seconds)

    def resnapshotted(self) -> None:
        """A replica rebuilt itself from a primary checkpoint."""
        self._resnapshots.inc()

    def promoted(self) -> None:
        """A replica was promoted to a standalone primary."""
        self._promotions.inc()

    def stale_read(self, served: bool) -> None:
        """A read hit the ``max_lag`` bound (served stale or rejected)."""
        if served:
            self._stale_served.inc()
        else:
            self._stale_rejected.inc()

    def lag(self, records: int) -> None:
        """An observed primary-minus-replica LSN lag sample."""
        self._lag.observe(records)

    def caught_up(self, seconds: float) -> None:
        """A catch-up loop reached the primary's tail."""
        self._catchup_seconds.observe(seconds)


class ShardObserver:
    """Per-event callbacks for the sharding layer (``shard.*``
    metrics).  Instruments are resolved once, at installation."""

    __slots__ = (
        "_routed",
        "_coordinated",
        "_noops",
        "_queries",
        "_single",
        "_scattered",
        "_subqueries",
        "_merges",
        "_fanout",
        "_rebalances",
        "_moves_wal",
        "_moves_copy",
        "_moves_repaired",
        "_rebalance_seconds",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self._routed = registry.counter("shard.commands_routed")
        self._coordinated = registry.counter("shard.commands_coordinated")
        self._noops = registry.counter("shard.commands_noop")
        self._queries = registry.counter("shard.queries")
        self._single = registry.counter("shard.queries_single_shard")
        self._scattered = registry.counter("shard.queries_scattered")
        self._subqueries = registry.counter("shard.subqueries_routed")
        self._merges = registry.counter("shard.merges")
        self._fanout = registry.histogram("shard.query_fanout")
        self._rebalances = registry.counter("shard.rebalances")
        self._moves_wal = registry.counter("shard.moves_wal_replayed")
        self._moves_copy = registry.counter("shard.moves_state_copied")
        self._moves_repaired = registry.counter(
            "shard.moves_stale_repaired"
        )
        self._rebalance_seconds = registry.histogram(
            "shard.rebalance_seconds"
        )

    def routed(self) -> None:
        """A command was shipped untouched to its owning shard."""
        self._routed.inc()

    def coordinated(self) -> None:
        """A cross-shard ``modify_state`` was evaluated at the
        coordinator and shipped to the owner as a constant state."""
        self._coordinated.inc()

    def noop(self) -> None:
        """The coordinator short-circuited a paper no-op (modify of an
        unbound identifier) without touching any shard."""
        self._noops.inc()

    def query(self, fanout: int) -> None:
        """A top-level scatter-gather evaluation touched ``fanout``
        shards."""
        self._queries.inc()
        self._fanout.observe(fanout)
        if fanout > 1:
            self._scattered.inc()
        else:
            self._single.inc()

    def subquery(self) -> None:
        """A (sub)expression was routed to a single shard."""
        self._subqueries.inc()

    def merge(self) -> None:
        """The coordinator merged cross-shard operands for one node."""
        self._merges.inc()

    def rebalanced(
        self,
        wal_replayed: int,
        state_copied: int,
        repaired: int,
        seconds: float,
    ) -> None:
        """A rebalance pass finished, having moved identifiers by WAL
        replay or state copy, repairing stale target copies in place."""
        self._rebalances.inc()
        self._moves_wal.inc(wal_replayed)
        self._moves_copy.inc(state_copied)
        self._moves_repaired.inc(repaired)
        self._rebalance_seconds.observe(seconds)


class ClusterObserver:
    """Per-event callbacks for the cluster layer (``cluster.*``
    metrics).  Instruments are resolved once, at installation."""

    __slots__ = (
        "_failovers",
        "_reads_replica",
        "_reads_primary",
        "_stale_rejections",
        "_replicas_added",
        "_shards_added",
        "_catchup_records",
        "_lag",
        "_probes",
        "_probe_failures",
        "_auto_failovers",
        "_failover_failures",
        "_resyncs",
        "_backfills",
        "_degraded_marked",
        "_degraded_cleared",
        "_writes_shed",
        "_mttr",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self._failovers = registry.counter("cluster.failovers")
        self._reads_replica = registry.counter("cluster.reads_replica")
        self._reads_primary = registry.counter("cluster.reads_primary")
        self._stale_rejections = registry.counter(
            "cluster.stale_rejections"
        )
        self._replicas_added = registry.counter("cluster.replicas_added")
        self._shards_added = registry.counter("cluster.shards_added")
        self._catchup_records = registry.counter(
            "cluster.catchup_records"
        )
        self._lag = registry.histogram("cluster.shard_lag_records")
        self._probes = registry.counter("cluster.health.probes")
        self._probe_failures = registry.counter(
            "cluster.health.probe_failures"
        )
        self._auto_failovers = registry.counter(
            "cluster.health.auto_failovers"
        )
        self._failover_failures = registry.counter(
            "cluster.health.failover_failures"
        )
        self._resyncs = registry.counter("cluster.health.resyncs")
        self._backfills = registry.counter("cluster.health.backfills")
        self._degraded_marked = registry.counter(
            "cluster.health.degraded_marked"
        )
        self._degraded_cleared = registry.counter(
            "cluster.health.degraded_cleared"
        )
        self._writes_shed = registry.counter(
            "cluster.health.writes_shed"
        )
        self._mttr = registry.histogram("cluster.health.mttr_seconds")

    def failed_over(self) -> None:
        """A shard's primary was replaced by a promoted replica."""
        self._failovers.inc()

    def read(self, from_replica: bool) -> None:
        """A fan-out read was served — from a replica or, when a shard
        has none attached, from its primary."""
        if from_replica:
            self._reads_replica.inc()
        else:
            self._reads_primary.inc()

    def stale_rejected(self) -> None:
        """A bounded-staleness read was refused (``on_stale='reject'``
        and the chosen replica sat beyond ``max_lag``)."""
        self._stale_rejections.inc()

    def replica_added(self) -> None:
        """A replica was attached to a shard's primary stream."""
        self._replicas_added.inc()

    def shard_added(self) -> None:
        """A primary (plus replica set) joined the topology."""
        self._shards_added.inc()

    def caught_up(self, records: int) -> None:
        """A catch-up pass applied ``records`` shipped records."""
        self._catchup_records.inc(records)

    def lag(self, records: int) -> None:
        """An observed per-shard replica lag sample (LSN distance)."""
        self._lag.observe(records)

    def probed(self, ok: bool) -> None:
        """The supervisor probed one shard primary."""
        self._probes.inc()
        if not ok:
            self._probe_failures.inc()

    def auto_failed_over(self, seconds: float) -> None:
        """The supervisor promoted a replica over a dead primary;
        ``seconds`` is the detection-to-recovery time (MTTR)."""
        self._auto_failovers.inc()
        self._mttr.observe(seconds)

    def auto_failover_failed(self) -> None:
        """A supervisor-initiated failover was refused (no candidate,
        or validation failed); the shard stays degraded."""
        self._failover_failures.inc()

    def resynced(self) -> None:
        """A condemned replica was rebuilt from its primary's
        checkpoint and returned to service."""
        self._resyncs.inc()

    def backfilled(self) -> None:
        """The supervisor attached a replacement replica to bring a
        shard's live set back to the configured size."""
        self._backfills.inc()

    def degraded(self, marked: bool) -> None:
        """A shard entered (``marked=True``) or left degraded mode."""
        if marked:
            self._degraded_marked.inc()
        else:
            self._degraded_cleared.inc()

    def write_shed(self) -> None:
        """A write was refused because its target shard is degraded."""
        self._writes_shed.inc()


_WAL_OBSERVER: Optional[WalObserver] = None
_REPL_OBSERVER: Optional[ReplicationObserver] = None
_SHARD_OBSERVER: Optional[ShardObserver] = None
_CLUSTER_OBSERVER: Optional[ClusterObserver] = None


def wal_observer() -> Optional[WalObserver]:
    """The installed :class:`WalObserver`, or None while metrics are
    disabled (the durability layer's zero-cost guard)."""
    return _WAL_OBSERVER


def repl_observer() -> Optional[ReplicationObserver]:
    """The installed :class:`ReplicationObserver`, or None while metrics
    are disabled (the replication layer's zero-cost guard)."""
    return _REPL_OBSERVER


def shard_observer() -> Optional[ShardObserver]:
    """The installed :class:`ShardObserver`, or None while metrics are
    disabled (the sharding layer's zero-cost guard)."""
    return _SHARD_OBSERVER


def cluster_observer() -> Optional[ClusterObserver]:
    """The installed :class:`ClusterObserver`, or None while metrics
    are disabled (the cluster layer's zero-cost guard)."""
    return _CLUSTER_OBSERVER


def install(registry: MetricsRegistry) -> None:
    """Point the expression evaluator's, durability layer's,
    replication layer's, sharding layer's and cluster layer's observer
    slots at ``registry``."""
    global _WAL_OBSERVER, _REPL_OBSERVER, _SHARD_OBSERVER
    global _CLUSTER_OBSERVER
    from repro.core import compile as engine
    from repro.core import expressions
    from repro.optimizer import rewriter

    expressions._OBSERVER = ExpressionObserver(registry)
    engine._OBSERVER = EngineObserver(registry)
    rewriter._OBSERVER = OptimizerObserver(registry)
    _WAL_OBSERVER = WalObserver(registry)
    _REPL_OBSERVER = ReplicationObserver(registry)
    _SHARD_OBSERVER = ShardObserver(registry)
    _CLUSTER_OBSERVER = ClusterObserver(registry)


def uninstall() -> None:
    """Clear the observer slots (the disabled, zero-cost state)."""
    global _WAL_OBSERVER, _REPL_OBSERVER, _SHARD_OBSERVER
    global _CLUSTER_OBSERVER
    from repro.core import compile as engine
    from repro.core import expressions
    from repro.optimizer import rewriter

    expressions._OBSERVER = None
    engine._OBSERVER = None
    rewriter._OBSERVER = None
    _WAL_OBSERVER = None
    _REPL_OBSERVER = None
    _SHARD_OBSERVER = None
    _CLUSTER_OBSERVER = None
