"""The process-local metrics registry.

Observability exists to make the paper's Section 5 correctness claim
*checkable at scale*: a physical implementation is correct iff it is
observation-equivalent to the simple semantics, and equivalence arguments
are only trustworthy when we can see what the physical layer actually did
— how many deltas were replayed, how often validation aborted, how many
expression nodes were evaluated.

Design constraints:

* **Near-zero cost when disabled.**  Metrics are off by default.  The
  module-level switch swaps a :class:`NullRegistry` (every operation a
  no-op) for a real :class:`MetricsRegistry`; instrumented call sites
  guard with :func:`enabled` — one module-global read and a branch.
* **Process-local and dependency-free.**  Plain dictionaries of plain
  objects; :meth:`MetricsRegistry.snapshot` and
  :meth:`MetricsRegistry.to_json` export everything for benchmark
  sidecars and tests.

Three instrument kinds cover the stack:

* :class:`Counter` — monotonically increasing event counts
  (``storage.forward-delta.state_at_calls``).
* :class:`Gauge` — last-written point-in-time values
  (``storage.forward-delta.stored_atoms``).
* :class:`Histogram` — distributions (replay lengths, latencies), with
  :meth:`Histogram.time` providing a monotonic-clock timing context.

Metric names are dotted strings, ``<layer>.<component>.<event>``; the
full catalogue lives in ``docs/architecture.md``.
"""

from __future__ import annotations

import json
import math
import time
from typing import Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "enable",
    "disable",
    "enabled",
    "get",
]


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; :meth:`set` overwrites."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class _TimerContext:
    """``with histogram.time(): ...`` — observes elapsed seconds on the
    monotonic clock (``time.perf_counter``)."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class Histogram:
    """Streaming summary of a distribution: count, sum, min, max, mean,
    plus a small fixed-size reservoir of the most recent observations so
    snapshots can report a rough median without unbounded memory."""

    __slots__ = ("count", "total", "min", "max", "_recent", "_cursor")

    RESERVOIR_SIZE = 256

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._recent: list[float] = []
        self._cursor = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._recent) < self.RESERVOIR_SIZE:
            self._recent.append(value)
        else:
            self._recent[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.RESERVOIR_SIZE

    def time(self) -> _TimerContext:
        """A context manager observing elapsed monotonic seconds."""
        return _TimerContext(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def median(self) -> float:
        """Approximate median over the recent-observation reservoir."""
        if not self._recent:
            return 0.0
        ordered = sorted(self._recent)
        return ordered[len(ordered) // 2]

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "median": self.median,
        }


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first use."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def timer(self, name: str) -> _TimerContext:
        """Shorthand: a timing context over ``histogram(name)``."""
        return self.histogram(name).time()

    # -- inspection ----------------------------------------------------------

    def names(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._histograms

    def snapshot(self) -> dict:
        """All instruments as plain data, suitable for JSON export."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def reset(self) -> None:
        """Zero every instrument *in place* (used between benchmark
        phases).  Instrument object identity survives, so references
        cached at enable time — e.g. the expression observer's counters
        — keep recording into the registry afterwards."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
        for histogram in self._histograms.values():
            histogram.__init__()


class _NullInstrument:
    """Absorbs every instrument operation; doubles as a timer context."""

    __slots__ = ()

    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    median = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullInstrument":
        return self

    def summary(self) -> dict:
        return {"count": 0, "sum": 0.0}

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: every instrument is a shared no-op."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def timer(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def names(self) -> Iterator[str]:
        return iter(())

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def reset(self) -> None:
        pass


# ---------------------------------------------------------------------------
# the module-level switch
# ---------------------------------------------------------------------------

_NULL_REGISTRY = NullRegistry()
_registry: "MetricsRegistry | NullRegistry" = _NULL_REGISTRY
_enabled = False


def enabled() -> bool:
    """True iff metrics collection is on.  Instrumented call sites guard
    with this so the disabled cost is one call and a branch."""
    return _enabled


def get() -> "MetricsRegistry | NullRegistry":
    """The active registry (the shared :class:`NullRegistry` when
    disabled, so unconditional use is always safe)."""
    return _registry


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Switch metrics on, installing ``registry`` (or a fresh one) as the
    process-wide sink, and hook the expression evaluator.  Returns the
    active registry.  Idempotent when already enabled with no argument."""
    global _registry, _enabled
    if registry is None:
        registry = (
            _registry
            if isinstance(_registry, MetricsRegistry)
            else MetricsRegistry()
        )
    _registry = registry
    _enabled = True
    from repro.obsv import hooks

    hooks.install(registry)
    return registry


def disable() -> None:
    """Switch metrics off: restore the no-op registry and unhook the
    expression evaluator."""
    global _registry, _enabled
    _enabled = False
    _registry = _NULL_REGISTRY
    from repro.obsv import hooks

    hooks.uninstall()
