"""Observability for the versioned-database stack.

The paper's Section 5 correctness criterion — a physical implementation
is correct iff it is observation-equivalent to the simple denotational
semantics — is only checkable at scale when the physical layer's
behaviour is *visible*.  This package makes it visible:

* :mod:`repro.obsv.registry` — a process-local metrics registry
  (counters, gauges, histograms with monotonic-clock timers), off by
  default behind a module-level switch and near-zero-cost when off;
* :mod:`repro.obsv.instrumented` — :class:`InstrumentedBackend`, a
  transparent wrapper observing any ``StorageBackend`` without
  modification;
* :mod:`repro.obsv.trace` — EXPLAIN-style per-command traces of the
  operator tree with per-node timings.

Typical use::

    from repro.obsv import registry

    reg = registry.enable()
    ...                       # run the workload
    print(reg.to_json())      # or reg.snapshot()
    registry.disable()

``InstrumentedBackend`` and the trace helpers are imported lazily: the
concrete backends import ``repro.obsv.registry`` for their internal
hooks, and an eager import here would close a cycle through
``repro.storage.backend``.
"""

from repro.obsv.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    enabled,
    get,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "disable",
    "enable",
    "enabled",
    "get",
    "registry",
    "InstrumentedBackend",
    "ExpressionTrace",
    "CommandTrace",
    "trace_evaluate",
    "trace_command",
    "format_trace",
]

_LAZY = {
    "InstrumentedBackend": ("repro.obsv.instrumented", "InstrumentedBackend"),
    "ExpressionTrace": ("repro.obsv.trace", "ExpressionTrace"),
    "CommandTrace": ("repro.obsv.trace", "CommandTrace"),
    "trace_evaluate": ("repro.obsv.trace", "trace_evaluate"),
    "trace_command": ("repro.obsv.trace", "trace_command"),
    "format_trace": ("repro.obsv.trace", "format_trace"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
