"""EXPLAIN-style traces: the operator tree with per-node timings.

:func:`trace_evaluate` evaluates an expression the same way
``evaluate_memoized`` would — structural recursion over ``children()``
with :func:`repro.core.expressions.apply_node` doing each node's own
work — but records, per node, the wall-clock cost of that node's *local*
work (excluding children), the cumulative subtree cost, and the result
cardinality.  Because both evaluators share ``apply_node``, the trace is
the real evaluation, not a re-implementation that could drift.

:func:`trace_command` runs a command and attaches the expression trace of
its ``modify_state`` payload; :func:`format_trace` renders either as an
aligned text tree, the moral equivalent of a DBMS ``EXPLAIN ANALYZE``::

    modify_state(r, ...)                            txn 3 → 4
    └─ Union                       rows=4   self=0.01ms total=0.21ms
       ├─ ρ(r, now)                rows=3   self=0.18ms total=0.18ms
       └─ Const(snapshot)          rows=1   self=0.02ms total=0.02ms

Tracing is independent of the metrics switch: it is explicitly requested
per call, never ambient, so it costs nothing when unused.
"""

from __future__ import annotations

import time
from typing import Optional, Union as TypingUnion

from repro.core.commands import (
    Command,
    DefineRelation,
    ModifyState,
    Sequence as CommandSequence,
)
from repro.core.database import Database
from repro.core.expressions import (
    _COMPOSITE_NODES,
    Expression,
    apply_node,
    is_empty_set,
)

__all__ = [
    "ExpressionTrace",
    "CommandTrace",
    "trace_evaluate",
    "trace_command",
    "format_trace",
]


class ExpressionTrace:
    """One operator-tree node of a traced evaluation."""

    __slots__ = ("operator", "detail", "rows", "self_seconds", "children")

    def __init__(
        self,
        operator: str,
        detail: str,
        rows: Optional[int],
        self_seconds: float,
        children: list["ExpressionTrace"],
    ) -> None:
        #: Node class name (``Union``, ``Select``, ``Rollback`` ...).
        self.operator = operator
        #: The node's ``repr`` with its subtree elided — predicate,
        #: projection list, rollback target, etc.
        self.detail = detail
        #: Result cardinality; ``None`` when the result is the untyped ∅.
        self.rows = rows
        #: Seconds spent in this node's own work, children excluded.
        self.self_seconds = self_seconds
        self.children = children

    @property
    def total_seconds(self) -> float:
        """Cumulative cost of this subtree."""
        return self.self_seconds + sum(
            child.total_seconds for child in self.children
        )

    def to_dict(self) -> dict:
        """Plain-data form for JSON export alongside metrics sidecars."""
        return {
            "operator": self.operator,
            "detail": self.detail,
            "rows": self.rows,
            "self_seconds": self.self_seconds,
            "total_seconds": self.total_seconds,
            "children": [child.to_dict() for child in self.children],
        }


class CommandTrace:
    """A traced command execution: the command, its transaction-number
    effect, and the expression trace of a ``modify_state`` payload."""

    __slots__ = (
        "command",
        "txn_before",
        "txn_after",
        "seconds",
        "expression",
        "children",
    )

    def __init__(
        self,
        command: str,
        txn_before: int,
        txn_after: int,
        seconds: float,
        expression: Optional[ExpressionTrace],
        children: list["CommandTrace"],
    ) -> None:
        self.command = command
        self.txn_before = txn_before
        self.txn_after = txn_after
        self.seconds = seconds
        self.expression = expression
        self.children = children

    def to_dict(self) -> dict:
        return {
            "command": self.command,
            "txn_before": self.txn_before,
            "txn_after": self.txn_after,
            "seconds": self.seconds,
            "expression": (
                None if self.expression is None else self.expression.to_dict()
            ),
            "children": [child.to_dict() for child in self.children],
        }


def _node_detail(node: Expression) -> str:
    """A short label for a node: its repr with child reprs elided."""
    children = node.children()
    if not children:
        return repr(node)
    text = repr(node)
    for child in children:
        text = text.replace(repr(child), "…")
    if len(text) > 60:
        text = text[:57] + "..."
    return text


def trace_evaluate(
    expression: Expression, database: Database
) -> tuple[object, ExpressionTrace]:
    """Evaluate ``expression`` against ``database``, returning
    ``(result, trace)``.

    The result is exactly what ``expression.evaluate(database)`` returns
    (same ``apply_node`` dispatch); the trace is the operator tree with
    per-node timings and cardinalities.
    """
    if isinstance(expression, _COMPOSITE_NODES):
        child_traces: list[ExpressionTrace] = []
        operands = []
        for child in expression.children():
            value, child_trace = trace_evaluate(child, database)
            operands.append(value)
            child_traces.append(child_trace)
        start = time.perf_counter()
        result = apply_node(expression, operands, database)
        elapsed = time.perf_counter() - start
    else:
        child_traces = []
        start = time.perf_counter()
        result = expression.evaluate(database)
        elapsed = time.perf_counter() - start
    rows = None if is_empty_set(result) else len(result)  # type: ignore[arg-type]
    trace = ExpressionTrace(
        type(expression).__name__,
        _node_detail(expression),
        rows,
        elapsed,
        child_traces,
    )
    return result, trace


def trace_command(
    command: Command, database: Database
) -> tuple[Database, CommandTrace]:
    """Execute ``command`` against ``database``, returning
    ``(new_database, trace)``.

    For ``modify_state`` the expression evaluation is traced *and* the
    command is executed through its own ``execute`` (which re-evaluates
    the expression), so the returned database is byte-for-byte what
    untraced execution produces — tracing roughly doubles evaluation
    cost and is meant for interactive EXPLAIN, not ambient use.
    """
    if isinstance(command, CommandSequence):
        sub_traces: list[CommandTrace] = []
        start = time.perf_counter()
        current = database
        for part in (command.first, command.second):
            current, sub = trace_command(part, current)
            sub_traces.append(sub)
        elapsed = time.perf_counter() - start
        return current, CommandTrace(
            "sequence",
            database.transaction_number,
            current.transaction_number,
            elapsed,
            None,
            sub_traces,
        )
    expression_trace: Optional[ExpressionTrace] = None
    if isinstance(command, ModifyState) and database.lookup(
        command.identifier
    ) is not None:
        _, expression_trace = trace_evaluate(command.expression, database)
    start = time.perf_counter()
    new_database = command.execute(database)
    elapsed = time.perf_counter() - start
    return new_database, CommandTrace(
        repr(command),
        database.transaction_number,
        new_database.transaction_number,
        elapsed,
        expression_trace,
        [],
    )


def _format_expression(
    trace: ExpressionTrace, prefix: str, is_last: bool, lines: list[str]
) -> None:
    connector = "└─ " if is_last else "├─ "
    rows = "∅" if trace.rows is None else str(trace.rows)
    label = f"{prefix}{connector}{trace.detail}"
    lines.append(
        f"{label:<48s} rows={rows:<6s} "
        f"self={trace.self_seconds * 1e3:7.3f}ms "
        f"total={trace.total_seconds * 1e3:7.3f}ms"
    )
    child_prefix = prefix + ("   " if is_last else "│  ")
    for i, child in enumerate(trace.children):
        _format_expression(
            child, child_prefix, i == len(trace.children) - 1, lines
        )


def format_trace(
    trace: TypingUnion[ExpressionTrace, CommandTrace]
) -> str:
    """Render a trace as an aligned text tree (EXPLAIN ANALYZE style)."""
    lines: list[str] = []
    if isinstance(trace, ExpressionTrace):
        _format_expression(trace, "", True, lines)
        return "\n".join(lines)
    lines.append(
        f"{trace.command}    "
        f"txn {trace.txn_before} → {trace.txn_after}  "
        f"[{trace.seconds * 1e3:.3f}ms]"
    )
    if trace.expression is not None:
        _format_expression(trace.expression, "", True, lines)
    for child in trace.children:
        lines.append(format_trace(child))
    return "\n".join(lines)
