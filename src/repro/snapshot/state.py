"""Snapshot states.

``SNAPSHOT STATE`` is the paper's "domain of all valid snapshot states, as
defined in the snapshot algebra [Maier 1983], over elements of
{D1 ∪ D2 ∪ ... ∪ Dm}" (Section 3.2).  A :class:`SnapshotState` is an
immutable finite set of :class:`~repro.snapshot.tuples.SnapshotTuple` over a
single schema.

The *empty* snapshot state deserves care: ``FINDSTATE`` returns "the empty
set" when no state exists, and a relation that was just defined has no state
at all.  We allow an empty state over any schema, and we provide
:meth:`SnapshotState.empty` to build one.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence, Union

from repro.errors import SchemaError
from repro.snapshot.schema import Schema
from repro.snapshot.tuples import SnapshotTuple

__all__ = ["SnapshotState"]

RowLike = Union[SnapshotTuple, Sequence[Any], Mapping[str, Any]]


class SnapshotState:
    """An immutable set of tuples over one schema — a relation *instance*.

    >>> s = Schema(['name', 'dept'])
    >>> faculty = SnapshotState(s, [['merrie', 'physics'], ['tom', 'math']])
    >>> len(faculty)
    2
    """

    __slots__ = ("_schema", "_tuples", "_hash")

    def __init__(
        self, schema: Schema, rows: Iterable[RowLike] = ()
    ) -> None:
        tuples = []
        for row in rows:
            if isinstance(row, SnapshotTuple):
                if row.schema != schema:
                    raise SchemaError(
                        f"tuple schema {row.schema.names} does not match "
                        f"state schema {schema.names}"
                    )
                tuples.append(row)
            else:
                tuples.append(SnapshotTuple(schema, row))
        self._schema = schema
        self._tuples = frozenset(tuples)
        self._hash: int | None = None

    @classmethod
    def empty(cls, schema: Schema) -> "SnapshotState":
        """The empty state over the given schema."""
        return cls(schema, ())

    @classmethod
    def from_tuples(
        cls, schema: Schema, tuples: frozenset[SnapshotTuple]
    ) -> "SnapshotState":
        """Internal fast path: wrap a pre-validated frozen set of tuples."""
        state = cls.__new__(cls)
        state._schema = schema
        state._tuples = tuples
        state._hash = None
        return state

    # -- access ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The state's schema."""
        return self._schema

    @property
    def tuples(self) -> frozenset[SnapshotTuple]:
        """The tuples as a frozen set."""
        return self._tuples

    @property
    def cardinality(self) -> int:
        """The number of tuples."""
        return len(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[SnapshotTuple]:
        return iter(self._tuples)

    def __contains__(self, item: object) -> bool:
        return item in self._tuples

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def is_empty(self) -> bool:
        """True iff the state contains no tuples."""
        return not self._tuples

    def sorted_rows(self) -> list[tuple[Any, ...]]:
        """Deterministically ordered value rows, for display and testing."""
        return sorted(
            (t.values for t in self._tuples), key=lambda row: tuple(map(repr, row))
        )

    # -- convenience mutators (all return NEW states) -----------------------

    def with_tuple(self, row: RowLike) -> "SnapshotState":
        """A new state that also contains ``row``."""
        added = (
            row
            if isinstance(row, SnapshotTuple)
            else SnapshotTuple(self._schema, row)
        )
        if added.schema != self._schema:
            raise SchemaError(
                f"tuple schema {added.schema.names} does not match "
                f"state schema {self._schema.names}"
            )
        return SnapshotState.from_tuples(
            self._schema, self._tuples | {added}
        )

    def without_tuple(self, row: RowLike) -> "SnapshotState":
        """A new state with ``row`` removed (no-op if absent)."""
        removed = (
            row
            if isinstance(row, SnapshotTuple)
            else SnapshotTuple(self._schema, row)
        )
        return SnapshotState.from_tuples(
            self._schema, self._tuples - {removed}
        )

    # -- equality ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SnapshotState):
            return NotImplemented
        return self._schema == other._schema and self._tuples == other._tuples

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                ("SnapshotState", self._schema, self._tuples)
            )
        return self._hash

    def __repr__(self) -> str:
        rows = ", ".join(repr(t) for t in list(self._tuples)[:4])
        suffix = ", ..." if len(self._tuples) > 4 else ""
        return (
            f"SnapshotState({self._schema.names}, "
            f"{len(self._tuples)} tuples: {rows}{suffix})"
        )
