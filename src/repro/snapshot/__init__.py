"""The snapshot relational algebra (Codd 1970, Maier 1983).

This package is the substrate the paper builds on: it provides snapshot
states — finite sets of tuples over a relation schema — and the five
primitive operators (union, difference, cartesian product, projection,
selection) that "serve to define the snapshot algebra" (Section 3.1), plus
the usual derived operators (intersection, joins, rename, division).

The paper's new material lives in :mod:`repro.core`; nothing in this package
knows about transaction time.
"""

from repro.snapshot.attributes import (
    Attribute,
    Domain,
    BOOLEAN,
    INTEGER,
    NUMBER,
    STRING,
    USER_DEFINED_TIME,
    ANY,
)
from repro.snapshot.schema import Schema
from repro.snapshot.tuples import SnapshotTuple
from repro.snapshot.state import SnapshotState
from repro.snapshot.predicates import (
    Predicate,
    Comparison,
    And,
    Or,
    Not,
    TruePredicate,
    FalsePredicate,
    AttributeRef,
    Literal,
    attr,
    lit,
)
from repro.snapshot.operators import (
    union,
    difference,
    product,
    project,
    select,
)
from repro.snapshot.derived import (
    intersection,
    theta_join,
    natural_join,
    rename,
    divide,
    semijoin,
    antijoin,
)
from repro.snapshot.aggregates import aggregate

__all__ = [
    "Attribute",
    "Domain",
    "BOOLEAN",
    "INTEGER",
    "NUMBER",
    "STRING",
    "USER_DEFINED_TIME",
    "ANY",
    "Schema",
    "SnapshotTuple",
    "SnapshotState",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "FalsePredicate",
    "AttributeRef",
    "Literal",
    "attr",
    "lit",
    "union",
    "difference",
    "product",
    "project",
    "select",
    "intersection",
    "theta_join",
    "natural_join",
    "rename",
    "divide",
    "semijoin",
    "antijoin",
    "aggregate",
]
