"""Relation schemas.

A :class:`Schema` is an ordered sequence of distinctly named attributes.
Maier's treatment (which the paper adopts for snapshot states) identifies a
relation scheme with its attribute set; we additionally keep a stable order
so cartesian products and pretty-printed output are deterministic.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence, Union

from repro.errors import SchemaError
from repro.snapshot.attributes import ANY, Attribute, Domain

__all__ = ["Schema"]

AttributeLike = Union[Attribute, str]


def _as_attribute(item: AttributeLike) -> Attribute:
    if isinstance(item, Attribute):
        return item
    if isinstance(item, str):
        return Attribute(item, ANY)
    raise SchemaError(f"cannot interpret {item!r} as an attribute")


class Schema:
    """An ordered collection of distinctly named attributes.

    Schemas are immutable.  Attribute names must be unique within a schema;
    set-compatible operations (union, difference, intersection) require the
    two operand schemas to be *compatible*: same names, same domains, in the
    same order.

    >>> s = Schema(['name', 'dept'])
    >>> s.names
    ('name', 'dept')
    >>> 'name' in s
    True
    """

    __slots__ = ("_attributes", "_index", "_hash")

    def __init__(self, attributes: Iterable[AttributeLike]) -> None:
        attrs = tuple(_as_attribute(a) for a in attributes)
        index: dict[str, int] = {}
        for position, attribute in enumerate(attrs):
            if attribute.name in index:
                raise SchemaError(
                    f"duplicate attribute name {attribute.name!r} in schema"
                )
            index[attribute.name] = position
        self._attributes = attrs
        self._index = index
        self._hash: int | None = None

    # -- basic access -----------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attributes, in schema order."""
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        """The attribute names, in schema order."""
        return tuple(a.name for a in self._attributes)

    @property
    def degree(self) -> int:
        """The number of attributes (the relation's arity)."""
        return len(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, key: Union[int, str]) -> Attribute:
        if isinstance(key, int):
            return self._attributes[key]
        if isinstance(key, str):
            try:
                return self._attributes[self._index[key]]
            except KeyError:
                raise SchemaError(
                    f"schema has no attribute named {key!r}; "
                    f"attributes are {self.names}"
                ) from None
        raise SchemaError(f"invalid schema key: {key!r}")

    def position(self, name: str) -> int:
        """The 0-based position of the attribute with the given name."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"schema has no attribute named {name!r}; "
                f"attributes are {self.names}"
            ) from None

    def domain_of(self, name: str) -> Domain:
        """The value domain of the named attribute."""
        return self[name].domain

    # -- compatibility and construction -----------------------------------

    def is_compatible_with(self, other: "Schema") -> bool:
        """True iff the two schemas are union-compatible (same attributes in
        the same order)."""
        return self._attributes == other._attributes

    def require_compatible(self, other: "Schema", operation: str) -> None:
        """Raise :class:`SchemaError` unless the schemas are compatible."""
        if not self.is_compatible_with(other):
            raise SchemaError(
                f"{operation} requires compatible schemas; "
                f"got {self.names} and {other.names}"
            )

    def project(self, names: Sequence[str]) -> "Schema":
        """The sub-schema consisting of the named attributes, in the order
        given.  Raises :class:`SchemaError` on unknown or repeated names."""
        return Schema([self[name] for name in names])

    def concat(self, other: "Schema") -> "Schema":
        """The schema of a cartesian product: this schema's attributes
        followed by ``other``'s.  Raises on name collisions (the caller is
        expected to :meth:`rename` first, as in textbook treatments)."""
        collisions = set(self.names) & set(other.names)
        if collisions:
            raise SchemaError(
                "cartesian product with colliding attribute names "
                f"{sorted(collisions)}; rename one operand first"
            )
        return Schema(self._attributes + other._attributes)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """A schema with attributes renamed per ``mapping`` (old -> new
        names).  Unmentioned attributes keep their names."""
        unknown = set(mapping) - set(self.names)
        if unknown:
            raise SchemaError(
                f"rename refers to unknown attributes {sorted(unknown)}"
            )
        renamed = [
            a.renamed(mapping.get(a.name, a.name)) for a in self._attributes
        ]
        return Schema(renamed)

    def common_names(self, other: "Schema") -> tuple[str, ...]:
        """Attribute names present in both schemas, in this schema's order."""
        other_names = set(other.names)
        return tuple(n for n in self.names if n in other_names)

    # -- equality ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(("Schema", self._attributes))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{a.name}:{a.domain.name}" for a in self._attributes
        )
        return f"Schema({inner})"
