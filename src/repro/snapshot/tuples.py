"""Immutable snapshot tuples.

A :class:`SnapshotTuple` binds each attribute of a schema to a value in that
attribute's domain.  Tuples are immutable and hashable so that snapshot
states can be genuine sets, matching the set-theoretic semantics of the
snapshot algebra.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence, Union

from repro.errors import SchemaError
from repro.snapshot.schema import Schema

__all__ = ["SnapshotTuple"]


class SnapshotTuple:
    """A tuple over a schema.

    Construction accepts either a sequence of values in schema order or a
    mapping from attribute names to values.  Every value is validated against
    its attribute's domain.

    >>> s = Schema(['name', 'dept'])
    >>> t = SnapshotTuple(s, ['merrie', 'physics'])
    >>> t['dept']
    'physics'
    """

    __slots__ = ("_schema", "_values", "_hash")

    def __init__(
        self,
        schema: Schema,
        values: Union[Sequence[Any], Mapping[str, Any]],
    ) -> None:
        if isinstance(values, Mapping):
            missing = set(schema.names) - set(values)
            extra = set(values) - set(schema.names)
            if missing or extra:
                raise SchemaError(
                    f"tuple values do not match schema {schema.names}: "
                    f"missing {sorted(missing)}, extra {sorted(extra)}"
                )
            ordered = tuple(values[name] for name in schema.names)
        else:
            ordered = tuple(values)
            if len(ordered) != schema.degree:
                raise SchemaError(
                    f"tuple has {len(ordered)} values but schema "
                    f"{schema.names} has degree {schema.degree}"
                )
        for attribute, value in zip(schema.attributes, ordered):
            attribute.domain.validate(value)
        self._schema = schema
        self._values = ordered
        self._hash: int | None = None

    @property
    def schema(self) -> Schema:
        """The schema this tuple is defined over."""
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        """The attribute values, in schema order."""
        return self._values

    def __getitem__(self, key: Union[int, str]) -> Any:
        if isinstance(key, int):
            return self._values[key]
        return self._values[self._schema.position(key)]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def as_dict(self) -> dict[str, Any]:
        """A name -> value dictionary view of the tuple."""
        return dict(zip(self._schema.names, self._values))

    # -- derivation --------------------------------------------------------

    def project(self, names: Sequence[str]) -> "SnapshotTuple":
        """The sub-tuple over the named attributes, in the order given."""
        sub_schema = self._schema.project(names)
        return SnapshotTuple(sub_schema, [self[name] for name in names])

    def concat(self, other: "SnapshotTuple") -> "SnapshotTuple":
        """The concatenation of two tuples (for cartesian products)."""
        joined = self._schema.concat(other._schema)
        return SnapshotTuple(joined, self._values + other._values)

    def with_schema(self, schema: Schema) -> "SnapshotTuple":
        """The same values reinterpreted under another schema of equal
        degree (used by rename)."""
        return SnapshotTuple(schema, self._values)

    def replace(self, **changes: Any) -> "SnapshotTuple":
        """A copy of this tuple with the given attribute values changed.

        >>> s = Schema(['name', 'dept'])
        >>> SnapshotTuple(s, ['merrie', 'physics']).replace(dept='math')['dept']
        'math'
        """
        data = self.as_dict()
        unknown = set(changes) - set(data)
        if unknown:
            raise SchemaError(
                f"replace refers to unknown attributes {sorted(unknown)}"
            )
        data.update(changes)
        return SnapshotTuple(self._schema, data)

    # -- equality ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SnapshotTuple):
            return NotImplemented
        return self._schema == other._schema and self._values == other._values

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                ("SnapshotTuple", self._schema, self._values)
            )
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value!r}"
            for name, value in zip(self._schema.names, self._values)
        )
        return f"<{inner}>"
