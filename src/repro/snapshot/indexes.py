"""Secondary indexes over snapshot states.

States are immutable values, so an index is a pure derived structure that
can be built once per state and consulted by any number of queries — the
functional analogue of a conventional secondary index.  Provided:

* :class:`HashIndex` — exact-match lookups on one attribute;
* :class:`SortedIndex` — range lookups on one attribute;
* :func:`select_eq` / :func:`select_range` — index-aware selections that
  return ordinary snapshot states, equal to what ``σ`` would produce (the
  tests check this, and ablation A4 measures the speedup);
* :class:`IndexPool` — a memoizing cache keyed on (state, attribute), so
  repeated queries against the same immutable state reuse indexes.
"""

from __future__ import annotations

import bisect
from typing import Any, Hashable, Optional

from repro.errors import SchemaError
from repro.snapshot.state import SnapshotState
from repro.snapshot.tuples import SnapshotTuple

__all__ = [
    "HashIndex",
    "SortedIndex",
    "IndexPool",
    "select_eq",
    "select_range",
]


class HashIndex:
    """Exact-match index: attribute value -> tuples holding it."""

    __slots__ = ("state", "attribute", "_buckets")

    def __init__(self, state: SnapshotState, attribute: str) -> None:
        state.schema.position(attribute)  # raises if unknown
        buckets: dict[Hashable, list[SnapshotTuple]] = {}
        for t in state.tuples:
            buckets.setdefault(t[attribute], []).append(t)
        self.state = state
        self.attribute = attribute
        self._buckets = buckets

    def lookup(self, value: Any) -> frozenset[SnapshotTuple]:
        """The tuples whose indexed attribute equals ``value``."""
        return frozenset(self._buckets.get(value, ()))

    def distinct_values(self) -> int:
        """Number of distinct indexed values."""
        return len(self._buckets)


class SortedIndex:
    """Order index: supports half-open range lookups ``[lo, hi)``."""

    __slots__ = ("state", "attribute", "_keys", "_rows")

    def __init__(self, state: SnapshotState, attribute: str) -> None:
        state.schema.position(attribute)
        try:
            pairs = sorted(
                ((t[attribute], t) for t in state.tuples),
                key=lambda pair: pair[0],
            )
        except TypeError:
            raise SchemaError(
                f"attribute {attribute!r} holds incomparable values; "
                "a sorted index requires a totally ordered attribute"
            ) from None
        self.state = state
        self.attribute = attribute
        self._keys = [key for key, _ in pairs]
        self._rows = [row for _, row in pairs]

    def range(
        self, low: Optional[Any] = None, high: Optional[Any] = None
    ) -> frozenset[SnapshotTuple]:
        """Tuples with ``low <= value < high`` (either bound optional)."""
        start = (
            0 if low is None else bisect.bisect_left(self._keys, low)
        )
        stop = (
            len(self._keys)
            if high is None
            else bisect.bisect_left(self._keys, high)
        )
        return frozenset(self._rows[start:stop])


class IndexPool:
    """Memoizes indexes per (state, attribute).

    Because states are immutable and hashable, the cache key is the state
    itself; re-querying the same historical version reuses its indexes.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self._hash_cache: dict[tuple, HashIndex] = {}
        self._sorted_cache: dict[tuple, SortedIndex] = {}
        self._max_entries = max_entries

    def hash_index(
        self, state: SnapshotState, attribute: str
    ) -> HashIndex:
        """A (possibly cached) hash index."""
        key = (state, attribute)
        index = self._hash_cache.get(key)
        if index is None:
            index = HashIndex(state, attribute)
            self._evict_if_full(self._hash_cache)
            self._hash_cache[key] = index
        return index

    def sorted_index(
        self, state: SnapshotState, attribute: str
    ) -> SortedIndex:
        """A (possibly cached) sorted index."""
        key = (state, attribute)
        index = self._sorted_cache.get(key)
        if index is None:
            index = SortedIndex(state, attribute)
            self._evict_if_full(self._sorted_cache)
            self._sorted_cache[key] = index
        return index

    def _evict_if_full(self, cache: dict) -> None:
        if len(cache) >= self._max_entries:
            cache.pop(next(iter(cache)))

    def cached_indexes(self) -> int:
        """Total cached index structures (both kinds)."""
        return len(self._hash_cache) + len(self._sorted_cache)


def select_eq(
    state: SnapshotState,
    attribute: str,
    value: Any,
    pool: Optional[IndexPool] = None,
) -> SnapshotState:
    """``σ_{attribute = value}`` via a hash index.

    Result-equal to the scan-based ``select`` (property-tested); O(1)
    per lookup after the index is built.
    """
    index = (
        pool.hash_index(state, attribute)
        if pool is not None
        else HashIndex(state, attribute)
    )
    return SnapshotState.from_tuples(state.schema, index.lookup(value))


def select_range(
    state: SnapshotState,
    attribute: str,
    low: Optional[Any] = None,
    high: Optional[Any] = None,
    pool: Optional[IndexPool] = None,
) -> SnapshotState:
    """``σ_{low <= attribute < high}`` via a sorted index."""
    index = (
        pool.sorted_index(state, attribute)
        if pool is not None
        else SortedIndex(state, attribute)
    )
    return SnapshotState.from_tuples(
        state.schema, index.range(low, high)
    )
