"""The selection-predicate domain ``F``.

The paper's syntactic domain ``F`` consists of "boolean expressions of
elements from the domains IDENTIFIER and STRING, the relational operators,
and the logical operators" (Section 3.1).  We realize ``F`` as a small AST of
comparisons between attribute references and literals, closed under
conjunction, disjunction and negation.

Predicates are immutable values: they can be hashed, compared for structural
equality, and composed with ``&``, ``|`` and ``~``.  They are shared by the
snapshot selection operator, the historical selection operator, and the
algebraic optimizer (which inspects ``referenced_attributes`` to decide
whether a selection can be pushed below a product).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Mapping

from repro.errors import PredicateError

__all__ = [
    "Term",
    "AttributeRef",
    "Literal",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "FalsePredicate",
    "attr",
    "lit",
    "COMPARATORS",
    "compile_predicate",
]

#: Comparator name -> Python implementation.
COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Term:
    """A value-producing leaf of a predicate: an attribute reference or a
    literal constant."""

    __slots__ = ()

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def referenced_attributes(self) -> frozenset[str]:
        raise NotImplementedError


class AttributeRef(Term):
    """A reference to an attribute of the tuple being tested."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise PredicateError("attribute reference needs a name")
        self.name = name

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise PredicateError(
                f"predicate references unknown attribute {self.name!r}; "
                f"tuple has {sorted(row)}"
            ) from None

    def referenced_attributes(self) -> frozenset[str]:
        return frozenset({self.name})

    def renamed(self, mapping: Mapping[str, str]) -> "AttributeRef":
        return AttributeRef(mapping.get(self.name, self.name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AttributeRef) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("AttributeRef", self.name))

    def __repr__(self) -> str:
        return self.name


class Literal(Term):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def referenced_attributes(self) -> frozenset[str]:
        return frozenset()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Literal", self.value))

    def __repr__(self) -> str:
        return repr(self.value)


def attr(name: str) -> AttributeRef:
    """Shorthand constructor for an attribute reference."""
    return AttributeRef(name)


def lit(value: Any) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)


def _as_term(value: Any) -> Term:
    return value if isinstance(value, Term) else Literal(value)


class Predicate:
    """Base class for boolean expressions over tuples."""

    __slots__ = ()

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        """Evaluate against a name -> value mapping."""
        raise NotImplementedError

    def referenced_attributes(self) -> frozenset[str]:
        """All attribute names the predicate mentions.  The optimizer uses
        this to decide where a selection may be pushed."""
        raise NotImplementedError

    def renamed(self, mapping: Mapping[str, str]) -> "Predicate":
        """The predicate with attribute references renamed."""
        raise NotImplementedError

    def __call__(self, row: Mapping[str, Any]) -> bool:
        return self.evaluate(row)

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class Comparison(Predicate):
    """``left <op> right`` where op is one of ``= != < <= > >=``."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: Any, op: str, right: Any) -> None:
        if op not in COMPARATORS:
            raise PredicateError(
                f"unknown comparator {op!r}; expected one of "
                f"{sorted(COMPARATORS)}"
            )
        self.left = _as_term(left)
        self.op = op
        self.right = _as_term(right)

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        left_value = self.left.evaluate(row)
        right_value = self.right.evaluate(row)
        try:
            return COMPARATORS[self.op](left_value, right_value)
        except TypeError:
            raise PredicateError(
                f"cannot compare {left_value!r} {self.op} {right_value!r}"
            ) from None

    def referenced_attributes(self) -> frozenset[str]:
        return (
            self.left.referenced_attributes()
            | self.right.referenced_attributes()
        )

    def renamed(self, mapping: Mapping[str, str]) -> "Comparison":
        left = (
            self.left.renamed(mapping)
            if isinstance(self.left, AttributeRef)
            else self.left
        )
        right = (
            self.right.renamed(mapping)
            if isinstance(self.right, AttributeRef)
            else self.right
        )
        return Comparison(left, self.op, right)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and self.left == other.left
            and self.op == other.op
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("Comparison", self.left, self.op, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Predicate):
    """Logical conjunction."""

    __slots__ = ("left", "right")

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.left.evaluate(row) and self.right.evaluate(row)

    def referenced_attributes(self) -> frozenset[str]:
        return (
            self.left.referenced_attributes()
            | self.right.referenced_attributes()
        )

    def renamed(self, mapping: Mapping[str, str]) -> "And":
        return And(self.left.renamed(mapping), self.right.renamed(mapping))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, And)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("And", self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} and {self.right!r})"


class Or(Predicate):
    """Logical disjunction."""

    __slots__ = ("left", "right")

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.left.evaluate(row) or self.right.evaluate(row)

    def referenced_attributes(self) -> frozenset[str]:
        return (
            self.left.referenced_attributes()
            | self.right.referenced_attributes()
        )

    def renamed(self, mapping: Mapping[str, str]) -> "Or":
        return Or(self.left.renamed(mapping), self.right.renamed(mapping))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Or)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("Or", self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} or {self.right!r})"


class Not(Predicate):
    """Logical negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Predicate) -> None:
        self.operand = operand

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not self.operand.evaluate(row)

    def referenced_attributes(self) -> frozenset[str]:
        return self.operand.referenced_attributes()

    def renamed(self, mapping: Mapping[str, str]) -> "Not":
        return Not(self.operand.renamed(mapping))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash(("Not", self.operand))

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


class TruePredicate(Predicate):
    """The predicate satisfied by every tuple."""

    __slots__ = ()

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return True

    def referenced_attributes(self) -> frozenset[str]:
        return frozenset()

    def renamed(self, mapping: Mapping[str, str]) -> "TruePredicate":
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("TruePredicate")

    def __repr__(self) -> str:
        return "true"


class FalsePredicate(Predicate):
    """The predicate satisfied by no tuple."""

    __slots__ = ()

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return False

    def referenced_attributes(self) -> frozenset[str]:
        return frozenset()

    def renamed(self, mapping: Mapping[str, str]) -> "FalsePredicate":
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FalsePredicate)

    def __hash__(self) -> int:
        return hash("FalsePredicate")

    def __repr__(self) -> str:
        return "false"


# ---------------------------------------------------------------------------
# Predicate compilation
# ---------------------------------------------------------------------------
#
# ``Predicate.evaluate`` takes a name -> value mapping, which forces the
# selection operators to build a dict per tuple.  ``compile_predicate``
# specializes a predicate to one schema: attribute references become
# positional lookups and the result is a closure over value tuples.  The
# compiled form is observationally identical to ``evaluate`` (property-
# tested), including raising PredicateError for unknown attributes (at
# compile time) and incomparable values (at evaluation time).


def _compile_term(term: Term, schema) -> Callable[[tuple], Any]:
    if isinstance(term, AttributeRef):
        try:
            position = schema.position(term.name)
        except Exception:
            raise PredicateError(
                f"predicate references unknown attribute {term.name!r}; "
                f"schema has {schema.names}"
            ) from None
        return lambda values: values[position]
    if isinstance(term, Literal):
        constant = term.value
        return lambda values: constant
    raise PredicateError(f"cannot compile term {term!r}")


def compile_predicate(
    predicate: Predicate, schema
) -> Callable[[tuple], bool]:
    """Specialize ``predicate`` to ``schema``; returns a closure over
    value tuples (in schema order)."""
    if isinstance(predicate, TruePredicate):
        return lambda values: True
    if isinstance(predicate, FalsePredicate):
        return lambda values: False
    if isinstance(predicate, Comparison):
        left = _compile_term(predicate.left, schema)
        right = _compile_term(predicate.right, schema)
        comparator = COMPARATORS[predicate.op]
        op_name = predicate.op

        def compare(values: tuple) -> bool:
            left_value = left(values)
            right_value = right(values)
            try:
                return comparator(left_value, right_value)
            except TypeError:
                raise PredicateError(
                    f"cannot compare {left_value!r} {op_name} "
                    f"{right_value!r}"
                ) from None

        return compare
    if isinstance(predicate, And):
        left_fn = compile_predicate(predicate.left, schema)
        right_fn = compile_predicate(predicate.right, schema)
        return lambda values: left_fn(values) and right_fn(values)
    if isinstance(predicate, Or):
        left_fn = compile_predicate(predicate.left, schema)
        right_fn = compile_predicate(predicate.right, schema)
        return lambda values: left_fn(values) or right_fn(values)
    if isinstance(predicate, Not):
        operand_fn = compile_predicate(predicate.operand, schema)
        return lambda values: not operand_fn(values)
    raise PredicateError(f"cannot compile predicate {predicate!r}")
