"""Attributes and value domains.

The paper assumes "a set of domains D = {D1, D2, ..., Dm}, where each domain
Di is an arbitrary, non-empty, finite or countably infinite set" (Section
3.2).  We model a :class:`Domain` as a named membership predicate over Python
values, and an :class:`Attribute` as a (name, domain) pair.

User-defined time (Section 1) "is simply another domain, such as integer or
character string, provided by the DBMS"; we provide it as the
:data:`USER_DEFINED_TIME` domain of non-negative integers so examples and
tests can exercise all three kinds of time.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import DomainError, SchemaError

__all__ = [
    "Domain",
    "Attribute",
    "BOOLEAN",
    "INTEGER",
    "NUMBER",
    "STRING",
    "USER_DEFINED_TIME",
    "ANY",
    "enumerated_domain",
]


class Domain:
    """A named, possibly infinite set of values.

    A domain is defined by a membership predicate.  Two domains are equal iff
    they have the same name; the library's built-in domains are singletons, so
    identity and name equality coincide for them.
    """

    __slots__ = ("_name", "_contains")

    def __init__(self, name: str, contains: Callable[[Any], bool]) -> None:
        if not name:
            raise SchemaError("a domain must have a non-empty name")
        self._name = name
        self._contains = contains

    @property
    def name(self) -> str:
        """The domain's name, e.g. ``'integer'``."""
        return self._name

    def __contains__(self, value: Any) -> bool:
        return bool(self._contains(value))

    def validate(self, value: Any) -> Any:
        """Return ``value`` if it belongs to this domain, else raise
        :class:`~repro.errors.DomainError`."""
        if value not in self:
            raise DomainError(
                f"value {value!r} is not in domain {self._name!r}"
            )
        return value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self._name == other._name

    def __hash__(self) -> int:
        return hash(("Domain", self._name))

    def __repr__(self) -> str:
        return f"Domain({self._name!r})"


def _is_integer(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


#: The two-element boolean domain.
BOOLEAN = Domain("boolean", lambda v: isinstance(v, bool))

#: The countably infinite domain of integers.
INTEGER = Domain("integer", _is_integer)

#: Integers and floats (no booleans).
NUMBER = Domain("number", _is_number)

#: Character strings over an arbitrary alphabet.
STRING = Domain("string", lambda v: isinstance(v, str))

#: User-defined time: an uninterpreted, totally ordered domain for which the
#: DBMS supports input, output and comparison (Section 1 of the paper).  We
#: represent its values as non-negative integers.
USER_DEFINED_TIME = Domain(
    "user_defined_time", lambda v: _is_integer(v) and v >= 0
)

#: The universal domain; accepts any hashable value.
ANY = Domain("any", lambda v: _hashable(v))


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


def enumerated_domain(name: str, values: Iterable[Any]) -> Domain:
    """Build a finite domain from an explicit set of values.

    >>> color = enumerated_domain('color', ['red', 'green', 'blue'])
    >>> 'red' in color
    True
    >>> 'mauve' in color
    False
    """
    frozen = frozenset(values)
    if not frozen:
        raise SchemaError(f"domain {name!r} must be non-empty")
    return Domain(name, lambda v: v in frozen)


class Attribute:
    """A named column with an associated value domain.

    Attributes are immutable and hashable; schemas are built from them.
    """

    __slots__ = ("_name", "_domain")

    def __init__(self, name: str, domain: Domain = ANY) -> None:
        if not name or not isinstance(name, str):
            raise SchemaError(f"invalid attribute name: {name!r}")
        if not isinstance(domain, Domain):
            raise SchemaError(
                f"attribute {name!r} requires a Domain, got {domain!r}"
            )
        self._name = name
        self._domain = domain

    @property
    def name(self) -> str:
        """The attribute's name."""
        return self._name

    @property
    def domain(self) -> Domain:
        """The attribute's value domain."""
        return self._domain

    def renamed(self, new_name: str) -> "Attribute":
        """A copy of this attribute under a different name (same domain)."""
        return Attribute(new_name, self._domain)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self._name == other._name and self._domain == other._domain

    def __hash__(self) -> int:
        return hash(("Attribute", self._name, self._domain))

    def __repr__(self) -> str:
        return f"Attribute({self._name!r}, {self._domain.name!r})"
