"""Derived snapshot-algebra operators.

Everything here is definable from the five primitives in
:mod:`repro.snapshot.operators`; we implement the textbook definitions
directly (with the obvious hash-based shortcuts for joins) and the test
suite checks each against its primitive definition.  These operators are
used by the optimizer, the Quel translator, and the examples.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import SchemaError
from repro.snapshot.operators import difference, product, project, select
from repro.snapshot.predicates import Predicate
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.snapshot.tuples import SnapshotTuple

__all__ = [
    "intersection",
    "rename",
    "theta_join",
    "natural_join",
    "semijoin",
    "antijoin",
    "divide",
]


def intersection(left: SnapshotState, right: SnapshotState) -> SnapshotState:
    """Set intersection: ``R ∩ S = R − (R − S)``."""
    left.schema.require_compatible(right.schema, "intersection")
    return SnapshotState.from_tuples(
        left.schema, left.tuples & right.tuples
    )


def rename(state: SnapshotState, mapping: Mapping[str, str]) -> SnapshotState:
    """Rename attributes per ``mapping`` (old name -> new name)."""
    new_schema = state.schema.rename(mapping)
    tuples = frozenset(t.with_schema(new_schema) for t in state.tuples)
    return SnapshotState.from_tuples(new_schema, tuples)


def theta_join(
    left: SnapshotState, right: SnapshotState, predicate: Predicate
) -> SnapshotState:
    """Theta join: ``σ_F(R × S)``.

    Requires disjoint attribute names, like the underlying product.
    """
    return select(product(left, right), predicate)


def natural_join(left: SnapshotState, right: SnapshotState) -> SnapshotState:
    """Natural join on all common attribute names.

    With no common attributes this degenerates to the cartesian product;
    with identical schemas it degenerates to intersection.
    """
    common = left.schema.common_names(right.schema)
    if not common:
        return product(left, right)
    if left.schema == right.schema:
        return intersection(left, right)

    # Hash join on the common attributes.
    right_only = [n for n in right.schema.names if n not in common]
    joined_schema = Schema(
        list(left.schema.attributes)
        + [right.schema[n] for n in right_only]
    )
    buckets: dict[tuple, list[SnapshotTuple]] = {}
    for r in right.tuples:
        key = tuple(r[name] for name in common)
        buckets.setdefault(key, []).append(r)

    out = set()
    for l in left.tuples:
        key = tuple(l[name] for name in common)
        for r in buckets.get(key, ()):
            values = l.values + tuple(r[name] for name in right_only)
            out.add(SnapshotTuple(joined_schema, values))
    return SnapshotState.from_tuples(joined_schema, frozenset(out))


def semijoin(left: SnapshotState, right: SnapshotState) -> SnapshotState:
    """Left semijoin: the left tuples that join with at least one right
    tuple on the common attributes."""
    common = left.schema.common_names(right.schema)
    if not common:
        if right.is_empty():
            return SnapshotState.empty(left.schema)
        return left
    right_keys = {tuple(r[name] for name in common) for r in right.tuples}
    kept = frozenset(
        l
        for l in left.tuples
        if tuple(l[name] for name in common) in right_keys
    )
    return SnapshotState.from_tuples(left.schema, kept)


def antijoin(left: SnapshotState, right: SnapshotState) -> SnapshotState:
    """Left antijoin: the left tuples that join with *no* right tuple."""
    return difference(left, semijoin(left, right))


def divide(left: SnapshotState, right: SnapshotState) -> SnapshotState:
    """Relational division ``R ÷ S``.

    ``S``'s attributes must be a proper, non-empty subset of ``R``'s.  The
    result contains every sub-tuple ``t`` over ``R``'s remaining attributes
    such that for *every* tuple ``s`` in ``S``, the combination ``t ∪ s``
    appears in ``R``.  Implemented by the classic double-difference:
    ``R ÷ S = π_T(R) − π_T((π_T(R) × S) − R)``.
    """
    divisor_names = set(right.schema.names)
    dividend_names = set(left.schema.names)
    if not divisor_names:
        raise SchemaError("division by a zero-degree relation")
    if not divisor_names < dividend_names:
        raise SchemaError(
            "division requires the divisor attributes "
            f"{sorted(divisor_names)} to be a proper subset of the dividend "
            f"attributes {sorted(dividend_names)}"
        )
    for name in divisor_names:
        if left.schema[name] != right.schema[name]:
            raise SchemaError(
                f"division attribute {name!r} has different domains in "
                "dividend and divisor"
            )
    quotient_names = [
        n for n in left.schema.names if n not in divisor_names
    ]
    candidates = project(left, quotient_names)
    # All (candidate, divisor) combinations, arranged in R's column order.
    combos = product(candidates, right)
    combos_as_r = project(combos, list(left.schema.names))
    missing = difference(combos_as_r, left)
    disqualified = project(missing, quotient_names)
    return difference(candidates, disqualified)
