"""The five primitive snapshot-algebra operators.

These are "the five operators that serve to define the snapshot algebra"
(Section 3.1 of the paper): union, difference, cartesian product, projection
and selection.  Each is a pure function from snapshot states to a snapshot
state; none touches a database — that is the whole point of the paper's
expression/command split.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SchemaError
from repro.snapshot.predicates import Predicate
from repro.snapshot.state import SnapshotState

__all__ = ["union", "difference", "product", "project", "select"]


def union(left: SnapshotState, right: SnapshotState) -> SnapshotState:
    """Set union of two union-compatible states (``E1 ∪ E2``)."""
    left.schema.require_compatible(right.schema, "union")
    return SnapshotState.from_tuples(
        left.schema, left.tuples | right.tuples
    )


def difference(left: SnapshotState, right: SnapshotState) -> SnapshotState:
    """Set difference of two union-compatible states (``E1 − E2``)."""
    left.schema.require_compatible(right.schema, "difference")
    return SnapshotState.from_tuples(
        left.schema, left.tuples - right.tuples
    )


def product(left: SnapshotState, right: SnapshotState) -> SnapshotState:
    """Cartesian product (``E1 × E2``).

    The operand schemas must have disjoint attribute names; rename one
    operand first if they collide.
    """
    joined_schema = left.schema.concat(right.schema)
    tuples = frozenset(
        l.concat(r) for l in left.tuples for r in right.tuples
    )
    return SnapshotState.from_tuples(joined_schema, tuples)


def project(state: SnapshotState, names: Sequence[str]) -> SnapshotState:
    """Projection (``π_X(E)``) onto the named attributes.

    Duplicate result tuples collapse, per set semantics.  The names must be
    distinct and present in the state's schema.
    """
    if len(set(names)) != len(names):
        raise SchemaError(f"projection list has duplicates: {list(names)}")
    sub_schema = state.schema.project(names)
    tuples = frozenset(t.project(names) for t in state.tuples)
    return SnapshotState.from_tuples(sub_schema, tuples)


def select(state: SnapshotState, predicate: Predicate) -> SnapshotState:
    """Selection (``σ_F(E)``): the tuples satisfying the predicate.

    The predicate is compiled against the state's schema once (positional
    attribute access), then applied per tuple — observationally identical
    to evaluating against per-tuple dictionaries, measurably faster.
    """
    from repro.snapshot.predicates import compile_predicate

    test = compile_predicate(predicate, state.schema)
    kept = frozenset(t for t in state.tuples if test(t.values))
    return SnapshotState.from_tuples(state.schema, kept)
