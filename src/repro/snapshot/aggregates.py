"""Grouping and aggregation over snapshot states.

An *extension* beyond the paper's five primitives (aggregates entered the
relational algebra with Klug 1982 and Quel/SQL practice; the paper's Quel
mapping motivates having them available).  ``aggregate`` groups a state by
zero or more attributes and computes named aggregate columns; the result
is an ordinary snapshot state, so it composes with everything else —
including the rollback operator, which is what enables
"total salary per past transaction" style audit queries.

Because states are sets, aggregation here has the textbook set semantics:
duplicates have already collapsed before aggregation.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.errors import SchemaError
from repro.snapshot.attributes import ANY, NUMBER, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

__all__ = ["AGGREGATE_FUNCTIONS", "aggregate"]


def _agg_count(values: list[Any]) -> int:
    return len(values)


def _agg_sum(values: list[Any]):
    return sum(values)


def _agg_avg(values: list[Any]) -> float:
    return sum(values) / len(values)


def _agg_min(values: list[Any]):
    return min(values)


def _agg_max(values: list[Any]):
    return max(values)


#: name -> (implementation, result domain, needs an input attribute)
AGGREGATE_FUNCTIONS: dict[str, tuple[Callable, Any, bool]] = {
    "count": (_agg_count, NUMBER, False),
    "sum": (_agg_sum, NUMBER, True),
    "avg": (_agg_avg, NUMBER, True),
    "min": (_agg_min, ANY, True),
    "max": (_agg_max, ANY, True),
}


def aggregate(
    state: SnapshotState,
    group_by: Sequence[str],
    aggregations: Mapping[str, tuple[str, str | None]],
) -> SnapshotState:
    """Group ``state`` by the ``group_by`` attributes and compute the
    named aggregates.

    ``aggregations`` maps each output column name to a ``(function,
    input attribute)`` pair; ``count`` takes ``None`` as its input.  With
    an empty ``group_by`` the whole state is one group (and an empty
    input state yields an empty result, following SQL's GROUP BY rather
    than its scalar-aggregate convention).

    >>> s = Schema(['dept', 'salary'])
    >>> staff = SnapshotState(s, [['cs', 10], ['cs', 20], ['ee', 5]])
    >>> out = aggregate(staff, ['dept'],
    ...                 {'n': ('count', None), 'total': ('sum', 'salary')})
    >>> sorted(out.sorted_rows())
    [('cs', 2, 30), ('ee', 1, 5)]
    """
    if not aggregations:
        raise SchemaError("aggregate requires at least one aggregation")
    if len(set(group_by)) != len(group_by):
        raise SchemaError(f"duplicate group-by attributes: {group_by}")

    out_names = list(aggregations)
    collisions = set(out_names) & set(group_by)
    if collisions:
        raise SchemaError(
            f"aggregate output names collide with group-by attributes: "
            f"{sorted(collisions)}"
        )
    if len(set(out_names)) != len(out_names):
        raise SchemaError("duplicate aggregate output names")

    # Validate functions and input attributes up front.
    plans = []
    for out_name, (function_name, input_name) in aggregations.items():
        entry = AGGREGATE_FUNCTIONS.get(function_name)
        if entry is None:
            raise SchemaError(
                f"unknown aggregate function {function_name!r}; "
                f"available: {sorted(AGGREGATE_FUNCTIONS)}"
            )
        implementation, domain, needs_input = entry
        if needs_input:
            if input_name is None:
                raise SchemaError(
                    f"{function_name} requires an input attribute"
                )
            state.schema.position(input_name)  # raises if unknown
        elif input_name is not None:
            raise SchemaError(
                f"{function_name} takes no input attribute"
            )
        plans.append((out_name, implementation, domain, input_name))

    group_schema = state.schema.project(list(group_by)) if group_by else Schema([])
    out_schema = Schema(
        list(group_schema.attributes)
        + [Attribute(out_name, domain) for out_name, _, domain, _ in plans]
    )

    groups: dict[tuple, list] = {}
    for t in state.tuples:
        key = tuple(t[name] for name in group_by)
        groups.setdefault(key, []).append(t)

    rows = []
    for key, members in groups.items():
        row = list(key)
        for _, implementation, _, input_name in plans:
            if input_name is None:
                row.append(implementation(members))
            else:
                row.append(
                    implementation([m[input_name] for m in members])
                )
        rows.append(row)
    return SnapshotState(out_schema, rows)
