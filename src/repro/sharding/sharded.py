"""`ShardedDatabase` — the paper's command semantics over N shards.

The paper defines a database as the cumulative result of one *sentence*
of commands under one monotonically increasing transaction counter
(Sections 3.2–3.5).  The coordinator preserves exactly that contract
while partitioning the ``IDENTIFIER → [RELATION + {⊥}]`` map across
independent :class:`~repro.durability.durable.DurableDatabase` shards,
each with its own WAL, checkpoints, and (optionally) a physical backend
mirror:

* **one global transaction counter** lives at the coordinator; shard
  transaction numbers are private replay details.  For every identifier
  the coordinator records the global transaction number of each
  *effective* ``modify_state`` (``_mods``), which — because rollback and
  temporal relations are append-only — aligns element-for-element with
  the owning shard's state sequence.  ``ρ(I, N)`` with a global numeral
  ``N`` is answered by translating ``N`` into the owner's local
  numbering; the returned *state* carries no transaction stamps, so
  results are byte-identical to the unsharded semantics.
* **commands fan out to single shards** through the one semantic
  function :func:`repro.core.commands.execute` (via each shard's
  ``execute``): a command whose expression only references relations on
  the owning shard ships whole (and is WAL-logged there); a cross-shard
  ``modify_state`` is evaluated at the coordinator by the scatter-gather
  router and shipped as a constant state.  Either way the shard's WAL
  replays to the exact states the global sentence prescribes.
* **reads scatter-gather**: single-shard subtrees evaluate on their
  shard (through its backend mirror when attached); cross-shard
  ``∪``/``−``/``×`` merge at the coordinator through
  :func:`repro.core.expressions.apply_node`.

Coordinator metadata (owner map, per-identifier global transaction
numbers, the global counter) lives in memory and — when the database
has a ``directory`` (or an explicit ``meta_store``) — is made durable
by a :class:`~repro.sharding.journal.CoordinatorJournal`: a write-ahead
record per effective command plus periodic atomic checkpoints of the
maps.  :meth:`ShardedDatabase.reopen` restores the checkpoint, recovers
every shard, and replays the journal tail (re-executing onto shards
whose batch-fsynced WALs lost the corresponding records), so a whole
cluster survives a process kill.  A *fresh* ``ShardedDatabase`` still
must open over empty shard stores and raises :class:`ShardingError`
otherwise — reopening is explicit, never guessed.  Purely in-memory
instances journal nothing and behave exactly as before.
"""

from __future__ import annotations

import os
import time
from bisect import bisect_right
from typing import Callable, Iterable, Optional, Sequence, Union as TypingUnion

from repro.errors import CommandError, ReproError, ShardingError, StorageError
from repro.core.commands import (
    Command,
    DefineRelation,
    ModifyState,
    Sequence as CommandSequence,
)
from repro.core.database import Database, DatabaseState
from repro.core.expressions import (
    Const,
    Expression,
    Rollback,
    is_empty_set,
)
from repro.core.relation import EMPTY_STATE, Relation
from repro.core.txn import NOW, Numeral, TransactionNumber, is_now
from repro.durability import DurableDatabase, MemoryStore
from repro.durability.codec import command_from_dict, decode_record
from repro.durability.files import DirectoryStore, FileStore
from repro.historical.state import HistoricalState
from repro.obsv import hooks as _hooks
from repro.sharding.journal import CoordinatorJournal
from repro.sharding.partition import HashPartitioner, Partitioner
from repro.sharding.router import ScatterGatherRouter
from repro.snapshot.state import SnapshotState

__all__ = ["ShardedDatabase", "RebalanceReport"]


class RebalanceReport:
    """What one :meth:`ShardedDatabase.rebalance` did."""

    __slots__ = (
        "moved",
        "wal_replayed",
        "state_copied",
        "stale_repaired",
    )

    def __init__(self) -> None:
        self.moved = 0
        self.wal_replayed = 0
        self.state_copied = 0
        #: moves whose target held a stale copy from an earlier move;
        #: the missing suffix was replayed onto it before ownership
        #: flipped (the copy is validated as a strict prefix first)
        self.stale_repaired = 0

    def __repr__(self) -> str:
        return (
            f"RebalanceReport(moved={self.moved}, "
            f"wal_replayed={self.wal_replayed}, "
            f"state_copied={self.state_copied}, "
            f"stale_repaired={self.stale_repaired})"
        )


def _only_now_and_self(expression: Expression, identifier: str) -> bool:
    """True iff every rollback leaf is ``ρ(identifier, now)`` — the
    shape whose replay is independent of absolute transaction numbers,
    so the command may be re-executed on a shard with a different local
    counter and still rebuild the same states."""
    if isinstance(expression, Rollback):
        return expression.identifier == identifier and is_now(
            expression.numeral
        )
    return all(
        _only_now_and_self(child, identifier)
        for child in expression.children()
    )


class ShardedDatabase:
    """A coordinator over N durable shards, observationally equivalent
    to one unsharded database executing the same sentence.

    ``stores`` pins each shard to an explicit
    :class:`~repro.durability.files.FileStore` (tests pass
    ``MemoryStore`` instances); ``directory`` puts shard ``i`` under
    ``<directory>/shard-<i>``; with neither, shards live in memory.
    ``backend_factory`` (called once per shard) attaches a physical
    :class:`~repro.storage.versioned_db.VersionedDatabase` mirror to
    each shard, so sharding composes with all five storage backends.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        directory: "TypingUnion[str, os.PathLike[str], None]" = None,
        stores: Optional[Sequence[FileStore]] = None,
        partitioner: Optional[Partitioner] = None,
        backend_factory: Optional[Callable[[], object]] = None,
        fsync: str = "batch(64, 100)",
        checkpoint_every: int = 256,
        keep_checkpoints: int = 2,
        segment_bytes: int = 1 << 20,
        meta_store: Optional[FileStore] = None,
        meta_checkpoint_every: int = 512,
    ) -> None:
        if stores is not None:
            stores = list(stores)
            if not stores:
                raise ShardingError("stores must name at least one shard")
            shards = len(stores)
        if shards < 1:
            raise ShardingError(f"shard count must be ≥ 1, got {shards}")
        self._directory = (
            os.fspath(directory) if directory is not None else None
        )
        self._backend_factory = backend_factory
        self._durable_options = dict(
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            keep_checkpoints=keep_checkpoints,
            segment_bytes=segment_bytes,
        )
        self._shards: list[DurableDatabase] = []
        for index in range(shards):
            store = stores[index] if stores is not None else None
            self._shards.append(self._open_shard(index, store))
        self._partitioner = partitioner or HashPartitioner()
        self._txn: TransactionNumber = 0
        #: authoritative identifier → shard index; assignments are sticky
        #: (the partitioner only decides *initial* placement)
        self._owner: dict[str, int] = {}
        #: identifier → global transaction numbers of its effective
        #: modifies, aligned 1:1 with the owner relation's state sequence
        #: for the append-only types
        self._mods: dict[str, list[int]] = {}
        self._closed = False
        self._router = ScatterGatherRouter(
            owner_of=self._owner_for_read,
            localize_numeral=self._localize_numeral,
            evaluate_on_shard=lambda index, expr: self._shards[
                index
            ].evaluate(expr),
        )
        if meta_store is None and self._directory is not None:
            meta_store = DirectoryStore(
                os.path.join(self._directory, "coordinator")
            )
        self._journal = (
            CoordinatorJournal(
                meta_store, checkpoint_every=meta_checkpoint_every
            )
            if meta_store is not None
            else None
        )
        self._meta_checkpoint_every = meta_checkpoint_every
        # an opening checkpoint makes a brand-new directory reopenable
        # even before the first command
        self.meta_checkpoint()

    def _open_shard(
        self, index: int, store: Optional[FileStore]
    ) -> DurableDatabase:
        if store is None:
            if self._directory is not None:
                store = os.path.join(self._directory, f"shard-{index}")
            else:
                store = MemoryStore()
        backend = (
            self._backend_factory() if self._backend_factory else None
        )
        shard = DurableDatabase(
            store, backend=backend, **self._durable_options
        )
        if shard.transaction_number != 0:
            shard.close()
            raise ShardingError(
                f"shard {index} recovered {shard.transaction_number} "
                "transaction(s) from its store; a ShardedDatabase keeps "
                "its coordinator metadata in memory and must open over "
                "empty shard stores"
            )
        return shard

    @classmethod
    def reopen(
        cls,
        *,
        meta_store: Optional[FileStore] = None,
        directory: "TypingUnion[str, os.PathLike[str], None]" = None,
        stores: Optional[Sequence[FileStore]] = None,
        partitioner: Optional[Partitioner] = None,
        backend_factory: Optional[Callable[[], object]] = None,
        fsync: str = "batch(64, 100)",
        checkpoint_every: int = 256,
        keep_checkpoints: int = 2,
        segment_bytes: int = 1 << 20,
        meta_checkpoint_every: int = 512,
    ) -> "ShardedDatabase":
        """Reopen a killed sharded database from its durable stores.

        Restores the coordinator maps from the latest meta-checkpoint,
        recovers every shard from its own WAL, and replays the journal
        tail: entries whose effect the shard already recovered are
        re-counted into the metadata; entries the shard *lost* (its
        batch-fsynced WAL was behind the always-fsynced journal at the
        kill) are re-executed; dead records — the shard refused the
        command before the kill — fail or no-op identically on replay
        and are skipped.  Raises :class:`ShardingError` when a shard
        holds *fewer* transactions than the checkpoint promised (that
        would mean fsynced history vanished — a lost or swapped store,
        never a crash)."""
        self = cls.__new__(cls)
        self._directory = (
            os.fspath(directory) if directory is not None else None
        )
        if meta_store is None:
            if self._directory is None:
                raise ShardingError(
                    "reopen needs a meta_store or a directory"
                )
            meta_store = DirectoryStore(
                os.path.join(self._directory, "coordinator")
            )
        meta = CoordinatorJournal.load(meta_store)
        if meta is None:
            raise ShardingError(
                "no coordinator checkpoint to reopen from; this store "
                "never held a journaled ShardedDatabase"
            )
        shard_count = int(meta["shards"])
        if stores is not None:
            stores = list(stores)
            if len(stores) != shard_count:
                raise ShardingError(
                    f"reopen: checkpoint names {shard_count} shard(s) "
                    f"but {len(stores)} store(s) were supplied"
                )
        elif self._directory is None:
            raise ShardingError(
                "reopen needs shard stores or a directory"
            )
        self._backend_factory = backend_factory
        self._durable_options = dict(
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            keep_checkpoints=keep_checkpoints,
            segment_bytes=segment_bytes,
        )
        self._shards = []
        for index in range(shard_count):
            store = (
                stores[index]
                if stores is not None
                else os.path.join(self._directory, f"shard-{index}")
            )
            backend = backend_factory() if backend_factory else None
            self._shards.append(
                DurableDatabase(
                    store, backend=backend, **self._durable_options
                )
            )
        self._partitioner = partitioner or HashPartitioner()
        self._txn = int(meta["txn"])
        self._owner = {
            identifier: int(shard)
            for identifier, shard in meta["owner"].items()
        }
        self._mods = {
            identifier: [int(txn) for txn in txns]
            for identifier, txns in meta["mods"].items()
        }
        self._closed = False
        self._router = ScatterGatherRouter(
            owner_of=self._owner_for_read,
            localize_numeral=self._localize_numeral,
            evaluate_on_shard=lambda index, expr: self._shards[
                index
            ].evaluate(expr),
        )
        self._journal = CoordinatorJournal(
            meta_store, checkpoint_every=meta_checkpoint_every
        )
        self._meta_checkpoint_every = meta_checkpoint_every
        self._journal.set_extra(meta.get("extra", {}))
        # -- replay the journal tail --------------------------------------
        #: shard transactions the metadata has accounted for so far
        counters = [int(txn) for txn in meta["shard_txns"]]
        for index, shard in enumerate(self._shards):
            if shard.transaction_number < counters[index]:
                raise ShardingError(
                    f"shard {index} recovered "
                    f"{shard.transaction_number} transaction(s) but the "
                    f"coordinator checkpoint promises {counters[index]}; "
                    "fsynced history is missing — refusing to reopen"
                )
        for entry in self._journal.pending(
            after_lsn=int(meta["journal_lsn"])
        ):
            index = int(entry["s"])
            if not 0 <= index < shard_count:
                raise ShardingError(
                    f"journal entry names shard {index} but the "
                    f"checkpoint has {shard_count}"
                )
            shard = self._shards[index]
            if shard.transaction_number < counters[index] + 1:
                # the shard's batch-fsynced WAL lost this record (or a
                # dead/crash-interrupted trailing record): re-execute.
                # A deterministic refusal or no-op means it was dead —
                # skip it, exactly what the abort marker would have done.
                before = shard.transaction_number
                try:
                    shard.execute(command_from_dict(entry["c"]))
                except ReproError:
                    continue
                if shard.transaction_number == before:
                    continue
            counters[index] += 1
            self._txn = int(entry["t"])
            if entry["k"] == "define":
                self._owner[entry["i"]] = index
            else:
                self._mods.setdefault(entry["i"], []).append(
                    int(entry["t"])
                )
        # a fresh checkpoint compacts the replayed tail away
        self.meta_checkpoint()
        return self

    # -- properties -------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[DurableDatabase, ...]:
        return tuple(self._shards)

    @property
    def transaction_number(self) -> TransactionNumber:
        """The *global* transaction counter — what the unsharded
        database's transaction number would be after the same sentence."""
        return self._txn

    @property
    def partitioner(self) -> Partitioner:
        return self._partitioner

    @property
    def journal(self) -> Optional[CoordinatorJournal]:
        """The coordinator's metadata journal (None when the instance is
        purely in-memory with no explicit ``meta_store``)."""
        return self._journal

    @property
    def identifiers(self) -> tuple[str, ...]:
        """Every defined identifier, sorted for determinism."""
        return tuple(sorted(self._owner))

    def shard_of(self, identifier: str) -> int:
        """The shard that owns (or would initially receive) an
        identifier."""
        return self._owner_for_read(identifier)

    def _owner_for_read(self, identifier: str) -> int:
        owner = self._owner.get(identifier)
        if owner is not None:
            return owner
        return self._partitioner.shard_for(identifier, len(self._shards))

    # -- numeral translation ----------------------------------------------

    def _localize_numeral(
        self, identifier: str, numeral: Numeral
    ) -> Numeral:
        """The owner-shard-local numeral selecting the same state the
        global ``numeral`` selects in the unsharded semantics.

        Only meaningful for the append-only types; for everything else
        (unbound identifiers, snapshot/historical relations) the numeral
        is returned unchanged so the shard raises the exact error the
        unsharded evaluator would."""
        if is_now(numeral):
            return numeral
        owner = self._owner.get(identifier)
        if owner is None:
            return numeral
        relation = self._shards[owner].database.lookup(identifier)
        if relation is None or not relation.rtype.keeps_history:
            return numeral
        mods = self._mods.get(identifier, [])
        if len(mods) != relation.history_length:
            raise ShardingError(
                f"coordinator metadata for {identifier!r} records "
                f"{len(mods)} modifies but shard {owner} holds "
                f"{relation.history_length} states"
            )
        position = bisect_right(mods, numeral)
        if position == 0:
            # no state had committed yet at the global time ``numeral``;
            # local numeral 0 makes the shard's FINDSTATE return ∅ too
            return 0
        return relation.transaction_numbers[position - 1]

    def localize_numeral(
        self, identifier: str, numeral: Numeral
    ) -> Numeral:
        """Public access to the global→shard-local numeral translation
        (the cluster layer routes replica reads through it)."""
        return self._localize_numeral(identifier, numeral)

    # -- command execution ------------------------------------------------

    def execute(self, command: Command) -> TransactionNumber:
        """Apply one command (or sentence) with the paper's semantics;
        returns the new global transaction number.

        Sequences are flattened at the coordinator — sequencing is
        associative, and flat execution lets each shard WAL record name
        a single identifier."""
        if self._closed:
            raise ShardingError(
                "cannot execute a command on a closed ShardedDatabase"
            )
        if self._journal is not None and self._journal.due():
            # only ever between commands — a checkpoint must not split a
            # journal record from its shard effect
            self.meta_checkpoint()
        for flat in self._flatten(command):
            self._execute_one(flat)
        return self._txn

    def execute_all(self, commands: Iterable[Command]) -> TransactionNumber:
        for command in commands:
            self.execute(command)
        return self._txn

    @staticmethod
    def _flatten(command: Command) -> list[Command]:
        flat: list[Command] = []
        stack = [command]
        while stack:
            node = stack.pop()
            if isinstance(node, CommandSequence):
                stack.append(node.second)
                stack.append(node.first)
            else:
                flat.append(node)
        return flat

    def _execute_one(self, command: Command) -> None:
        if isinstance(command, DefineRelation):
            self._execute_define(command)
        elif isinstance(command, ModifyState):
            self._execute_modify(command)
        else:
            raise ShardingError(
                f"cannot route command {command!r} to a shard"
            )

    def _journal_execute(
        self,
        shard_index: int,
        kind: str,
        identifier: str,
        shipped: Command,
    ) -> bool:
        """Run ``shipped`` on a shard under the journal's write-ahead
        discipline: record first, execute second, and cancel the record
        with an abort marker when the shard refuses the command or the
        paper's semantics made it a no-op.  Returns True when the shard
        advanced — the command was effective and the coordinator may
        commit its metadata."""
        shard = self._shards[shard_index]
        journal = self._journal
        txn = self._txn + 1
        before = shard.transaction_number
        if journal is not None:
            journal.record(shard_index, kind, identifier, shipped, txn)
        try:
            shard.execute(shipped)
        except BaseException as error:
            if isinstance(error, StorageError) and not hasattr(
                error, "shard_index"
            ):
                # name the dying shard for the cluster layer's
                # degraded-mode handler (a journal-store failure
                # deliberately carries no index)
                error.shard_index = shard_index
            if journal is not None:
                journal.abort(txn)
            raise
        if shard.transaction_number == before:
            if journal is not None:
                journal.abort(txn)
            return False
        return True

    def _execute_define(self, command: DefineRelation) -> None:
        observer = _hooks.shard_observer()
        owner = self._owner.get(command.identifier)
        if owner is not None:
            # already bound: the paper's no-op (or a strict-mode raise)
            # — either way the database is unchanged, so don't journal
            try:
                self._shards[owner].execute(command)
            except StorageError as error:
                if not hasattr(error, "shard_index"):
                    error.shard_index = owner
                raise
            if observer is not None:
                observer.noop()
            return
        owner = self._partitioner.shard_for(
            command.identifier, len(self._shards)
        )
        applied = self._journal_execute(
            owner, "define", command.identifier, command
        )
        if not applied:
            if observer is not None:
                observer.noop()
            return
        self._owner[command.identifier] = owner
        self._txn += 1
        if observer is not None:
            observer.routed()

    def _execute_modify(self, command: ModifyState) -> None:
        observer = _hooks.shard_observer()
        owner = self._owner.get(command.identifier)
        bound = (
            owner is not None
            and self._shards[owner].database.state.is_bound(
                command.identifier
            )
        )
        if not bound:
            # the paper's exact no-op: an unbound identifier leaves the
            # database unchanged *without evaluating the expression*
            if command.strict:
                raise CommandError(
                    f"modify_state: {command.identifier!r} is not defined"
                )
            if observer is not None:
                observer.noop()
            return
        touched = self._router.shards_of(command.expression)
        if touched <= {owner}:
            # every rollback leaf lives on the owner: ship the whole
            # command (numerals localized) and let the shard evaluate,
            # log, and apply it
            shipped = ModifyState(
                command.identifier,
                self._router.localize(command.expression, owner),
                strict=command.strict,
                memoize=command.memoize,
            )
            applied = self._journal_execute(
                owner, "modify", command.identifier, shipped
            )
            if observer is not None:
                observer.routed()
        else:
            # cross-shard expression: scatter-gather the value at the
            # coordinator, then ship it as a constant state
            state = self._router.evaluate(command.expression)
            state = self._resolve_empty_set(command.identifier, state)
            applied = self._journal_execute(
                owner,
                "modify",
                command.identifier,
                ModifyState(
                    command.identifier,
                    Const(state),
                    strict=command.strict,
                ),
            )
            if observer is not None:
                observer.coordinated()
        if not applied:
            return
        self._txn += 1
        self._mods.setdefault(command.identifier, []).append(self._txn)

    def _resolve_empty_set(self, identifier: str, state):
        """Mirror :meth:`ModifyState._resolve_empty_set` for
        coordinator-evaluated expressions: give the untyped ∅ the schema
        of the relation's most recent state before shipping it."""
        if not is_empty_set(state):
            return state
        owner = self._owner[identifier]
        relation = self._shards[owner].database.require(identifier)
        if relation.history_length == 0:
            raise CommandError(
                f"modify_state({identifier!r}, ...): the expression "
                "denotes the untyped empty set and the relation has no "
                "prior state to take a schema from; use an explicit "
                "empty constant state instead"
            )
        latest = relation.current_state
        if isinstance(latest, HistoricalState):
            return HistoricalState.empty(latest.schema)
        assert isinstance(latest, SnapshotState)
        return SnapshotState.empty(latest.schema)

    # -- read path --------------------------------------------------------

    def evaluate(self, expression: Expression):
        """Scatter-gather evaluation of a side-effect-free expression,
        observationally equal to evaluating it on the unsharded
        database."""
        observer = _hooks.shard_observer()
        if observer is not None:
            observer.query(self._router.fanout(expression))
        return self._router.evaluate(expression)

    def state_at(self, identifier: str, txn: TransactionNumber):
        """``FINDSTATE`` at a *global* transaction number; None when the
        identifier is unbound, ∅ when no state qualifies."""
        owner = self._owner.get(identifier)
        if owner is None:
            return None
        relation = self._shards[owner].database.lookup(identifier)
        if relation is None:
            return None
        mods = self._mods.get(identifier, [])
        position = bisect_right(mods, txn)
        if relation.rtype.keeps_history:
            if position == 0:
                return EMPTY_STATE
            return relation.rstate[position - 1][0]
        # replace types hold only the latest state, bound to the global
        # time of the last modify — exactly as the unsharded relation does
        if mods and position == len(mods):
            return relation.rstate[-1][0]
        return EMPTY_STATE

    def as_database(self) -> Database:
        """The global :class:`~repro.core.database.Database` value — the
        same value the unsharded execution of the sentence produces.
        Rebuilt on demand (the differential oracle's strongest check);
        not used on the command or query hot paths."""
        state = DatabaseState()
        for identifier in self.identifiers:
            owner = self._owner[identifier]
            relation = self._shards[owner].database.lookup(identifier)
            if relation is None:
                continue
            mods = self._mods.get(identifier, [])
            if relation.rtype.keeps_history:
                if len(mods) != relation.history_length:
                    raise ShardingError(
                        f"coordinator metadata for {identifier!r} "
                        f"records {len(mods)} modifies but shard "
                        f"{owner} holds {relation.history_length} states"
                    )
                rstate = tuple(
                    (entry[0], global_txn)
                    for entry, global_txn in zip(relation.rstate, mods)
                )
            elif mods:
                rstate = ((relation.rstate[-1][0], mods[-1]),)
            else:
                rstate = ()
            state = state.bind(
                identifier, Relation(relation.rtype, rstate)
            )
        return Database(state, self._txn)

    # -- rebalancing ------------------------------------------------------

    def add_shard(self, store: Optional[FileStore] = None) -> int:
        """Open one more (empty) shard and return its index.  Existing
        identifiers stay put until :meth:`rebalance`; new identifiers
        spread over the enlarged shard set immediately."""
        index = len(self._shards)
        self._shards.append(self._open_shard(index, store))
        self.meta_checkpoint()
        return index

    def replace_shard(
        self, index: int, replacement: DurableDatabase
    ) -> DurableDatabase:
        """Swap shard ``index``'s durable database for an equivalent one
        and return the old one (not closed — the caller decides its
        fate).  This is the failover seam: a promoted replica whose
        replay reached the primary's exact state takes the primary's
        place, and the coordinator's metadata (owner map, ``_mods``, the
        global counter) — which never mentioned the old object — keeps
        answering ``ρ(I, N)`` unchanged.

        The replacement must hold the *identical* database value
        (transaction number and all bound relations); anything else
        would silently fork history and is refused."""
        if not 0 <= index < len(self._shards):
            raise ShardingError(
                f"replace_shard: no shard {index} "
                f"(have {len(self._shards)})"
            )
        current = self._shards[index]
        if replacement.database != current.database:
            raise ShardingError(
                f"replace_shard({index}): the replacement's database "
                f"diverges from the shard's (replacement txn "
                f"{replacement.transaction_number}, shard txn "
                f"{current.transaction_number}); refusing to fork "
                "history"
            )
        self._shards[index] = replacement
        self.meta_checkpoint()
        return current

    def rebalance(
        self, partitioner: Optional[Partitioner] = None
    ) -> RebalanceReport:
        """Move every identifier whose partitioner-preferred shard
        differs from its current owner.

        Each move prefers replaying the source shard's command WAL
        (filtered to the moved identifier) into the target — the same
        command-replay discipline recovery uses — and falls back to
        copying the state sequence when the log was compacted or the
        identifier's commands read other relations.  The owner map flips
        only after the target provably holds the identical state
        sequence."""
        if partitioner is not None:
            self._partitioner = partitioner
        # bracket the moves with checkpoints: the surplus copies a move
        # writes onto shards are not journaled, so an empty journal on
        # both sides keeps replay from ever re-counting them
        self.meta_checkpoint()
        report = RebalanceReport()
        started = time.monotonic()
        for identifier in self.identifiers:
            source = self._owner[identifier]
            target = self._partitioner.shard_for(
                identifier, len(self._shards)
            )
            if target == source:
                continue
            self._move(identifier, source, target, report)
        observer = _hooks.shard_observer()
        if observer is not None:
            observer.rebalanced(
                wal_replayed=report.wal_replayed,
                state_copied=report.state_copied,
                repaired=report.stale_repaired,
                seconds=time.monotonic() - started,
            )
        self.meta_checkpoint()
        return report

    def _move(
        self,
        identifier: str,
        source_index: int,
        target_index: int,
        report: RebalanceReport,
    ) -> None:
        source = self._shards[source_index]
        target = self._shards[target_index]
        relation = source.database.lookup(identifier)
        if relation is None:
            # defined on paper but lost on the shard would be a bug
            # elsewhere; ownership itself is free to move
            self._owner[identifier] = target_index
            report.moved += 1
            return
        if target.database.state.is_bound(identifier):
            # a stale copy from an earlier move occupies the target
            # (there is no unbind command).  Skipping here would leave
            # ownership at the source, and every later rebalance under
            # the same partitioner would re-pick this target and re-skip
            # — a permanent livelock.  Instead the copy is validated
            # against the source: a copy that stopped receiving modifies
            # when ownership moved away is a prefix of the owner's state
            # sequence, so replaying only the missing suffix reconverges
            # it; anything else has diverged and is refused loudly.
            self._repair_stale_copy(
                identifier, target_index, relation, target
            )
            report.stale_repaired += 1
        else:
            commands = self._replayable_commands(
                source, identifier, relation
            )
            if commands is not None:
                for command in commands:
                    target.execute(command)
                report.wal_replayed += 1
            else:
                target.execute(
                    DefineRelation(identifier, relation.rtype)
                )
                for state, _ in relation.rstate:
                    target.execute(
                        ModifyState(identifier, Const(state))
                    )
                report.state_copied += 1
        moved = target.database.require(identifier)
        if moved.rtype != relation.rtype or [
            entry[0] for entry in moved.rstate
        ] != [entry[0] for entry in relation.rstate]:
            raise ShardingError(
                f"moving {identifier!r} from shard {source_index} to "
                f"{target_index} rebuilt a diverging state sequence"
            )
        self._owner[identifier] = target_index
        report.moved += 1

    def _repair_stale_copy(
        self,
        identifier: str,
        target_index: int,
        relation: Relation,
        target: DurableDatabase,
    ) -> None:
        """Reconverge a stale copy on the move target with the owner's
        authoritative state sequence (see :meth:`_move`).  Raises
        :class:`ShardingError` when the copy is not a strict prefix —
        a diverged copy must never be silently overwritten."""
        stale = target.database.require(identifier)
        if stale.rtype != relation.rtype:
            raise ShardingError(
                f"stale copy of {identifier!r} on shard {target_index} "
                f"has type {stale.rtype!r} but the owner holds "
                f"{relation.rtype!r}; refusing to repair a diverged copy"
            )
        source_states = [entry[0] for entry in relation.rstate]
        stale_states = [entry[0] for entry in stale.rstate]
        if relation.rtype.keeps_history:
            if stale_states != source_states[: len(stale_states)]:
                raise ShardingError(
                    f"stale copy of {identifier!r} on shard "
                    f"{target_index} is not a prefix of the owner's "
                    f"state sequence; refusing to repair a diverged copy"
                )
            suffix = source_states[len(stale_states) :]
        elif stale_states != source_states:
            # replace types keep only the latest state: shipping the
            # owner's current state always reconverges the copy
            suffix = source_states
        else:
            suffix = []
        for state in suffix:
            target.execute(ModifyState(identifier, Const(state)))

    def _replayable_commands(
        self,
        source: DurableDatabase,
        identifier: str,
        relation: Relation,
    ) -> Optional[list[Command]]:
        """The source WAL's commands for one identifier, when replaying
        them on the (differently numbered) target provably rebuilds the
        same states; None forces the state-copy fallback.

        Replay is only transaction-offset-invariant when every command
        reads at most ``ρ(identifier, now)`` — a non-``now`` numeral or
        a foreign identifier binds to different states under the
        target's local counter.  A pure simulation from the empty
        database then predicts the target outcome exactly; any mismatch
        (or a compacted log) disqualifies the replay path."""
        wal = source.wal
        if wal.first_lsn > 1:
            return None  # compacted: the head of the history is gone
        commands: list[Command] = []
        try:
            for _, payload in wal.records():
                command, _ = decode_record(payload)
                for flat in self._flatten(command):
                    if isinstance(flat, DefineRelation):
                        if flat.identifier == identifier:
                            commands.append(flat)
                    elif isinstance(flat, ModifyState):
                        if flat.identifier != identifier:
                            continue
                        if not _only_now_and_self(
                            flat.expression, identifier
                        ):
                            return None
                        commands.append(flat)
                    else:
                        return None
        except Exception:
            return None
        from repro.core.database import EMPTY_DATABASE

        simulated = EMPTY_DATABASE
        try:
            for command in commands:
                simulated = command.execute(simulated)
        except Exception:
            return None
        rebuilt = simulated.lookup(identifier)
        if rebuilt is None or [
            entry[0] for entry in rebuilt.rstate
        ] != [entry[0] for entry in relation.rstate]:
            return None
        return commands

    # -- durability control ----------------------------------------------

    def sync(self) -> None:
        for shard in self._shards:
            shard.sync()

    def checkpoint(self) -> None:
        for shard in self._shards:
            shard.checkpoint()

    def _meta_snapshot(self) -> dict:
        return {
            "txn": self._txn,
            "owner": dict(self._owner),
            "mods": {
                identifier: list(txns)
                for identifier, txns in self._mods.items()
            },
            "shards": len(self._shards),
            "shard_txns": [
                shard.transaction_number for shard in self._shards
            ],
        }

    def meta_checkpoint(self) -> None:
        """Publish the coordinator maps atomically and drop the covered
        journal segments.  Every shard is fsynced *first* so the
        checkpoint's ``shard_txns`` never claim durability the shards
        don't have — the invariant replay depends on.  If a shard's
        store is failing the checkpoint is skipped (the journal stays,
        which is always safe)."""
        if self._journal is None:
            return
        try:
            for shard in self._shards:
                shard.sync()
        except StorageError:
            return
        self._journal.checkpoint(self._meta_snapshot())

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.meta_checkpoint()
        except ReproError:
            pass  # a failing meta store must not block shard shutdown
        self._closed = True
        for shard in self._shards:
            try:
                shard.close()
            except StorageError:
                pass  # a write-dead store can't flush; don't block the rest

    def kill(self) -> None:
        """Simulate abrupt process death for crash testing: every shard
        and the coordinator journal drop their handles with buffers
        discarded — no checkpoint, no final sync.  Recover with
        :meth:`reopen` over the same stores."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.kill()
        if self._journal is not None:
            self._journal.store.crash()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
