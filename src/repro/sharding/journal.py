"""The coordinator journal: durable shard-routing metadata.

A :class:`~repro.sharding.sharded.ShardedDatabase` keeps three pieces
of metadata the shards themselves cannot reconstruct: the global
transaction counter, the identifier→shard owner map, and the per-
identifier list of global transaction numbers at which each history
was modified (what localizes a global ρ(I, N) numeral onto a shard's
local history).  Before this journal existed that metadata lived only
in memory, so a process kill lost the cluster even though every shard
store was durable.

The journal applies the WAL discipline one level up.  Per *effective*
command the coordinator appends one JSON record — global txn, target
shard, kind, identifier, and the **shipped** command (already
localized, so replay is exact) — *before* executing on the shard, and
only then updates its in-memory maps.  Periodically (and at every
topology change) it writes a ``meta-checkpoint.json`` snapshot of the
maps and drops the covered journal segments.  Reopening a cluster is
then: load the checkpoint, recover each shard, and replay the journal
tail — redoing onto any shard whose own (batch-fsynced) WAL lost the
corresponding records, which is why the checkpoint writer fsyncs every
shard first and the journal itself runs ``policy="always"``: the
journal is never allowed to be *behind* a shard.

Failed commands leave **dead records**: the journal entry was written
but the shard refused the command (or the paper's no-op semantics made
it ineffective).  Each one is immediately followed by an ``abort``
marker carrying the same predicted txn — writes are serialized, so the
pair is adjacent — and :meth:`CoordinatorJournal.pending` cancels the
pairs out before replay.  A trailing dead record with *no* marker
(crash in the window between the two appends) is harmless: replay
re-executes it, and either it fails again deterministically (skipped)
or the crash interrupted a commit that now completes — standard WAL
recovery semantics.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.durability.codec import command_to_dict
from repro.durability.files import FileStore
from repro.durability.wal import WriteAheadLog
from repro.errors import ShardingError

__all__ = ["CoordinatorJournal", "CHECKPOINT_NAME"]

#: The atomic metadata snapshot next to the journal segments.
CHECKPOINT_NAME = "meta-checkpoint.json"

_VERSION = 1


def _encode(entry: dict) -> bytes:
    return json.dumps(
        entry, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


class CoordinatorJournal:
    """One write-ahead journal + checkpoint pair over a FileStore."""

    def __init__(
        self, store: FileStore, *, checkpoint_every: int = 512
    ) -> None:
        if checkpoint_every < 1:
            raise ShardingError(
                f"checkpoint_every must be ≥ 1, got {checkpoint_every}"
            )
        self._store = store
        # "always": a journal record must never be volatile while the
        # shard effect it predicts is durable (see module docstring)
        self._wal = WriteAheadLog(store, policy="always")
        self._checkpoint_every = checkpoint_every
        self._since_checkpoint = 0
        self._extra: dict = {}

    @property
    def store(self) -> FileStore:
        return self._store

    @property
    def last_lsn(self) -> int:
        return self._wal.last_lsn

    # -- cluster-level payload ------------------------------------------------

    @property
    def extra(self) -> dict:
        """An opaque payload the owner (e.g. the cluster topology)
        persists alongside the coordinator maps; survives checkpoints
        and reopen."""
        return self._extra

    def set_extra(self, extra: dict) -> None:
        self._extra = dict(extra)

    # -- the write path -------------------------------------------------------

    def record(
        self,
        shard: int,
        kind: str,
        identifier: str,
        command,
        txn: int,
    ) -> None:
        """Journal an intended command *before* the shard executes it.
        ``txn`` is the global transaction number the command will
        commit as if it proves effective; ``command`` is the shipped
        (already-localized) form."""
        self._wal.append(
            _encode(
                {
                    "t": txn,
                    "s": shard,
                    "k": kind,
                    "i": identifier,
                    "c": command_to_dict(command),
                }
            )
        )
        self._since_checkpoint += 1

    def abort(self, txn: int) -> None:
        """Cancel the immediately preceding record: the shard refused
        the command or the paper's semantics made it a no-op."""
        self._wal.append(_encode({"k": "abort", "t": txn}))

    def due(self) -> bool:
        """Time for a checkpoint?  Consulted between commands only —
        a checkpoint must never interleave with a record/abort pair."""
        return self._since_checkpoint >= self._checkpoint_every

    # -- checkpoints ----------------------------------------------------------

    def checkpoint(self, snapshot: dict) -> None:
        """Atomically publish the metadata ``snapshot`` and drop the
        journal segments it covers.  The caller has already fsynced
        every shard (see ShardedDatabase.meta_checkpoint)."""
        body = dict(snapshot)
        body["version"] = _VERSION
        body["journal_lsn"] = self._wal.last_lsn
        body["extra"] = self._extra
        self._store.replace(
            CHECKPOINT_NAME,
            json.dumps(body, sort_keys=True).encode("utf-8"),
        )
        self._wal.drop_segments_through(body["journal_lsn"])
        self._since_checkpoint = 0

    @staticmethod
    def load(store: FileStore) -> Optional[dict]:
        """The latest checkpoint's body, or None when the store has
        never checkpointed (a fresh or non-journaled directory)."""
        if not store.exists(CHECKPOINT_NAME):
            return None
        try:
            meta = json.loads(store.read(CHECKPOINT_NAME).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ShardingError(
                f"unreadable coordinator checkpoint: {error}"
            ) from error
        if not isinstance(meta, dict) or meta.get("version") != _VERSION:
            raise ShardingError(
                "coordinator checkpoint has unsupported version "
                f"{meta.get('version') if isinstance(meta, dict) else meta!r}"
            )
        return meta

    # -- replay ---------------------------------------------------------------

    def pending(self, after_lsn: int) -> "list[dict]":
        """Journal entries past ``after_lsn`` with aborted record/marker
        pairs cancelled out — exactly the commands replay must account
        for, in coordinator commit order."""
        entries: list[dict] = []
        for _lsn, payload in self._wal.records(after_lsn=after_lsn):
            try:
                entry = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                raise ShardingError(
                    f"undecodable coordinator journal record: {error}"
                ) from error
            if entry.get("k") == "abort":
                if entries and entries[-1]["t"] == entry["t"]:
                    entries.pop()
                continue
            entries.append(entry)
        return entries

    def __repr__(self) -> str:
        return (
            f"CoordinatorJournal(last_lsn={self._wal.last_lsn}, "
            f"since_checkpoint={self._since_checkpoint})"
        )
