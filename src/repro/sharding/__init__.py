"""Horizontal sharding for the versioned database.

``ShardedDatabase`` partitions relation identifiers across N durable
shards behind a coordinator that preserves the paper's single-sentence,
single-counter command semantics; ``ScatterGatherRouter`` decomposes
algebraic expressions over the shard set; the partitioners decide
initial placement.  See ``docs/architecture.md`` (Sharding) and
``docs/testing.md`` (the differential shard oracle).
"""

from repro.sharding.journal import CoordinatorJournal
from repro.sharding.partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
)
from repro.sharding.router import ScatterGatherRouter
from repro.sharding.sharded import RebalanceReport, ShardedDatabase

__all__ = [
    "CoordinatorJournal",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "RebalanceReport",
    "ScatterGatherRouter",
    "ShardedDatabase",
]
