"""Partitioners: which shard owns a relation identifier.

The unit of partitioning is the *identifier* — the paper's ``DATABASE
STATE`` is a finite map ``IDENTIFIER → [RELATION + {⊥}]`` (Section 3.2),
and every command names exactly one identifier, so identifier-granular
ownership lets the coordinator fan each command to a single shard while
the scatter-gather router recombines cross-identifier expressions.

Two built-in strategies:

* :class:`HashPartitioner` — a stable CRC32 hash of the identifier,
  modulo the shard count.  Deterministic across processes and Python
  invocations (unlike ``hash()``, which is salted by
  ``PYTHONHASHSEED``), so a coordinator reopened over the same shard
  layout routes identically.
* :class:`RangePartitioner` — explicit lexicographic boundaries, for
  deployments that want locality (e.g. all ``user_*`` relations on one
  shard).

A partitioner only decides *initial* placement: the coordinator keeps an
authoritative owner map, and :meth:`ShardedDatabase.rebalance` is what
moves already-placed identifiers when the partitioner (or the shard
count) changes.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Sequence

from repro.errors import ShardingError

__all__ = ["Partitioner", "HashPartitioner", "RangePartitioner"]


class Partitioner:
    """Strategy interface: map an identifier to a shard index in
    ``range(shard_count)``."""

    def shard_for(self, identifier: str, shard_count: int) -> int:
        raise NotImplementedError

    def _check(self, shard: int, shard_count: int) -> int:
        if not 0 <= shard < shard_count:
            raise ShardingError(
                f"{type(self).__name__} mapped to shard {shard} but "
                f"only {shard_count} shard(s) exist"
            )
        return shard


class HashPartitioner(Partitioner):
    """Stable hash placement: ``crc32(identifier) % shard_count``.

    ``salt`` perturbs the hash so tests (and re-splits) can force a
    different spread over the same identifiers.
    """

    __slots__ = ("salt",)

    def __init__(self, salt: int = 0) -> None:
        self.salt = salt

    def shard_for(self, identifier: str, shard_count: int) -> int:
        if shard_count < 1:
            raise ShardingError(
                f"shard_count must be ≥ 1, got {shard_count}"
            )
        digest = zlib.crc32(identifier.encode("utf-8")) ^ self.salt
        return self._check(digest % shard_count, shard_count)

    def __repr__(self) -> str:
        return f"HashPartitioner(salt={self.salt})"


class RangePartitioner(Partitioner):
    """Lexicographic range placement.

    ``boundaries`` are the split points: an identifier goes to the
    number of boundaries strictly ≤ it, so ``RangePartitioner(["m"])``
    sends ``"abc"`` to shard 0 and ``"zeta"`` to shard 1.  Requires
    ``shard_count > len(boundaries)`` so every range has a shard.
    """

    __slots__ = ("boundaries",)

    def __init__(self, boundaries: Sequence[str]) -> None:
        ordered = tuple(boundaries)
        if list(ordered) != sorted(set(ordered)):
            raise ShardingError(
                f"range boundaries must be strictly increasing, got "
                f"{list(ordered)}"
            )
        self.boundaries = ordered

    def shard_for(self, identifier: str, shard_count: int) -> int:
        if shard_count <= len(self.boundaries):
            raise ShardingError(
                f"{len(self.boundaries)} boundaries define "
                f"{len(self.boundaries) + 1} ranges but only "
                f"{shard_count} shard(s) exist"
            )
        return self._check(
            bisect_right(self.boundaries, identifier), shard_count
        )

    def __repr__(self) -> str:
        return f"RangePartitioner({list(self.boundaries)})"
