"""Scatter-gather evaluation of algebraic expressions over shards.

The router decides, per subtree, whether the whole subtree can be
answered by a single shard (every ``ρ(I, N)`` leaf it contains names an
identifier owned by the same shard) or whether the node's operands must
be gathered from different shards and merged at the coordinator.

Single-shard subtrees ship to the owning shard's
:meth:`~repro.durability.durable.DurableDatabase.evaluate` — so reads
exercise each shard's physical backend mirror when one is attached —
after *localizing* transaction-time numerals: the coordinator's
transaction counter is global, a shard's is local to the commands it
received, so ``ρ(I, N)`` is rewritten to the shard-local numeral that
selects the same state the global ``N`` selects in the unsharded
semantics.

Cross-shard nodes are merged with
:func:`repro.core.expressions.apply_node` — the *same* dispatch point
the memoizing and tracing evaluators use — so the coordinator's merge of
``∪``/``−``/``×``/``σ``/``π`` cannot drift from the paper's operator
semantics.  The algebra-identity property suite
(``tests/sharding/test_algebra_identities.py``) additionally verifies
the identities this decomposition relies on (commutativity/associativity
of ``∪``, distribution of ``σ`` over ``×``).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.expressions import (
    Derive,
    Difference,
    Expression,
    Product,
    Project,
    Rename,
    Rollback,
    Select,
    Union,
    apply_node,
)
from repro.core.txn import Numeral, is_now
from repro.obsv import hooks as _hooks

__all__ = ["ScatterGatherRouter"]


def _rebuild(node: Expression, children: list[Expression]) -> Expression:
    """A structurally identical node over new children."""
    if isinstance(node, Union):
        return Union(children[0], children[1])
    if isinstance(node, Difference):
        return Difference(children[0], children[1])
    if isinstance(node, Product):
        return Product(children[0], children[1])
    if isinstance(node, Project):
        return Project(children[0], node.names)
    if isinstance(node, Select):
        return Select(children[0], node.predicate)
    if isinstance(node, Rename):
        return Rename(children[0], node.mapping)
    if isinstance(node, Derive):
        return Derive(children[0], node.predicate, node.expression)
    return node


class ScatterGatherRouter:
    """Route expression (sub)trees to shards and merge at the
    coordinator.

    The three impure inputs are injected so the router stays a pure
    routing policy: ``owner_of`` maps an identifier to its shard index,
    ``localize_numeral`` translates a global transaction-time numeral
    into the owning shard's local numeral, and ``evaluate_on_shard``
    runs a (localized) expression on one shard.
    """

    __slots__ = ("_owner_of", "_localize_numeral", "_evaluate_on_shard")

    def __init__(
        self,
        owner_of: Callable[[str], int],
        localize_numeral: Callable[[str, Numeral], Numeral],
        evaluate_on_shard: Callable[[int, Expression], object],
    ) -> None:
        self._owner_of = owner_of
        self._localize_numeral = localize_numeral
        self._evaluate_on_shard = evaluate_on_shard

    # -- analysis ---------------------------------------------------------

    def shards_of(self, expression: Expression) -> frozenset[int]:
        """The set of shard indices the expression's rollback leaves
        touch (∅ for constant-only expressions)."""
        if isinstance(expression, Rollback):
            return frozenset((self._owner_of(expression.identifier),))
        shards: frozenset[int] = frozenset()
        for child in expression.children():
            shards |= self.shards_of(child)
        return shards

    def is_local(self, expression: Expression, shard: int) -> bool:
        """True iff the expression can ship to ``shard`` *untouched*:
        every rollback leaf is owned by ``shard`` and asks for the most
        recent state (``now``), so no numeral translation is needed and
        the paper's exact command-expression text can be logged in the
        shard's WAL."""
        if isinstance(expression, Rollback):
            return is_now(expression.numeral) and (
                self._owner_of(expression.identifier) == shard
            )
        return all(
            self.is_local(child, shard)
            for child in expression.children()
        )

    # -- rewriting --------------------------------------------------------

    def localize(
        self, expression: Expression, shard: int
    ) -> Expression:
        """The expression with every non-``now`` rollback numeral
        translated into ``shard``'s local transaction numbering.
        Returns the original object when nothing needed rewriting."""
        if isinstance(expression, Rollback):
            if is_now(expression.numeral):
                return expression
            local = self._localize_numeral(
                expression.identifier, expression.numeral
            )
            if local == expression.numeral:
                return expression
            return Rollback(expression.identifier, local)
        children = list(expression.children())
        if not children:
            return expression
        rewritten = [self.localize(child, shard) for child in children]
        if all(a is b for a, b in zip(rewritten, children)):
            return expression
        return _rebuild(expression, rewritten)

    # -- evaluation -------------------------------------------------------

    def evaluate(self, expression: Expression):
        """Scatter-gather evaluation: single-shard subtrees route whole,
        cross-shard nodes gather their operands and merge locally."""
        shards = self.shards_of(expression)
        if len(shards) <= 1:
            # constant-only subtrees evaluate on shard 0: Const leaves
            # ignore the database, so any shard answers identically
            target = next(iter(shards)) if shards else 0
            observer = _hooks.shard_observer()
            if observer is not None:
                observer.subquery()
            return self._evaluate_on_shard(
                target, self.localize(expression, target)
            )
        operands = [
            self.evaluate(child) for child in expression.children()
        ]
        observer = _hooks.shard_observer()
        if observer is not None:
            observer.merge()
        # merging is pure — apply_node only consults the database for
        # leaves, and leaves are always single-shard (handled above)
        return apply_node(expression, operands, None)

    def fanout(self, expression: Expression) -> int:
        """How many shards a top-level evaluation touches (≥ 1; a
        constant-only expression still visits one shard)."""
        return max(1, len(self.shards_of(expression)))
