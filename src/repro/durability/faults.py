"""Fault injection: a simulated disk with an explicit durable/volatile split.

The crash-recovery suite needs to kill the process at arbitrary points
and observe what a real disk would have retained.  :class:`MemoryStore`
models exactly that: every file has *volatile* contents (what the
process sees) and *durable* contents (what survives a crash).  Appends
land in volatile space; :meth:`~MemoryStore.sync` promotes them;
:meth:`~MemoryStore.crash` discards everything volatile — except that,
as on a real disk, an arbitrary prefix of the un-synced tail may have
reached the platter, optionally with flipped bits (a torn write).

:class:`FaultPlan` scripts the failure:

* ``crash_at_op=n`` — raise :class:`CrashPoint` when the ``n``-th store
  operation (append/replace/sync/delete) is about to run, simulating the
  process dying mid-write;
* ``keep_tail_bytes=k`` — at crash time, ``k`` bytes of each file's
  un-synced tail survive on disk (a torn write when it splits a record);
* ``flip_bit_in_tail=True`` — one bit of the surviving torn tail is
  inverted, exercising the CRC check;
* ``sync_lies=True`` — ``sync`` reports success without making anything
  durable (a "lying fsync" / partial-fsync fault).

After :meth:`~MemoryStore.crash` the plan is disarmed: the post-crash
store behaves like a healthy disk, so recovery itself runs fault-free
(recovery under *repeated* faults can be scripted with a fresh plan).

The plan also scripts *replication stream* faults, consumed by
:class:`repro.replication.stream.FaultyStream` rather than the store:
``stream_error_rate`` makes a fetch fail transiently
(:class:`~repro.errors.ReplicationError`), and ``stream_drop_rate`` /
``stream_duplicate_rate`` / ``stream_reorder_rate`` /
``stream_truncate_rate`` mangle a shipped batch via
:meth:`FaultPlan.mangle_batch` — deliveries a robust replica must
absorb (duplicates skipped, gaps re-fetched) without ever applying a
record out of order.  All rolls come from the plan's seeded RNG, so a
chaos schedule replays exactly.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.durability.files import FileStore

__all__ = ["CrashPoint", "FaultPlan", "MemoryStore"]


class CrashPoint(Exception):
    """Simulated process death.

    Deliberately *not* a :class:`~repro.errors.ReproError`: nothing in
    the library should catch it, exactly as nothing can catch a real
    ``kill -9``.
    """


class FaultPlan:
    """A scripted failure for one :class:`MemoryStore` run."""

    __slots__ = (
        "crash_at_op",
        "keep_tail_bytes",
        "flip_bit_in_tail",
        "sync_lies",
        "stream_drop_rate",
        "stream_duplicate_rate",
        "stream_reorder_rate",
        "stream_truncate_rate",
        "stream_error_rate",
        "_rng",
    )

    def __init__(
        self,
        crash_at_op: Optional[int] = None,
        keep_tail_bytes: int = 0,
        flip_bit_in_tail: bool = False,
        sync_lies: bool = False,
        stream_drop_rate: float = 0.0,
        stream_duplicate_rate: float = 0.0,
        stream_reorder_rate: float = 0.0,
        stream_truncate_rate: float = 0.0,
        stream_error_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.crash_at_op = crash_at_op
        self.keep_tail_bytes = keep_tail_bytes
        self.flip_bit_in_tail = flip_bit_in_tail
        self.sync_lies = sync_lies
        self.stream_drop_rate = stream_drop_rate
        self.stream_duplicate_rate = stream_duplicate_rate
        self.stream_reorder_rate = stream_reorder_rate
        self.stream_truncate_rate = stream_truncate_rate
        self.stream_error_rate = stream_error_rate
        self._rng = random.Random(seed)

    # -- stream faults -----------------------------------------------------

    @property
    def has_stream_faults(self) -> bool:
        """True when any replication-stream fault is configured."""
        return bool(
            self.stream_drop_rate
            or self.stream_duplicate_rate
            or self.stream_reorder_rate
            or self.stream_truncate_rate
            or self.stream_error_rate
        )

    def stream_error_due(self) -> bool:
        """Roll for a transient fetch failure."""
        return (
            self.stream_error_rate > 0.0
            and self._rng.random() < self.stream_error_rate
        )

    def mangle_batch(self, records: list) -> list:
        """Apply the scripted delivery faults to one shipped batch.

        Drop loses the whole delivery; truncate loses a suffix;
        duplicate re-delivers one record; reorder swaps two adjacent
        records.  Faults compose (a batch can be both truncated and
        reordered), mirroring how a flaky transport stacks failures.
        Payload *bytes* are never altered here — bit rot inside records
        is the store's CRC-checked domain, not the transport's.
        """
        records = list(records)
        rng = self._rng
        if not records:
            return records
        if (
            self.stream_drop_rate
            and rng.random() < self.stream_drop_rate
        ):
            return []
        if (
            self.stream_truncate_rate
            and rng.random() < self.stream_truncate_rate
        ):
            records = records[: rng.randrange(len(records))]
        if (
            self.stream_duplicate_rate
            and records
            and rng.random() < self.stream_duplicate_rate
        ):
            index = rng.randrange(len(records))
            records = records[: index + 1] + records[index:]
        if (
            self.stream_reorder_rate
            and len(records) > 1
            and rng.random() < self.stream_reorder_rate
        ):
            index = rng.randrange(len(records) - 1)
            records[index], records[index + 1] = (
                records[index + 1],
                records[index],
            )
        return records


class _MemFile:
    __slots__ = ("data", "durable", "created_durable")

    def __init__(self) -> None:
        self.data = bytearray()  # what the process sees
        self.durable = b""  # what survives a crash
        self.created_durable = False  # does the *name* survive a crash?


class MemoryStore(FileStore):
    """An in-memory :class:`FileStore` with crash semantics.

    ``ops`` counts every mutating operation, so a fault-free probe run
    yields the space of crash points a test can sweep.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self._files: dict[str, _MemFile] = {}
        self._plan = plan
        self.ops = 0
        self.crashes = 0
        self._write_error: Optional[str] = None

    # -- fault machinery --------------------------------------------------

    def fail_writes(
        self, message: str = "injected write failure"
    ) -> None:
        """Make every mutating operation raise
        :class:`~repro.errors.StorageError` while reads keep serving —
        the write-dead/read-alive failure a supervisor must detect
        (WAL streaming, validation and snapshots all go through
        :meth:`read`, so a dying primary can still be failed over)."""
        self._write_error = message

    def heal_writes(self) -> None:
        """Clear :meth:`fail_writes`."""
        self._write_error = None

    def _op(self) -> None:
        if self._write_error is not None:
            from repro.errors import StorageError

            raise StorageError(self._write_error)
        self.ops += 1
        plan = self._plan
        if plan is not None and plan.crash_at_op == self.ops:
            raise CrashPoint(f"injected crash at store op {self.ops}")

    def crash(self) -> None:
        """Simulate process death + restart: volatile state is lost.

        Per the plan, a prefix of each file's un-synced tail may survive
        (torn write), possibly with one bit flipped.  Files whose
        creation was never made durable vanish entirely.  The plan is
        disarmed afterwards.
        """
        plan = self._plan
        survivors: dict[str, _MemFile] = {}
        for name, file in self._files.items():
            if not file.created_durable:
                continue
            tail = b""
            pending = bytes(file.data[len(file.durable):])
            if plan is not None and plan.keep_tail_bytes > 0 and pending:
                tail = pending[: plan.keep_tail_bytes]
                if plan.flip_bit_in_tail and tail:
                    index = plan._rng.randrange(len(tail))
                    bit = 1 << plan._rng.randrange(8)
                    flipped = bytearray(tail)
                    flipped[index] ^= bit
                    tail = bytes(flipped)
            file.durable = file.durable + tail
            file.data = bytearray(file.durable)
            survivors[name] = file
        self._files = survivors
        self._plan = None
        self.crashes += 1

    def corrupt(self, name: str, offset: int, bit: int = 1) -> None:
        """Flip a bit of already-durable data (silent media corruption;
        used to test CRC/validation paths directly)."""
        file = self._files[self._check_name(name)]
        data = bytearray(file.durable)
        data[offset] ^= bit
        file.durable = bytes(data)
        file.data = bytearray(file.durable)

    # -- FileStore --------------------------------------------------------

    def list(self) -> tuple[str, ...]:
        return tuple(sorted(self._files))

    def exists(self, name: str) -> bool:
        return self._check_name(name) in self._files

    def read(self, name: str) -> bytes:
        from repro.errors import StorageError

        file = self._files.get(self._check_name(name))
        if file is None:
            raise StorageError(f"store has no file {name!r}")
        return bytes(file.data)

    def append(self, name: str, data: bytes) -> None:
        self._op()
        file = self._files.get(self._check_name(name))
        if file is None:
            file = self._files[name] = _MemFile()
        file.data += data

    def replace(self, name: str, data: bytes) -> None:
        # atomic-and-durable, like DirectoryStore.replace (tmp + fsync +
        # rename): a crash before this op leaves the old contents, after
        # it the new — never a mix.
        self._op()
        file = self._files.get(self._check_name(name))
        if file is None:
            file = self._files[name] = _MemFile()
        file.data = bytearray(data)
        file.durable = bytes(data)
        file.created_durable = True

    def delete(self, name: str) -> None:
        self._op()
        self._files.pop(self._check_name(name), None)

    def sync(self, name: str) -> None:
        self._op()
        plan = self._plan
        if plan is not None and plan.sync_lies:
            return  # the lying-fsync fault: report success, do nothing
        file = self._files.get(self._check_name(name))
        if file is None:
            return
        file.durable = bytes(file.data)
        file.created_durable = True
