"""Fault injection: a simulated disk with an explicit durable/volatile split.

The crash-recovery suite needs to kill the process at arbitrary points
and observe what a real disk would have retained.  :class:`MemoryStore`
models exactly that: every file has *volatile* contents (what the
process sees) and *durable* contents (what survives a crash).  Appends
land in volatile space; :meth:`~MemoryStore.sync` promotes them;
:meth:`~MemoryStore.crash` discards everything volatile — except that,
as on a real disk, an arbitrary prefix of the un-synced tail may have
reached the platter, optionally with flipped bits (a torn write).

:class:`FaultPlan` scripts the failure:

* ``crash_at_op=n`` — raise :class:`CrashPoint` when the ``n``-th store
  operation (append/replace/sync/delete) is about to run, simulating the
  process dying mid-write;
* ``keep_tail_bytes=k`` — at crash time, ``k`` bytes of each file's
  un-synced tail survive on disk (a torn write when it splits a record);
* ``flip_bit_in_tail=True`` — one bit of the surviving torn tail is
  inverted, exercising the CRC check;
* ``sync_lies=True`` — ``sync`` reports success without making anything
  durable (a "lying fsync" / partial-fsync fault).

After :meth:`~MemoryStore.crash` the plan is disarmed: the post-crash
store behaves like a healthy disk, so recovery itself runs fault-free
(recovery under *repeated* faults can be scripted with a fresh plan).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.durability.files import FileStore

__all__ = ["CrashPoint", "FaultPlan", "MemoryStore"]


class CrashPoint(Exception):
    """Simulated process death.

    Deliberately *not* a :class:`~repro.errors.ReproError`: nothing in
    the library should catch it, exactly as nothing can catch a real
    ``kill -9``.
    """


class FaultPlan:
    """A scripted failure for one :class:`MemoryStore` run."""

    __slots__ = (
        "crash_at_op",
        "keep_tail_bytes",
        "flip_bit_in_tail",
        "sync_lies",
        "_rng",
    )

    def __init__(
        self,
        crash_at_op: Optional[int] = None,
        keep_tail_bytes: int = 0,
        flip_bit_in_tail: bool = False,
        sync_lies: bool = False,
        seed: int = 0,
    ) -> None:
        self.crash_at_op = crash_at_op
        self.keep_tail_bytes = keep_tail_bytes
        self.flip_bit_in_tail = flip_bit_in_tail
        self.sync_lies = sync_lies
        self._rng = random.Random(seed)


class _MemFile:
    __slots__ = ("data", "durable", "created_durable")

    def __init__(self) -> None:
        self.data = bytearray()  # what the process sees
        self.durable = b""  # what survives a crash
        self.created_durable = False  # does the *name* survive a crash?


class MemoryStore(FileStore):
    """An in-memory :class:`FileStore` with crash semantics.

    ``ops`` counts every mutating operation, so a fault-free probe run
    yields the space of crash points a test can sweep.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self._files: dict[str, _MemFile] = {}
        self._plan = plan
        self.ops = 0
        self.crashes = 0

    # -- fault machinery --------------------------------------------------

    def _op(self) -> None:
        self.ops += 1
        plan = self._plan
        if plan is not None and plan.crash_at_op == self.ops:
            raise CrashPoint(f"injected crash at store op {self.ops}")

    def crash(self) -> None:
        """Simulate process death + restart: volatile state is lost.

        Per the plan, a prefix of each file's un-synced tail may survive
        (torn write), possibly with one bit flipped.  Files whose
        creation was never made durable vanish entirely.  The plan is
        disarmed afterwards.
        """
        plan = self._plan
        survivors: dict[str, _MemFile] = {}
        for name, file in self._files.items():
            if not file.created_durable:
                continue
            tail = b""
            pending = bytes(file.data[len(file.durable):])
            if plan is not None and plan.keep_tail_bytes > 0 and pending:
                tail = pending[: plan.keep_tail_bytes]
                if plan.flip_bit_in_tail and tail:
                    index = plan._rng.randrange(len(tail))
                    bit = 1 << plan._rng.randrange(8)
                    flipped = bytearray(tail)
                    flipped[index] ^= bit
                    tail = bytes(flipped)
            file.durable = file.durable + tail
            file.data = bytearray(file.durable)
            survivors[name] = file
        self._files = survivors
        self._plan = None
        self.crashes += 1

    def corrupt(self, name: str, offset: int, bit: int = 1) -> None:
        """Flip a bit of already-durable data (silent media corruption;
        used to test CRC/validation paths directly)."""
        file = self._files[self._check_name(name)]
        data = bytearray(file.durable)
        data[offset] ^= bit
        file.durable = bytes(data)
        file.data = bytearray(file.durable)

    # -- FileStore --------------------------------------------------------

    def list(self) -> tuple[str, ...]:
        return tuple(sorted(self._files))

    def exists(self, name: str) -> bool:
        return self._check_name(name) in self._files

    def read(self, name: str) -> bytes:
        from repro.errors import StorageError

        file = self._files.get(self._check_name(name))
        if file is None:
            raise StorageError(f"store has no file {name!r}")
        return bytes(file.data)

    def append(self, name: str, data: bytes) -> None:
        self._op()
        file = self._files.get(self._check_name(name))
        if file is None:
            file = self._files[name] = _MemFile()
        file.data += data

    def replace(self, name: str, data: bytes) -> None:
        # atomic-and-durable, like DirectoryStore.replace (tmp + fsync +
        # rename): a crash before this op leaves the old contents, after
        # it the new — never a mix.
        self._op()
        file = self._files.get(self._check_name(name))
        if file is None:
            file = self._files[name] = _MemFile()
        file.data = bytearray(data)
        file.durable = bytes(data)
        file.created_durable = True

    def delete(self, name: str) -> None:
        self._op()
        self._files.pop(self._check_name(name), None)

    def sync(self, name: str) -> None:
        self._op()
        plan = self._plan
        if plan is not None and plan.sync_lies:
            return  # the lying-fsync fault: report success, do nothing
        file = self._files.get(self._check_name(name))
        if file is None:
            return
        file.durable = bytes(file.data)
        file.created_durable = True
