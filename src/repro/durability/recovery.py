"""Crash recovery: checkpoint + deterministic command replay.

The recovery invariant, which the fault-injection suite checks at every
transaction number against an in-memory oracle:

    the recovered database equals the database produced by executing
    some *prefix* of the committed command sequence from the empty
    database — at least the prefix covered by the last fsync (all of it
    under the ``always`` policy), and never anything else.

Recovery is three steps, all reusing existing machinery rather than a
parallel semantics:

1. load the newest checkpoint that validates (CRC; fall back to older
   ones, then to the empty database) — :mod:`repro.durability.checkpoint`;
2. replay the WAL tail past the checkpoint's LSN through
   :func:`repro.core.commands.execute`, the paper's own semantic
   function **C** (a torn final record was already truncated when the
   log was opened);
3. cross-check: after each replayed record the database's transaction
   number must equal the one the record committed with — a cheap
   divergence detector for log corruption that framing CRCs cannot see.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.errors import DivergenceError
from repro.core.commands import execute as execute_command
from repro.core.database import EMPTY_DATABASE, Database
from repro.durability.checkpoint import latest_checkpoint
from repro.durability.codec import decode_record
from repro.durability.files import FileStore
from repro.durability.wal import FsyncPolicy, WriteAheadLog
from repro.obsv import hooks as _hooks

__all__ = ["RecoveryResult", "recover"]


class RecoveryResult:
    """What recovery produced and how much work it took."""

    __slots__ = (
        "database",
        "checkpoint_lsn",
        "replayed",
        "last_lsn",
        "seconds",
    )

    def __init__(
        self,
        database: Database,
        checkpoint_lsn: int,
        replayed: int,
        last_lsn: int,
        seconds: float,
    ) -> None:
        self.database = database
        self.checkpoint_lsn = checkpoint_lsn  # 0 = recovered from empty
        self.replayed = replayed  # WAL records re-executed
        self.last_lsn = last_lsn  # newest LSN the log retains
        self.seconds = seconds

    def __repr__(self) -> str:
        return (
            f"RecoveryResult(txn={self.database.transaction_number}, "
            f"checkpoint_lsn={self.checkpoint_lsn}, "
            f"replayed={self.replayed})"
        )


def recover(
    store: FileStore,
    wal: Optional[WriteAheadLog] = None,
    policy: "Union[str, FsyncPolicy]" = "batch(64, 100)",
) -> RecoveryResult:
    """Rebuild the database from ``store``.

    Pass the already-opened ``wal`` when the caller keeps appending to
    the same log afterwards (the normal :class:`DurableDatabase` path);
    otherwise one is opened — which repairs any torn tail — and
    discarded.
    """
    start = time.perf_counter()
    if wal is None:
        wal = WriteAheadLog(store, policy=policy)
    checkpoint = latest_checkpoint(store)
    if checkpoint is None:
        base_lsn, database = 0, EMPTY_DATABASE
    else:
        base_lsn, database = checkpoint
    replayed = 0
    for lsn, payload in wal.records(after_lsn=base_lsn):
        command, txn = decode_record(payload)
        database = execute_command(command, database)
        if database.transaction_number != txn:
            raise DivergenceError(
                f"WAL replay diverged at LSN {lsn}: record committed "
                f"txn {txn} but replay reached "
                f"{database.transaction_number}; the log and checkpoint "
                "disagree"
            )
        replayed += 1
    seconds = time.perf_counter() - start
    observer = _hooks.wal_observer()
    if observer is not None:
        observer.recovered(replayed, seconds)
    return RecoveryResult(
        database, base_lsn, replayed, wal.last_lsn, seconds
    )
