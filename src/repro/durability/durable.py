"""`DurableDatabase` — the paper's command semantics behind a WAL.

The wrapper owns three things:

* the current semantic :class:`~repro.core.database.Database` value,
  always the result of replaying the logged command sequence from the
  empty database (Section 3.5's definition of a database);
* a :class:`~repro.durability.wal.WriteAheadLog` that every command is
  appended to *before* the in-memory value advances (write-ahead), plus
  periodic checkpoints and log compaction;
* optionally, a physical :class:`~repro.storage.versioned_db.VersionedDatabase`
  mirror over any :class:`~repro.storage.backend.StorageBackend`, kept
  in lock-step so reads can be served from a physical representation
  while durability stays at the command layer.

Opening a :class:`DurableDatabase` *is* recovery: the constructor
repairs the log, loads the newest valid checkpoint, replays the tail
through :func:`repro.core.commands.execute`, and (when a backend mirror
is attached) rebuilds the backend from the recovered value.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Union

from repro.errors import CheckpointError, StorageError
from repro.core.commands import Command, execute as execute_command
from repro.core.database import Database
from repro.core.expressions import Expression
from repro.core.relation import EMPTY_STATE
from repro.core.txn import TransactionNumber
from repro.durability.checkpoint import (
    drop_old_checkpoints,
    write_checkpoint,
)
from repro.durability.codec import encode_record
from repro.durability.files import DirectoryStore, FileStore
from repro.durability.recovery import RecoveryResult, recover
from repro.durability.wal import FsyncPolicy, WriteAheadLog
from repro.obsv import registry as _obsv

__all__ = ["DurableDatabase"]


class DurableDatabase:
    """A durable cursor over the command semantics.

    >>> ddb = DurableDatabase("/tmp/payroll")             # doctest: +SKIP
    >>> ddb.execute(parse_command("define_relation(r, rollback)"))
    ...                                                   # doctest: +SKIP

    ``store`` may be a directory path (a :class:`DirectoryStore` is
    created) or any :class:`FileStore` — the fault-injection suite
    passes a :class:`~repro.durability.faults.MemoryStore`.
    """

    def __init__(
        self,
        store: "Union[str, os.PathLike[str], FileStore]",
        *,
        fsync: "Union[str, FsyncPolicy]" = "batch(64, 100)",
        checkpoint_every: int = 256,
        keep_checkpoints: int = 2,
        segment_bytes: int = 1 << 20,
        backend=None,
    ) -> None:
        if not isinstance(store, FileStore):
            store = DirectoryStore(store)
        if checkpoint_every < 0:
            raise CheckpointError(
                f"checkpoint_every must be ≥ 0 (0 disables automatic "
                f"checkpoints), got {checkpoint_every}"
            )
        self._closed = False
        self._store = store
        self._wal = WriteAheadLog(
            store, policy=fsync, segment_bytes=segment_bytes
        )
        self._checkpoint_every = checkpoint_every
        self._keep_checkpoints = keep_checkpoints
        result = recover(store, wal=self._wal)
        if result.checkpoint_lsn > self._wal.last_lsn:
            # the checkpoint outlived the log (e.g. a lying fsync lost
            # every segment): jump the LSN space past the covered range
            # so new records stay visible to future recoveries
            self._wal.rebase(result.checkpoint_lsn)
        self._database = result.database
        self._last_recovery = result
        self._since_checkpoint = result.replayed
        self._versioned = None
        if backend is not None:
            from repro.storage.versioned_db import VersionedDatabase

            self._versioned = VersionedDatabase(backend)
            self._versioned.restore(self._database)

    # -- properties -------------------------------------------------------

    @property
    def database(self) -> Database:
        """The current semantic database value."""
        return self._database

    @property
    def transaction_number(self) -> TransactionNumber:
        return self._database.transaction_number

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def store(self) -> FileStore:
        return self._store

    @property
    def versioned(self):
        """The physical mirror (a ``VersionedDatabase``), or None."""
        return self._versioned

    @property
    def last_recovery(self) -> RecoveryResult:
        """What the opening recovery did (checkpoint LSN, replay length)."""
        return self._last_recovery

    # -- command execution ------------------------------------------------

    def execute(self, command: Command) -> Database:
        """Log, then apply, one command; returns the new database.

        The expression is evaluated *first* (commands whose expressions
        are invalid raise before anything reaches the log), the record
        is appended (and fsynced per policy), and only then does the
        in-memory value — the acknowledged state — advance.
        """
        if self._closed:
            raise StorageError(
                "cannot execute a command on a closed DurableDatabase"
            )
        new_database = execute_command(command, self._database)
        self._wal.append(
            encode_record(command, new_database.transaction_number)
        )
        self._database = new_database
        if self._versioned is not None:
            self._versioned.execute(command)
        if _obsv.enabled():
            _obsv.get().counter("wal.commands_executed").inc()
        self._since_checkpoint += 1
        if (
            self._checkpoint_every
            and self._since_checkpoint >= self._checkpoint_every
        ):
            self.checkpoint()
        return self._database

    def execute_all(self, commands: Iterable[Command]) -> Database:
        for command in commands:
            self.execute(command)
        return self._database

    # -- read path --------------------------------------------------------

    def evaluate(self, expression: Expression):
        """Evaluate a side-effect-free expression against the current
        database (served from the physical mirror when one is attached)."""
        if self._versioned is not None:
            return self._versioned.evaluate(expression)
        return expression.evaluate(self._database)

    def state_at(self, identifier: str, txn: TransactionNumber):
        """``FINDSTATE`` against the durable value; None when the
        identifier is unbound, ∅ when no state qualifies."""
        relation = self._database.lookup(identifier)
        if relation is None:
            return None
        state = relation.find_state(txn)
        return state if state is not EMPTY_STATE else EMPTY_STATE

    # -- durability control ----------------------------------------------

    def sync(self) -> None:
        """Force-fsync the log regardless of policy."""
        self._wal.sync()

    def checkpoint(self) -> None:
        """Sync the log, publish a checkpoint, drop superseded
        checkpoints, and compact fully-covered WAL segments."""
        self._wal.sync()
        write_checkpoint(self._store, self._database, self._wal.last_lsn)
        kept = drop_old_checkpoints(
            self._store, keep=self._keep_checkpoints
        )
        # compact only through the *oldest* retained checkpoint: if the
        # newest one is later found damaged, recovery falls back to an
        # older checkpoint and still finds every record it must replay
        self._wal.drop_segments_through(min(kept))
        self._since_checkpoint = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Sync and release file handles.  The database on disk is
        complete; a later :class:`DurableDatabase` over the same store
        recovers it exactly.

        Idempotent, and safe mid-batch: any records pending under a
        ``batch(N, ms)`` policy are fsynced exactly once by the first
        close; subsequent closes are no-ops (they must not touch the
        store again — the caller may have handed it to someone else,
        e.g. a replica re-opening it after a promote)."""
        if self._closed:
            return
        self._closed = True
        self._wal.sync()
        self._store.close()

    def kill(self) -> None:
        """Simulate abrupt process death for crash testing: no final
        sync, no checkpoint — cached store handles are dropped with
        their buffers discarded, leaving the backing exactly as a
        SIGKILL would.  The object is closed afterwards; recover with a
        fresh :class:`DurableDatabase` over the same store."""
        if self._closed:
            return
        self._closed = True
        self._store.crash()

    def __enter__(self) -> "DurableDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
