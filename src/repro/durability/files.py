"""The file layer the durability subsystem writes through.

Everything the WAL, the checkpointer and recovery touch on disk goes
through the small :class:`FileStore` interface — flat named files with
append, atomic replace and explicit fsync.  Two implementations ship:

* :class:`DirectoryStore` — real files in one directory, the production
  path.  ``replace`` is atomic-and-durable (write a temp file, fsync it,
  ``os.replace``, best-effort fsync of the directory), which is what
  checkpoint publication relies on.
* :class:`repro.durability.faults.MemoryStore` — a simulated disk that
  models the durable/volatile split explicitly and can inject crashes,
  torn writes and bit flips; the crash-recovery test suite runs on it.

Keeping the interface this narrow is deliberate: the durability
guarantees are arguments about *these five operations only*, and the
fault-injection store can cover them exhaustively.
"""

from __future__ import annotations

import os

from repro.errors import StorageError

__all__ = ["FileStore", "DirectoryStore"]


class FileStore:
    """A flat namespace of named byte files.

    Names are simple filenames (no path separators).  ``append`` and
    ``sync`` are the WAL write path; ``replace`` is the atomic-publish
    path used by checkpoints and torn-tail repair; ``read``/``list`` are
    the recovery read path.
    """

    def list(self) -> tuple[str, ...]:
        """All file names, sorted."""
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def read(self, name: str) -> bytes:
        """The file's full contents."""
        raise NotImplementedError

    def append(self, name: str, data: bytes) -> None:
        """Append ``data``, creating the file if missing.  The write is
        *not* durable until :meth:`sync`."""
        raise NotImplementedError

    def replace(self, name: str, data: bytes) -> None:
        """Atomically publish ``data`` as the file's new contents.
        After return the new contents are durable; a crash during the
        call leaves either the old or the new contents, never a mix."""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove the file (no error if already absent)."""
        raise NotImplementedError

    def sync(self, name: str) -> None:
        """Make all appended data of ``name`` durable (fsync)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any cached handles (optional)."""

    def crash(self) -> None:
        """Simulate abrupt process death for crash testing: drop any
        user-space buffers without flushing.  What a later store over
        the same backing sees is exactly what a SIGKILL would have
        left.  Default: nothing buffered, nothing to do."""

    @staticmethod
    def _check_name(name: str) -> str:
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise StorageError(f"invalid store file name {name!r}")
        return name


class DirectoryStore(FileStore):
    """Real files in a single directory.

    Append handles are cached per file so a hot WAL segment is opened
    once, not per record; ``replace`` and ``delete`` evict the cached
    handle first.
    """

    def __init__(self, directory: "str | os.PathLike[str]") -> None:
        self._dir = os.fspath(directory)
        os.makedirs(self._dir, exist_ok=True)
        self._handles: dict[str, "object"] = {}

    def _path(self, name: str) -> str:
        return os.path.join(self._dir, self._check_name(name))

    # -- reads -------------------------------------------------------------

    def list(self) -> tuple[str, ...]:
        return tuple(
            sorted(
                entry
                for entry in os.listdir(self._dir)
                if not entry.startswith(".")
                and not entry.endswith(".tmp")
            )
        )

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def read(self, name: str) -> bytes:
        handle = self._handles.get(name)
        if handle is not None:
            handle.flush()
        try:
            with open(self._path(name), "rb") as fp:
                return fp.read()
        except FileNotFoundError:
            raise StorageError(f"store has no file {name!r}") from None

    # -- writes ----------------------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        handle = self._handles.get(name)
        if handle is None:
            handle = open(self._path(name), "ab")
            self._handles[name] = handle
        handle.write(data)

    def replace(self, name: str, data: bytes) -> None:
        self._evict(name)
        path = self._path(name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fp:
            fp.write(data)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)
        self._sync_dir()

    def delete(self, name: str) -> None:
        self._evict(name)
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def sync(self, name: str) -> None:
        handle = self._handles.get(name)
        if handle is not None:
            handle.flush()
            os.fsync(handle.fileno())
            return
        # nothing buffered by us; fsync the on-disk file if it exists
        try:
            fd = os.open(self._path(name), os.O_RDONLY)
        except FileNotFoundError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def close(self) -> None:
        for name in list(self._handles):
            self._evict(name)

    def crash(self) -> None:
        # redirect each cached handle at the null device before closing
        # so its buffered tail flushes into the void instead of the
        # file — a dead process cannot write after its last syscall
        devnull = os.open(os.devnull, os.O_WRONLY)
        try:
            for name in list(self._handles):
                handle = self._handles.pop(name)
                os.dup2(devnull, handle.fileno())
                handle.close()
        finally:
            os.close(devnull)

    # -- internal ---------------------------------------------------------

    def _evict(self, name: str) -> None:
        handle = self._handles.pop(name, None)
        if handle is not None:
            handle.flush()
            handle.close()

    def _sync_dir(self) -> None:
        try:
            fd = os.open(self._dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)
