"""Canonical serialization of commands — what the WAL actually stores.

The paper defines a database as the cumulative result of a *sentence*: a
sequence of commands replayed from the empty database (Section 3.5).  The
log therefore stores **commands, not states**; recovery re-runs them
through the one semantic function :func:`repro.core.commands.execute`, so
there is no second, parallel interpretation of what a command means.

A command is encoded as a small JSON object.  ``modify_state``
expressions ride as concrete syntax, produced by
:func:`repro.lang.ast_printer.format_expression` and decoded by
:func:`repro.lang.parser.parse_expression` — the pair whose round-trip
the language test suite already guarantees — so the WAL format inherits
the grammar's stability instead of inventing a new AST encoding:

    {"op": "define", "id": "r", "rtype": "rollback", "strict": false}
    {"op": "modify", "id": "r", "expr": "(rollback(r, now) union ...)",
     "strict": false, "memoize": false}
    {"op": "seq", "commands": [ ... ]}

A full WAL record adds the transaction number the command *committed*
(`txn`), which recovery uses as a divergence check: after replaying a
record, the database's transaction number must equal the recorded one.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import StorageError
from repro.core.commands import (
    Command,
    DefineRelation,
    ModifyState,
    Sequence,
)
from repro.core.txn import TransactionNumber

__all__ = [
    "command_to_dict",
    "command_from_dict",
    "encode_command",
    "decode_command",
    "encode_record",
    "decode_record",
]


def command_to_dict(command: Command) -> dict[str, Any]:
    """A command AST as a JSON-ready dictionary."""
    if isinstance(command, DefineRelation):
        return {
            "op": "define",
            "id": command.identifier,
            "rtype": command.rtype.value,
            "strict": command.strict,
        }
    if isinstance(command, ModifyState):
        from repro.lang.ast_printer import format_expression

        return {
            "op": "modify",
            "id": command.identifier,
            "expr": format_expression(command.expression),
            "strict": command.strict,
            "memoize": command.memoize,
        }
    if isinstance(command, Sequence):
        commands: list[dict[str, Any]] = []
        stack = [command]
        # flatten the Sequence tree left-to-right; sequencing is
        # associative so the flat order is the execution order
        while stack:
            node = stack.pop()
            if isinstance(node, Sequence):
                stack.append(node.second)
                stack.append(node.first)
            else:
                commands.append(command_to_dict(node))
        return {"op": "seq", "commands": commands}
    raise StorageError(
        f"cannot serialize command {command!r} for the WAL"
    )


def command_from_dict(payload: dict[str, Any]) -> Command:
    """Rebuild a command from :func:`command_to_dict` output."""
    if not isinstance(payload, dict):
        raise StorageError(
            f"malformed command payload: expected an object, got "
            f"{type(payload).__name__}"
        )
    op = payload.get("op")
    try:
        if op == "define":
            return DefineRelation(
                payload["id"],
                payload["rtype"],
                strict=bool(payload.get("strict", False)),
            )
        if op == "modify":
            from repro.lang.parser import parse_expression

            return ModifyState(
                payload["id"],
                parse_expression(payload["expr"]),
                strict=bool(payload.get("strict", False)),
                memoize=bool(payload.get("memoize", False)),
            )
        if op == "seq":
            from repro.core.commands import sequence

            return sequence(
                command_from_dict(entry)
                for entry in payload["commands"]
            )
    except StorageError:
        raise
    except Exception as error:
        raise StorageError(
            f"malformed {op!r} command payload: {error}"
        ) from error
    raise StorageError(f"unknown command op {op!r}")


def encode_command(command: Command) -> bytes:
    """Canonical bytes for one command (compact, key-sorted JSON)."""
    return json.dumps(
        command_to_dict(command),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
    ).encode("utf-8")


def decode_command(data: bytes) -> Command:
    return command_from_dict(_load_json(data))


# -- WAL records ------------------------------------------------------------


def encode_record(
    command: Command, txn: TransactionNumber
) -> bytes:
    """One WAL record: the command plus the transaction number it
    committed (the divergence check replayed by recovery)."""
    return json.dumps(
        {"txn": txn, "cmd": command_to_dict(command)},
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
    ).encode("utf-8")


def decode_record(data: bytes) -> tuple[Command, TransactionNumber]:
    payload = _load_json(data)
    if "cmd" not in payload or "txn" not in payload:
        raise StorageError(
            "malformed WAL record: missing 'cmd' or 'txn'"
        )
    txn = payload["txn"]
    if not isinstance(txn, int) or txn < 0:
        raise StorageError(
            f"malformed WAL record: bad transaction number {txn!r}"
        )
    return command_from_dict(payload["cmd"]), txn


def _load_json(data: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise StorageError(
            f"malformed WAL payload: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise StorageError(
            "malformed WAL payload: expected a JSON object"
        )
    return payload
