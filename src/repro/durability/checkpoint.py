"""Checkpoints: periodic full-database snapshots that bound replay.

A checkpoint file ``checkpoint-<lsn>.json`` publishes the semantic
DATABASE value (via :mod:`repro.persistence.json_codec`) as it stood
after applying the WAL record with that LSN.  Recovery loads the newest
*valid* checkpoint and replays only the WAL tail past it; compaction
then drops fully-covered segments.

Checkpoints are written with :meth:`FileStore.replace` — atomic and
durable regardless of the WAL's fsync policy — and carry a CRC over the
embedded database dump, so a checkpoint damaged by media corruption is
*detected and skipped* (recovery falls back to the previous one, which
is why the durable layer retains more than one).
"""

from __future__ import annotations

import json
import zlib
from typing import Optional

from repro.errors import CheckpointError, StorageError
from repro.core.database import Database
from repro.durability.files import FileStore
from repro.obsv import hooks as _hooks
from repro.persistence.json_codec import (
    database_from_dict,
    database_to_dict,
)

__all__ = [
    "CHECKPOINT_PREFIX",
    "CHECKPOINT_SUFFIX",
    "checkpoint_name",
    "checkpoint_lsn",
    "list_checkpoints",
    "write_checkpoint",
    "read_checkpoint",
    "latest_checkpoint",
    "drop_old_checkpoints",
]

CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".json"
CHECKPOINT_FORMAT = "repro-wal-checkpoint"
CHECKPOINT_VERSION = 1


def checkpoint_name(lsn: int) -> str:
    return f"{CHECKPOINT_PREFIX}{lsn:012d}{CHECKPOINT_SUFFIX}"


def checkpoint_lsn(name: str) -> int:
    return int(name[len(CHECKPOINT_PREFIX):-len(CHECKPOINT_SUFFIX)])


def _is_checkpoint(name: str) -> bool:
    return (
        name.startswith(CHECKPOINT_PREFIX)
        and name.endswith(CHECKPOINT_SUFFIX)
        and name[len(CHECKPOINT_PREFIX):-len(CHECKPOINT_SUFFIX)].isdigit()
    )


def list_checkpoints(store: FileStore) -> tuple[str, ...]:
    """Checkpoint file names, oldest first."""
    return tuple(
        sorted(
            (n for n in store.list() if _is_checkpoint(n)),
            key=checkpoint_lsn,
        )
    )


def write_checkpoint(
    store: FileStore, database: Database, lsn: int
) -> str:
    """Atomically publish ``database`` as the checkpoint covering every
    WAL record with LSN ≤ ``lsn``.  Returns the file name."""
    inner = json.dumps(
        database_to_dict(database),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
    )
    envelope = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "lsn": lsn,
        "crc": zlib.crc32(inner.encode("utf-8")) & 0xFFFFFFFF,
        "database": inner,
    }
    name = checkpoint_name(lsn)
    store.replace(name, json.dumps(envelope).encode("utf-8"))
    observer = _hooks.wal_observer()
    if observer is not None:
        observer.checkpointed()
    return name


def read_checkpoint(
    store: FileStore, name: str
) -> tuple[int, Database]:
    """Load and validate one checkpoint; raises :class:`CheckpointError`
    on any damage (bad JSON, wrong format, CRC mismatch)."""
    try:
        envelope = json.loads(store.read(name).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise CheckpointError(
            f"checkpoint {name!r} is unreadable: {error}"
        ) from error
    if (
        not isinstance(envelope, dict)
        or envelope.get("format") != CHECKPOINT_FORMAT
    ):
        raise CheckpointError(f"{name!r} is not a repro checkpoint")
    if envelope.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {name!r} has unsupported version "
            f"{envelope.get('version')!r}"
        )
    inner = envelope.get("database")
    if not isinstance(inner, str):
        raise CheckpointError(f"checkpoint {name!r} has no database body")
    if zlib.crc32(inner.encode("utf-8")) & 0xFFFFFFFF != envelope.get(
        "crc"
    ):
        raise CheckpointError(
            f"checkpoint {name!r} failed its CRC check"
        )
    lsn = envelope.get("lsn")
    if not isinstance(lsn, int) or lsn < 0:
        raise CheckpointError(
            f"checkpoint {name!r} has a bad LSN {lsn!r}"
        )
    return lsn, database_from_dict(json.loads(inner))


def latest_checkpoint(
    store: FileStore,
) -> Optional[tuple[int, Database]]:
    """The newest checkpoint that validates, or None.  Invalid
    checkpoints are skipped (and counted), not fatal."""
    for name in reversed(list_checkpoints(store)):
        try:
            return read_checkpoint(store, name)
        except StorageError:
            observer = _hooks.wal_observer()
            if observer is not None:
                observer.invalid_checkpoint()
    return None


def drop_old_checkpoints(
    store: FileStore, keep: int = 2
) -> tuple[int, ...]:
    """Delete all but the newest ``keep`` checkpoints; returns the LSNs
    of the retained ones (oldest first)."""
    if keep < 1:
        raise CheckpointError(f"must keep at least one checkpoint, got {keep}")
    names = list_checkpoints(store)
    for name in names[:-keep] if len(names) > keep else ():
        store.delete(name)
    return tuple(checkpoint_lsn(n) for n in names[-keep:])
