"""Durability: write-ahead command log, checkpoints and crash recovery.

The paper defines a database as the cumulative result of a *sentence* —
a sequence of commands replayed from the empty database (Section 3.5) —
so the durable representation of a database is exactly its committed
command log.  This package makes that literal:

* :mod:`repro.durability.codec` — canonical serialization of commands
  (`define_relation` / `modify_state` with full expression trees, via
  the language printer/parser);
* :mod:`repro.durability.wal` — a segmented append-only log with
  CRC-framed records, configurable fsync policy (``always`` /
  ``batch(N, ms)`` / ``never``) and segment rotation;
* :mod:`repro.durability.checkpoint` — periodic full-database snapshots
  through :mod:`repro.persistence.json_codec`, CRC-validated;
* :mod:`repro.durability.recovery` — load the newest valid checkpoint,
  replay the tail through :func:`repro.core.commands.execute`;
* :mod:`repro.durability.files` / :mod:`repro.durability.faults` — the
  narrow file layer plus a fault-injecting simulated disk (crashes,
  torn writes, bit flips, lying fsyncs) for the crash-recovery suite;
* :mod:`repro.durability.durable` — :class:`DurableDatabase`, the
  user-facing wrapper (also reachable as ``Session(durable_dir=...)``).
"""

from repro.durability.codec import (
    command_from_dict,
    command_to_dict,
    decode_command,
    decode_record,
    encode_command,
    encode_record,
)
from repro.durability.checkpoint import (
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    write_checkpoint,
)
from repro.durability.durable import DurableDatabase
from repro.durability.faults import CrashPoint, FaultPlan, MemoryStore
from repro.durability.files import DirectoryStore, FileStore
from repro.durability.recovery import RecoveryResult, recover
from repro.durability.wal import FsyncPolicy, WriteAheadLog

__all__ = [
    "CrashPoint",
    "DirectoryStore",
    "DurableDatabase",
    "FaultPlan",
    "FileStore",
    "FsyncPolicy",
    "MemoryStore",
    "RecoveryResult",
    "WriteAheadLog",
    "command_from_dict",
    "command_to_dict",
    "decode_command",
    "decode_record",
    "encode_command",
    "encode_record",
    "latest_checkpoint",
    "list_checkpoints",
    "read_checkpoint",
    "recover",
    "write_checkpoint",
]
