"""A segmented, CRC-framed, append-only write-ahead command log.

Physical format — each segment file is a flat run of records::

    ┌──────────────┬──────────────┬─────────────────────┐
    │ length (u32) │ crc32 (u32)  │ payload (length B)  │  × N records
    └──────────────┴──────────────┴─────────────────────┘

little-endian, CRC over the payload bytes.  Segments are named
``wal-<first-lsn>.seg`` (LSNs are 1-based record ordinals), so the
directory listing alone orders the log, and compaction can drop whole
segment files once a checkpoint covers them.

Opening the log *repairs* it to an appendable state: a torn final record
(short header, short payload, or CRC mismatch) is physically truncated
away, and — in the rarer mid-log corruption case — every record after
the first invalid byte is dropped, because command replay cannot skip a
record and stay deterministic.  The repaired log is always a *prefix* of
what was written: recovery may lose an un-synced suffix, never serve a
corrupted record.

Durability is governed by an :class:`FsyncPolicy`:

* ``always`` — fsync after every append; nothing acknowledged is ever
  lost;
* ``batch(N, ms)`` — fsync when ``N`` records are pending or ``ms``
  milliseconds have passed since the last sync, bounding loss to the
  batch;
* ``never`` — rely on the OS (and on checkpoints, which always sync);
  fastest, loses the longest suffix.
"""

from __future__ import annotations

import struct
import time
import zlib
from typing import Iterator, Optional, Union

from repro.errors import StreamGapError, WalError
from repro.durability.files import FileStore
from repro.obsv import hooks as _hooks
from repro.obsv import registry as _obsv

__all__ = ["FsyncPolicy", "WriteAheadLog", "SEGMENT_PREFIX", "SEGMENT_SUFFIX"]

_HEADER = struct.Struct("<II")

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".seg"


def _segment_name(first_lsn: int) -> str:
    return f"{SEGMENT_PREFIX}{first_lsn:012d}{SEGMENT_SUFFIX}"


def _segment_first_lsn(name: str) -> int:
    return int(name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])


def _is_segment(name: str) -> bool:
    return (
        name.startswith(SEGMENT_PREFIX)
        and name.endswith(SEGMENT_SUFFIX)
        and name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)].isdigit()
    )


class FsyncPolicy:
    """When the log fsyncs: ``always``, ``never`` or ``batch(N, ms)``."""

    __slots__ = ("mode", "batch_records", "batch_ms")

    def __init__(
        self, mode: str, batch_records: int = 0, batch_ms: float = 0.0
    ) -> None:
        if mode not in ("always", "never", "batch"):
            raise WalError(f"unknown fsync mode {mode!r}")
        if mode == "batch" and (batch_records < 1 or batch_ms < 0):
            raise WalError(
                f"batch fsync needs N ≥ 1 and ms ≥ 0, got "
                f"batch({batch_records}, {batch_ms})"
            )
        self.mode = mode
        self.batch_records = batch_records
        self.batch_ms = batch_ms

    @classmethod
    def parse(cls, spec: "Union[str, FsyncPolicy]") -> "FsyncPolicy":
        """``"always"``, ``"never"`` or ``"batch(N, ms)"``."""
        if isinstance(spec, cls):
            return spec
        text = str(spec).strip().lower()
        if text == "always":
            return cls("always")
        if text == "never":
            return cls("never")
        if text.startswith("batch(") and text.endswith(")"):
            inner = text[len("batch("):-1]
            parts = [p.strip() for p in inner.split(",")]
            if len(parts) == 2:
                try:
                    return cls("batch", int(parts[0]), float(parts[1]))
                except ValueError:
                    pass
        raise WalError(
            f"cannot parse fsync policy {spec!r}; expected 'always', "
            "'never' or 'batch(N, ms)'"
        )

    def should_sync(self, pending: int, elapsed_s: float) -> bool:
        if self.mode == "always":
            return True
        if self.mode == "never":
            return False
        return (
            pending >= self.batch_records
            or elapsed_s * 1000.0 >= self.batch_ms
        )

    def __repr__(self) -> str:
        if self.mode == "batch":
            return f"batch({self.batch_records}, {self.batch_ms:g})"
        return self.mode


def _scan_segment(data: bytes) -> tuple[list[bytes], int]:
    """All valid record payloads in ``data`` plus the length of the
    valid prefix.  Stops at the first short or CRC-failing record."""
    payloads: list[bytes] = []
    pos = 0
    size = len(data)
    while pos + _HEADER.size <= size:
        length, crc = _HEADER.unpack_from(data, pos)
        end = pos + _HEADER.size + length
        if end > size:
            break  # torn: payload truncated
        payload = data[pos + _HEADER.size:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break  # torn or corrupted record
        payloads.append(payload)
        pos = end
    return payloads, pos


class _Segment:
    __slots__ = ("name", "first_lsn", "records", "size")

    def __init__(
        self, name: str, first_lsn: int, records: int, size: int
    ) -> None:
        self.name = name
        self.first_lsn = first_lsn
        self.records = records
        self.size = size

    @property
    def last_lsn(self) -> int:
        return self.first_lsn + self.records - 1


class WriteAheadLog:
    """The append-only command log over a :class:`FileStore`.

    Construction scans and repairs the log (see module docstring), so a
    live :class:`WriteAheadLog` is always appendable and its records are
    exactly the durable, valid prefix of what was ever written.
    """

    def __init__(
        self,
        store: FileStore,
        policy: "Union[str, FsyncPolicy]" = "batch(64, 100)",
        segment_bytes: int = 1 << 20,
    ) -> None:
        if segment_bytes < _HEADER.size + 1:
            raise WalError(
                f"segment_bytes must allow at least one record, got "
                f"{segment_bytes}"
            )
        self._store = store
        self.policy = FsyncPolicy.parse(policy)
        self._segment_bytes = segment_bytes
        self._segments: list[_Segment] = []
        self._pending = 0  # records appended but not yet fsynced
        self._last_sync = time.monotonic()
        self.torn_records_dropped = 0
        self._open_scan()

    # -- opening / repair -------------------------------------------------

    def _open_scan(self) -> None:
        names = [n for n in self._store.list() if _is_segment(n)]
        names.sort(key=_segment_first_lsn)
        expected: Optional[int] = None
        broken = False
        for name in names:
            first_lsn = _segment_first_lsn(name)
            if broken or (expected is not None and first_lsn != expected):
                # a gap or earlier corruption: records past this point
                # cannot be replayed deterministically — drop them
                self._store.delete(name)
                self._note_torn(1)
                broken = True
                continue
            data = self._store.read(name)
            payloads, valid = _scan_segment(data)
            if valid < len(data):
                # torn tail (or mid-segment corruption): truncate to the
                # valid prefix and drop everything after
                self._store.replace(name, data[:valid])
                self._note_torn(1)
                self.torn_records_dropped += 1
                broken = True
            if not payloads and valid == 0 and broken:
                # fully-torn segment: nothing valid left, remove it
                self._store.delete(name)
                continue
            self._segments.append(
                _Segment(name, first_lsn, len(payloads), valid)
            )
            expected = first_lsn + len(payloads)

    # -- properties -------------------------------------------------------

    @property
    def store(self) -> FileStore:
        return self._store

    @property
    def first_lsn(self) -> int:
        """The LSN of the oldest retained record (0 when empty)."""
        for segment in self._segments:
            if segment.records:
                return segment.first_lsn
        return 0

    @property
    def last_lsn(self) -> int:
        """The LSN of the newest record (0 when the log is empty)."""
        if not self._segments:
            return 0
        return self._segments[-1].last_lsn

    def segment_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self._segments)

    # -- append path ------------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Append one record; returns its LSN.  May fsync, per policy."""
        if not payload:
            raise WalError("cannot append an empty WAL record")
        lsn = self.last_lsn + 1 if self._segments else self._next_lsn()
        frame = (
            _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
            + payload
        )
        segment = self._current_segment(len(frame), lsn)
        self._store.append(segment.name, frame)
        segment.records += 1
        segment.size += len(frame)
        self._pending += 1
        observer = _hooks.wal_observer()
        if observer is not None:
            observer.appended(len(frame))
        if self.policy.should_sync(
            self._pending, time.monotonic() - self._last_sync
        ):
            self.sync()
        return lsn

    def sync(self) -> None:
        """Force-fsync the current segment (no-op when nothing pending)."""
        if self._pending == 0:
            return
        self._store.sync(self._segments[-1].name)
        self._pending = 0
        self._last_sync = time.monotonic()
        observer = _hooks.wal_observer()
        if observer is not None:
            observer.fsynced()

    def _next_lsn(self) -> int:
        return 1

    def _current_segment(self, frame_size: int, lsn: int) -> _Segment:
        if (
            not self._segments
            or self._segments[-1].size + frame_size > self._segment_bytes
            and self._segments[-1].records > 0
        ):
            # rotate: sync the outgoing segment so a rotation is also a
            # durability point, then start a fresh file
            if self._segments:
                self.sync()
                observer = _hooks.wal_observer()
                if observer is not None:
                    observer.rotated()
            segment = _Segment(_segment_name(lsn), lsn, 0, 0)
            self._store.append(segment.name, b"")
            self._segments.append(segment)
        return self._segments[-1]

    # -- read path --------------------------------------------------------

    def records(self, after_lsn: int = 0) -> Iterator[tuple[int, bytes]]:
        """Yield ``(lsn, payload)`` for every record with LSN >
        ``after_lsn``, in order."""
        for segment in self._segments:
            if segment.records == 0 or segment.last_lsn <= after_lsn:
                continue
            payloads, _ = _scan_segment(self._store.read(segment.name))
            if len(payloads) < segment.records:
                # the segment lost records *after* the open-time repair
                # (media corruption under a live log); serving a shorter
                # run would silently skip LSNs
                raise WalError(
                    f"segment {segment.name!r} holds "
                    f"{len(payloads)} valid records but "
                    f"{segment.records} were appended; the log is "
                    "damaged beneath a live handle"
                )
            for index, payload in enumerate(payloads):
                lsn = segment.first_lsn + index
                if lsn > after_lsn:
                    yield lsn, payload

    # -- tailing (the replication shipping surface) -----------------------

    def read_from(
        self, lsn: int, limit: Optional[int] = None
    ) -> list[tuple[int, bytes]]:
        """Up to ``limit`` ``(lsn, payload)`` pairs starting at ``lsn``.

        The shipping API replicas poll: records come back CRC-verified
        and contiguous.  Asking for an LSN the log has already compacted
        or rebased away raises :class:`StreamGapError` with
        ``compacted=True`` — the authoritative "fetch a snapshot
        instead" signal.  Asking past the end returns ``[]`` (nothing
        new yet).
        """
        if lsn < 1:
            raise WalError(f"read_from needs an LSN ≥ 1, got {lsn}")
        first = self.first_lsn
        if lsn <= self.last_lsn and (first == 0 or lsn < first):
            raise StreamGapError(
                f"records from LSN {lsn} have been compacted away; "
                f"the oldest retained record is "
                f"{first if first else 'none'}",
                expected=lsn,
                got=first,
                compacted=True,
            )
        batch: list[tuple[int, bytes]] = []
        for record_lsn, payload in self.records(after_lsn=lsn - 1):
            batch.append((record_lsn, payload))
            if limit is not None and len(batch) >= limit:
                break
        return batch

    # -- re-anchoring -----------------------------------------------------

    def rebase(self, lsn: int) -> None:
        """Re-anchor the log so the next append gets LSN ``lsn + 1``.

        Used when recovery finds a checkpoint *newer* than the surviving
        log (the log's tail was lost, e.g. to a lying fsync): the
        checkpoint already covers every record ≤ ``lsn``, so any stale
        retained records are dropped and the LSN space jumps past the
        lost range.  Without this, fresh appends would re-use lost LSNs
        and a later recovery — replaying only records past the
        checkpoint — would silently skip them.
        """
        if lsn < self.last_lsn:
            raise WalError(
                f"cannot rebase to LSN {lsn}: the log already holds "
                f"records through {self.last_lsn}"
            )
        if lsn == self.last_lsn and self._segments:
            return  # already aligned
        for segment in self._segments:
            self._store.delete(segment.name)
        segment = _Segment(_segment_name(lsn + 1), lsn + 1, 0, 0)
        self._store.append(segment.name, b"")
        self._segments = [segment]
        self._pending = 0

    # -- compaction -------------------------------------------------------

    def drop_segments_through(self, lsn: int) -> int:
        """Delete segments whose records are *all* ≤ ``lsn`` (i.e. fully
        covered by a checkpoint).  Returns the number dropped."""
        dropped = 0
        while len(self._segments) > 1 and self._segments[0].last_lsn <= lsn:
            segment = self._segments.pop(0)
            self._store.delete(segment.name)
            dropped += 1
        observer = _hooks.wal_observer()
        if observer is not None and dropped:
            observer.compacted(dropped)
        if _obsv.enabled():
            _obsv.get().gauge("wal.segments").set(len(self._segments))
        return dropped

    # -- internal ---------------------------------------------------------

    @staticmethod
    def _note_torn(count: int) -> None:
        observer = _hooks.wal_observer()
        if observer is not None:
            observer.torn(count)
