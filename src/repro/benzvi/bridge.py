"""Building a TRM relation and a temporal relation from one history.

To compare Ben-Zvi's model with the paper's, both need to store the *same*
history.  A :class:`TemporalOperation` stream is the common input: each
operation (insert / delete / modify-effective of one fact) is applied to a
:class:`TRMRelation` natively and to a temporal relation through a
``modify_state`` command whose expression rebuilds the new historical
state.  :func:`apply_operations` performs both and returns the pair;
experiment E9 then probes ``time_view`` against
``δ(ρ̂(...))`` + timeslice across the whole (valid time × transaction
time) grid.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.errors import StorageError
from repro.core.commands import DefineRelation, ModifyState
from repro.core.database import Database
from repro.core.expressions import Const
from repro.core.relation import RelationType
from repro.core.sentences import run
from repro.historical.intervals import Interval
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.historical.tuples import HistoricalTuple
from repro.benzvi.relation import TRMRelation
from repro.snapshot.schema import Schema
from repro.snapshot.tuples import SnapshotTuple

__all__ = ["OperationKind", "TemporalOperation", "apply_operations"]


class OperationKind(enum.Enum):
    """The update operations shared by both models."""

    INSERT = "insert"
    DELETE = "delete"
    MODIFY = "modify"


class TemporalOperation:
    """One update to one fact.

    * INSERT — start believing ``values`` hold during ``effective``;
    * DELETE — stop believing anything about ``values``;
    * MODIFY — change the believed effective interval of ``values``.
    """

    __slots__ = ("kind", "values", "effective")

    def __init__(
        self,
        kind: OperationKind,
        values: Sequence,
        effective: Optional[Interval] = None,
    ) -> None:
        if kind is not OperationKind.DELETE and effective is None:
            raise StorageError(f"{kind.value} requires an effective interval")
        self.kind = kind
        self.values = tuple(values)
        self.effective = effective

    def __repr__(self) -> str:
        return (
            f"TemporalOperation({self.kind.value}, {self.values!r}, "
            f"{self.effective!r})"
        )


def apply_operations(
    schema: Schema,
    operations: Sequence[TemporalOperation],
    identifier: str = "r",
) -> tuple[TRMRelation, Database]:
    """Apply the operation stream to both models.

    Returns ``(trm_relation, database)`` where the database contains a
    temporal relation named ``identifier`` whose state sequence records
    the same history.  Transaction numbers align: operation ``i`` commits
    at transaction ``i + 2`` in both models (transaction 1 is
    ``define_relation``).
    """
    trm = TRMRelation(schema)
    commands = [DefineRelation(identifier, RelationType.TEMPORAL)]

    # The temporal relation's historical state after each operation,
    # maintained as {value tuple -> period set}.
    belief: dict[SnapshotTuple, PeriodSet] = {}

    txn = 1  # define_relation commits at txn 1
    for operation in operations:
        txn += 1
        value = SnapshotTuple(schema, list(operation.values))
        if operation.kind is OperationKind.INSERT:
            assert operation.effective is not None
            trm.insert(list(operation.values), operation.effective, txn)
            existing = belief.get(value, PeriodSet.empty())
            belief[value] = existing.union(
                PeriodSet([operation.effective])
            )
        elif operation.kind is OperationKind.DELETE:
            trm.logical_delete(list(operation.values), txn)
            belief.pop(value, None)
        else:
            assert operation.effective is not None
            trm.modify_effective(
                list(operation.values), operation.effective, txn
            )
            belief[value] = PeriodSet([operation.effective])
        new_state = HistoricalState(
            schema,
            [
                HistoricalTuple(v, periods)
                for v, periods in belief.items()
                if not periods.is_empty()
            ],
        )
        commands.append(ModifyState(identifier, Const(new_state)))

    return trm, run(commands)
