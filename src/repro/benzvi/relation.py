"""Tuple-versioned relations with implicit time attributes.

A :class:`TupleVersion` carries Ben-Zvi's implicit attributes in simplified
form:

* ``value`` — the explicit attribute values;
* ``effective`` — the valid-time interval during which the fact holds in
  modeled reality (Ben-Zvi's effective-time start/end);
* ``registered`` — the transaction number at which this version was stored
  (registration start);
* ``superseded`` — the transaction number at which this version stopped
  being part of the current belief (registration end), or None while
  current.

A :class:`TRMRelation` is append-only: updates never destroy versions, they
only close registration intervals — which is what makes rollback possible
in this model.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.errors import StorageError
from repro.historical.intervals import Interval
from repro.snapshot.schema import Schema
from repro.snapshot.tuples import SnapshotTuple

__all__ = ["TupleVersion", "TRMRelation"]


class TupleVersion:
    """One version of one tuple, with implicit time attributes."""

    __slots__ = ("value", "effective", "registered", "superseded")

    def __init__(
        self,
        value: SnapshotTuple,
        effective: Interval,
        registered: int,
        superseded: Optional[int] = None,
    ) -> None:
        self.value = value
        self.effective = effective
        self.registered = registered
        self.superseded = superseded

    @property
    def is_current(self) -> bool:
        """True while this version belongs to the current belief."""
        return self.superseded is None

    def registered_at(self, txn: int) -> bool:
        """True iff this version was part of the belief as of ``txn``."""
        return self.registered <= txn and (
            self.superseded is None or txn < self.superseded
        )

    def __repr__(self) -> str:
        end = "∞" if self.superseded is None else str(self.superseded)
        return (
            f"TupleVersion({self.value!r}, eff={self.effective!r}, "
            f"reg=[{self.registered}, {end}))"
        )


class TRMRelation:
    """An append-only time-relational store.

    Update operations take the commit transaction number explicitly; the
    caller (tests, benchmarks, the bridge) supplies monotonically
    increasing numbers, mirroring the command semantics.
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._versions: list[TupleVersion] = []

    @property
    def schema(self) -> Schema:
        """The schema of every version's explicit value part."""
        return self._schema

    @property
    def versions(self) -> tuple[TupleVersion, ...]:
        """Every stored version, in registration order."""
        return tuple(self._versions)

    def __len__(self) -> int:
        return len(self._versions)

    def __iter__(self) -> Iterator[TupleVersion]:
        return iter(self._versions)

    # -- update operations ----------------------------------------------------

    def insert(
        self, values: Sequence, effective: Interval, txn: int
    ) -> TupleVersion:
        """Register a new tuple version at transaction ``txn``."""
        value = SnapshotTuple(self._schema, values)
        version = TupleVersion(value, effective, txn)
        self._versions.append(version)
        return version

    def logical_delete(self, values: Sequence, txn: int) -> int:
        """Close the registration of every current version with the given
        explicit values; returns the number of versions closed."""
        value = SnapshotTuple(self._schema, values)
        closed = 0
        for version in self._versions:
            if version.is_current and version.value == value:
                version.superseded = txn
                closed += 1
        if closed == 0:
            raise StorageError(
                f"logical_delete: no current version with values "
                f"{tuple(values)!r}"
            )
        return closed

    def modify_effective(
        self, values: Sequence, new_effective: Interval, txn: int
    ) -> TupleVersion:
        """Supersede the current version(s) of a tuple with a new version
        carrying a different effective interval (Ben-Zvi's 'terminate'
        style command generalized)."""
        self.logical_delete(values, txn)
        return self.insert(values, new_effective, txn)

    # -- accounting ------------------------------------------------------------

    def stored_versions(self) -> int:
        """Number of physical version records."""
        return len(self._versions)

    def current_versions(self) -> list[TupleVersion]:
        """The versions in the current belief."""
        return [v for v in self._versions if v.is_current]
