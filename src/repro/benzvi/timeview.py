"""The Time-View operator and its algebraic counterpart.

``time_view(R, tv, tt)`` "produces the subset of tuples in the relation
valid at the first time (the valid time) as of the second time (the
transaction time)" — a snapshot state.

The paper's point (Section 5, claim C7 in DESIGN.md): Time-View "rolls back
a relation to a transaction time but returns only a subset of the tuples in
the relation at that transaction time", i.e. it is the *composition* of the
general rollback operator with a valid-time selection.
:func:`time_view_expression` phrases exactly that composition in our
language: ``δ_{valid-at tv}(ρ̂(I, tt))`` — whose timeslice at ``tv`` equals
Time-View's result.  Experiment E9 verifies the equality on shared
histories.
"""

from __future__ import annotations

from repro.core.expressions import Derive, Expression, Rollback
from repro.core.txn import Numeral
from repro.historical.predicates import ValidAt
from repro.historical.temporal_exprs import ValidTime
from repro.benzvi.relation import TRMRelation
from repro.snapshot.state import SnapshotState

__all__ = ["time_view", "time_view_expression"]


def time_view(
    relation: TRMRelation, valid_time: int, txn_time: int
) -> SnapshotState:
    """Ben-Zvi's Time-View: the tuples valid at ``valid_time`` as of
    transaction ``txn_time``, as a snapshot state."""
    rows = frozenset(
        version.value
        for version in relation.versions
        if version.registered_at(txn_time)
        and version.effective.covers(valid_time)
    )
    return SnapshotState.from_tuples(relation.schema, rows)


def time_view_expression(
    identifier: str, valid_time: int, txn_time: Numeral
) -> Expression:
    """The same query in the paper's language: roll the temporal relation
    back to ``txn_time`` with ``ρ̂``, then keep the tuples valid at
    ``valid_time`` with ``δ``.

    The expression denotes an *historical* state (tuples with their full
    valid times); applying
    :meth:`~repro.historical.state.HistoricalState.snapshot_at` at
    ``valid_time`` yields exactly ``time_view``'s snapshot — that final
    timeslice is the "restriction" the paper says is baked into Ben-Zvi's
    operator but kept separate in ours.
    """
    return Derive(
        Rollback(identifier, txn_time),
        predicate=ValidAt(ValidTime(), valid_time),
    )
