"""Ben-Zvi's Time Relational Model — the comparison baseline.

The paper's Section 5: "There has been one other attempt to incorporate
both valid time and transaction time in an algebra [Ben-Zvi 1982].  Valid
time and transaction time were supported through the addition of implicit
time attributes to each tuple ...  The algebra was extended with the
*Time-View* algebraic operator which takes a relation and two times as
arguments and produces the subset of tuples in the relation valid at the
first time (the valid time) as of the second time (the transaction time)."

This package re-implements that design from the paper's description:

* :class:`TRMRelation` — an append-only store of tuple *versions*, each
  carrying implicit attributes (effective/valid interval, registration
  start transaction, registration end transaction);
* :func:`time_view` — the Time-View operator;
* :func:`time_view_expression` — the *same query* phrased in the paper's
  language (``δ`` over ``ρ̂``), which experiment E9 uses to demonstrate the
  paper's claim that Time-View is a restricted special case of the more
  general rollback-plus-historical-operator approach.
"""

from repro.benzvi.relation import TRMRelation, TupleVersion
from repro.benzvi.timeview import time_view, time_view_expression
from repro.benzvi.bridge import TemporalOperation, apply_operations

__all__ = [
    "TRMRelation",
    "TupleVersion",
    "time_view",
    "time_view_expression",
    "TemporalOperation",
    "apply_operations",
]
