"""Time-travel utilities over rollback databases.

Tools a downstream user reaches for once transaction time exists:

* :func:`as_of` — rewrite an expression so every ``ρ(R, now)`` (and the
  database-relative ``now`` in general) is pinned to a specific
  transaction: "run this query as of transaction k".  Sound because ``ρ``
  is the only database-relative leaf.
* :class:`View` — a named, virtual derived relation: an expression whose
  state *as of any transaction* is obtained by pinning and evaluating.
  Views are never stored; they inherit rollback-ability from their
  sources, which is exactly the paper's point about expressions being
  side-effect-free.
* :func:`diff_states` — the (added, removed) tuple sets between two
  transactions of one relation — the primitive audit question.
* :func:`state_history` — iterate a relation's (txn, state) pairs.
"""

from repro.timetravel.asof import as_of, View
from repro.timetravel.diff import diff_states, state_history

__all__ = ["as_of", "View", "diff_states", "state_history"]
