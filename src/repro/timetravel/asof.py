"""Pinning expressions to a transaction, and virtual views."""

from __future__ import annotations

from typing import Optional

from repro.errors import ExpressionError
from repro.core.database import Database
from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Expression,
    Product,
    Project,
    Rename,
    Rollback,
    Select,
    Union,
)
from repro.core.txn import NOW, Numeral, TransactionNumber, is_now

__all__ = ["as_of", "View"]


def as_of(expression: Expression, txn: TransactionNumber) -> Expression:
    """The expression with every database-relative ``now`` pinned to
    ``txn``.

    ``ρ(R, now)`` becomes ``ρ(R, txn)``; explicit numerals are left
    alone (they already denote fixed past states); constants are
    timeless.  Evaluating the result against the *current* database
    yields what the original expression would have yielded against the
    database as of ``txn`` — provided every source relation keeps
    history (``ρ`` with a numeral requires a rollback/temporal relation,
    and the evaluation will say so otherwise).
    """
    if isinstance(expression, Const):
        return expression
    if isinstance(expression, Rollback):
        if is_now(expression.numeral):
            return Rollback(expression.identifier, txn)
        if expression.numeral > txn:
            raise ExpressionError(
                f"cannot pin to transaction {txn}: the expression "
                f"already references the later transaction "
                f"{expression.numeral} explicitly"
            )
        return expression
    if isinstance(expression, Union):
        return Union(
            as_of(expression.left, txn), as_of(expression.right, txn)
        )
    if isinstance(expression, Difference):
        return Difference(
            as_of(expression.left, txn), as_of(expression.right, txn)
        )
    if isinstance(expression, Product):
        return Product(
            as_of(expression.left, txn), as_of(expression.right, txn)
        )
    if isinstance(expression, Project):
        return Project(as_of(expression.operand, txn), expression.names)
    if isinstance(expression, Select):
        return Select(
            as_of(expression.operand, txn), expression.predicate
        )
    if isinstance(expression, Rename):
        return Rename(as_of(expression.operand, txn), expression.mapping)
    if isinstance(expression, Derive):
        return Derive(
            as_of(expression.operand, txn),
            expression.predicate,
            expression.expression,
        )
    raise ExpressionError(
        f"cannot pin expression {expression!r} to a transaction"
    )


class View:
    """A named virtual relation defined by an expression.

    A view has no stored states; its state as of transaction ``k`` is
    the pinned expression evaluated against the database.  Because
    expressions are side-effect-free, a view over rollback/temporal
    sources is itself rollback-able for free.
    """

    __slots__ = ("name", "expression")

    def __init__(self, name: str, expression: Expression) -> None:
        if not name:
            raise ExpressionError("a view needs a name")
        self.name = name
        self.expression = expression

    def state(
        self, database: Database, numeral: Numeral = NOW
    ):
        """The view's state as of ``numeral`` (default: now)."""
        if is_now(numeral):
            return self.expression.evaluate(database)
        pinned = as_of(self.expression, int(numeral))  # type: ignore[arg-type]
        return pinned.evaluate(database)

    def __repr__(self) -> str:
        return f"View({self.name}, {self.expression!r})"
