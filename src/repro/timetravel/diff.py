"""Diffing a relation across transaction time."""

from __future__ import annotations

from typing import Iterator

from repro.errors import RelationTypeError
from repro.core.database import Database
from repro.core.relation import EMPTY_STATE
from repro.core.txn import TransactionNumber

__all__ = ["diff_states", "state_history"]


def _atoms_at(database: Database, identifier: str, txn) -> frozenset:
    state = database.require(identifier).find_state(txn)
    if state is EMPTY_STATE:
        return frozenset()
    return state.tuples


def diff_states(
    database: Database,
    identifier: str,
    from_txn: TransactionNumber,
    to_txn: TransactionNumber,
) -> tuple[frozenset, frozenset]:
    """``(added, removed)`` between the relation's states at two
    transactions.

    Atoms are snapshot tuples for rollback relations and coalesced
    (value, valid-time) tuples for temporal relations — so for temporal
    relations a fact whose valid time merely *changed* shows up as one
    removal plus one addition, which is the honest audit answer.
    """
    relation = database.require(identifier)
    if not relation.rtype.keeps_history:
        raise RelationTypeError(
            f"{identifier!r} is a {relation.rtype.value} relation; "
            "diffing across transactions needs retained history"
        )
    before = _atoms_at(database, identifier, from_txn)
    after = _atoms_at(database, identifier, to_txn)
    return (after - before, before - after)


def state_history(
    database: Database, identifier: str
) -> Iterator[tuple[TransactionNumber, object]]:
    """Iterate the relation's recorded ``(transaction, state)`` pairs in
    transaction order."""
    relation = database.require(identifier)
    for state, txn in relation.rstate:
        yield txn, state
