"""repro — a reproduction of McKenzie & Snodgrass (SIGMOD 1987),
"Extending the Relational Algebra to Support Transaction Time".

The library provides, as importable layers:

* :mod:`repro.snapshot` — the classical (snapshot) relational algebra;
* :mod:`repro.historical` — an historical algebra supporting valid time;
* :mod:`repro.core` — the paper's language: semantic domains, the rollback
  operators ``ρ``/``ρ̂``, and the semantic functions **E**, **C**, **P**;
* :mod:`repro.lang` — a concrete syntax (lexer/parser/interpreter) for the
  paper's BNF;
* :mod:`repro.quel` — a Quel-style update calculus translated to the algebra;
* :mod:`repro.optimizer` — rewrite rules demonstrating that the extension
  preserves the snapshot algebra's optimization laws;
* :mod:`repro.storage` — physical backends (full copy, deltas, checkpoints,
  tuple timestamping) all observation-equivalent to the paper's semantics;
* :mod:`repro.concurrency` — commit-timestamp transaction management;
* :mod:`repro.benzvi` — Ben-Zvi's Time-View operator as the comparison
  baseline;
* :mod:`repro.evolution` — the scheme-evolution extension
  (``delete_relation`` and friends);
* :mod:`repro.workloads` — synthetic workload generators for the benchmark
  harness.

Quickstart::

    from repro import (
        DefineRelation, ModifyState, Const, Rollback, run,
        Schema, SnapshotState, NOW,
    )

    faculty = Schema(['name', 'rank'])
    db = run([
        DefineRelation('faculty', 'rollback'),
        ModifyState('faculty', Const(
            SnapshotState(faculty, [['merrie', 'assistant']]))),
        ModifyState('faculty', Const(
            SnapshotState(faculty, [['merrie', 'associate']]))),
    ])
    then = Rollback('faculty', 2).evaluate(db)   # state as of txn 2
    now = Rollback('faculty', NOW).evaluate(db)  # current state
"""

from repro.errors import (
    CommandError,
    ConcurrencyError,
    DomainError,
    EvolutionError,
    ExpressionError,
    IntervalError,
    LexError,
    ParseError,
    PredicateError,
    RelationTypeError,
    ReproError,
    RollbackError,
    SchemaError,
    StorageError,
    TranslationError,
    UnknownRelationError,
    WorkloadError,
)
from repro.snapshot import (
    ANY,
    BOOLEAN,
    INTEGER,
    NUMBER,
    STRING,
    USER_DEFINED_TIME,
    And,
    Attribute,
    Comparison,
    Domain,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    Schema,
    SnapshotState,
    SnapshotTuple,
    TruePredicate,
    attr,
    lit,
)
from repro.historical import (
    FOREVER,
    HistoricalState,
    HistoricalTuple,
    Interval,
    PeriodSet,
)
from repro.core import (
    EMPTY_DATABASE,
    NOW,
    Command,
    Const,
    Database,
    DatabaseState,
    DefineRelation,
    Derive,
    Difference,
    Expression,
    ModifyState,
    Product,
    Project,
    Relation,
    RelationType,
    Rename,
    Rollback,
    Select,
    Sentence,
    Sequence,
    Union,
    evaluate,
    execute,
    find_state,
    find_type,
    run,
    sequence,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "SchemaError",
    "DomainError",
    "PredicateError",
    "UnknownRelationError",
    "RelationTypeError",
    "RollbackError",
    "CommandError",
    "ExpressionError",
    "IntervalError",
    "LexError",
    "ParseError",
    "TranslationError",
    "StorageError",
    "ConcurrencyError",
    "EvolutionError",
    "WorkloadError",
    # snapshot algebra
    "Attribute",
    "Domain",
    "Schema",
    "SnapshotState",
    "SnapshotTuple",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "FalsePredicate",
    "attr",
    "lit",
    "ANY",
    "BOOLEAN",
    "INTEGER",
    "NUMBER",
    "STRING",
    "USER_DEFINED_TIME",
    # historical algebra
    "FOREVER",
    "Interval",
    "PeriodSet",
    "HistoricalTuple",
    "HistoricalState",
    # core language
    "NOW",
    "RelationType",
    "Relation",
    "find_state",
    "find_type",
    "Database",
    "DatabaseState",
    "EMPTY_DATABASE",
    "Expression",
    "Const",
    "Union",
    "Difference",
    "Product",
    "Project",
    "Select",
    "Rename",
    "Derive",
    "Rollback",
    "evaluate",
    "Command",
    "DefineRelation",
    "ModifyState",
    "Sequence",
    "sequence",
    "execute",
    "Sentence",
    "run",
]
