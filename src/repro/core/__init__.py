"""The paper's primary contribution: transaction time in the algebra.

This package implements Sections 3 and 4 of McKenzie & Snodgrass (SIGMOD
1987) literally:

* semantic domains — :mod:`repro.core.txn` (transaction numbers and ``∞``),
  :mod:`repro.core.relation` (relations as typed state sequences),
  :mod:`repro.core.database` (database states and databases);
* auxiliary functions — ``RTYPE``, ``RSTATE``, ``FINDSTATE``, ``FINDTYPE``
  in :mod:`repro.core.relation`;
* the semantic function **E** over expressions, including the new rollback
  operators ``ρ``/``ρ̂`` — :mod:`repro.core.expressions`;
* the semantic function **C** over commands ``define_relation`` and
  ``modify_state`` — :mod:`repro.core.commands`;
* the semantic function **P** over sentences — :mod:`repro.core.sentences`.
"""

from repro.core.txn import NOW, TransactionNumber, as_transaction_number, is_now
from repro.core.relation import (
    EMPTY_STATE,
    Relation,
    RelationType,
    find_state,
    find_type,
)
from repro.core.database import EMPTY_DATABASE, Database, DatabaseState
from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Expression,
    Product,
    Project,
    Rename,
    Rollback,
    Select,
    Union,
    evaluate,
    evaluate_memoized,
)
from repro.core.commands import (
    Command,
    DefineRelation,
    ModifyState,
    Sequence,
    execute,
    sequence,
)
from repro.core.sentences import Sentence, run
from repro.core.clock import TransactionClock
from repro.core.compile import CompiledPlan, compile_expression

__all__ = [
    "NOW",
    "TransactionNumber",
    "as_transaction_number",
    "is_now",
    "EMPTY_STATE",
    "Relation",
    "RelationType",
    "find_state",
    "find_type",
    "EMPTY_DATABASE",
    "Database",
    "DatabaseState",
    "Const",
    "Derive",
    "Difference",
    "Expression",
    "Product",
    "Project",
    "Rename",
    "Rollback",
    "Select",
    "Union",
    "evaluate",
    "evaluate_memoized",
    "Command",
    "DefineRelation",
    "ModifyState",
    "Sequence",
    "execute",
    "sequence",
    "Sentence",
    "run",
    "TransactionClock",
    "CompiledPlan",
    "compile_expression",
]
