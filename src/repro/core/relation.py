"""Relations as (type, state-sequence) pairs, and the auxiliary functions.

Section 3.2 of the paper:

    ``RELATION ≜ RELATION TYPE × [STATE × TRANSACTION NUMBER]*``

A relation is an ordered pair of a relation type and a sequence of (state,
transaction number) pairs.  Section 4 extends the type to the four classes
{snapshot, rollback, historical, temporal} and lets the state component be a
snapshot state or an historical state accordingly.

This module also implements the paper's auxiliary functions (Section 3.3):

* ``RTYPE`` — :attr:`Relation.rtype`
* ``RSTATE`` — :attr:`Relation.rstate`
* ``FINDSTATE`` — :func:`find_state` / :meth:`Relation.find_state`
* ``FINDTYPE`` — :func:`find_type` (Section 4's variant used by the
  extended ``modify_state``)

Relations are immutable: :meth:`Relation.with_new_state` returns a *new*
relation, replacing the single element for snapshot/historical relations and
appending for rollback/temporal relations, exactly as ``modify_state``
prescribes.
"""

from __future__ import annotations

import enum
from typing import Iterator, Sequence, Union

from repro.errors import RelationTypeError
from repro.core.txn import TransactionNumber
from repro.historical.state import HistoricalState
from repro.snapshot.state import SnapshotState

__all__ = [
    "RelationType",
    "State",
    "StateSequence",
    "Relation",
    "find_state",
    "find_type",
    "EMPTY_STATE",
]

State = Union[SnapshotState, HistoricalState]


class RelationType(enum.Enum):
    """The four relation classes (paper Sections 3.2 and 4)."""

    SNAPSHOT = "snapshot"
    ROLLBACK = "rollback"
    HISTORICAL = "historical"
    TEMPORAL = "temporal"

    @property
    def keeps_history(self) -> bool:
        """True for the append-only types indexed by transaction time."""
        return self in (RelationType.ROLLBACK, RelationType.TEMPORAL)

    @property
    def stores_valid_time(self) -> bool:
        """True for the types whose states are historical states."""
        return self in (RelationType.HISTORICAL, RelationType.TEMPORAL)

    @classmethod
    def from_name(cls, name: str) -> "RelationType":
        """The semantic function **Y**: map a type name to its denotation."""
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(t.value for t in cls)
            raise RelationTypeError(
                f"unknown relation type {name!r}; expected one of: {valid}"
            ) from None


#: ``FINDSTATE`` "returns the empty set" when no state qualifies.  We use a
#: distinguished empty marker rather than an empty SnapshotState because the
#: schema is unknowable in that case; callers that need a typed state use
#: Relation.find_state with a default.
EMPTY_STATE: frozenset = frozenset()

StateSequence = tuple[tuple[State, TransactionNumber], ...]


class Relation:
    """An immutable (relation type, state sequence) pair.

    The state sequence's transaction numbers are strictly increasing — the
    invariant the paper derives from sentences always starting at the empty
    database (Section 3.6).  The constructor enforces it defensively.
    """

    __slots__ = ("_rtype", "_states")

    def __init__(
        self,
        rtype: RelationType,
        states: Sequence[tuple[State, TransactionNumber]] = (),
    ) -> None:
        states = tuple(states)
        previous = -1
        for state, txn in states:
            if txn <= previous:
                raise RelationTypeError(
                    "state-sequence transaction numbers must be strictly "
                    f"increasing; saw {txn} after {previous}"
                )
            if rtype.stores_valid_time and not isinstance(
                state, HistoricalState
            ):
                raise RelationTypeError(
                    f"{rtype.value} relations store historical states, "
                    f"got {type(state).__name__}"
                )
            if not rtype.stores_valid_time and not isinstance(
                state, SnapshotState
            ):
                raise RelationTypeError(
                    f"{rtype.value} relations store snapshot states, "
                    f"got {type(state).__name__}"
                )
            previous = txn
        if not rtype.keeps_history and len(states) > 1:
            raise RelationTypeError(
                f"a {rtype.value} relation keeps a single-element state "
                f"sequence, got {len(states)} elements"
            )
        self._rtype = rtype
        self._states = states

    # -- the paper's auxiliary functions -------------------------------------

    @property
    def rtype(self) -> RelationType:
        """``RTYPE``: the relation's type."""
        return self._rtype

    @property
    def rstate(self) -> StateSequence:
        """``RSTATE``: the sequence of (state, transaction number) pairs."""
        return self._states

    def find_state(self, txn: TransactionNumber):
        """``FINDSTATE``: the state component of the element with the
        largest transaction number ≤ ``txn``; the paper's "empty set" (the
        :data:`EMPTY_STATE` marker) when the sequence is empty or no element
        qualifies."""
        return find_state(self, txn)

    # -- derived accessors ----------------------------------------------------

    @property
    def transaction_numbers(self) -> tuple[TransactionNumber, ...]:
        """The transaction-number components, in sequence order."""
        return tuple(txn for _, txn in self._states)

    @property
    def current_state(self):
        """The most recent state, or :data:`EMPTY_STATE` when none exists."""
        if not self._states:
            return EMPTY_STATE
        return self._states[-1][0]

    @property
    def history_length(self) -> int:
        """The number of recorded (state, txn) pairs."""
        return len(self._states)

    def __iter__(self) -> Iterator[tuple[State, TransactionNumber]]:
        return iter(self._states)

    # -- state change (pure) ---------------------------------------------------

    def with_new_state(
        self, state: State, txn: TransactionNumber
    ) -> "Relation":
        """The relation after ``modify_state`` installs ``state`` at
        transaction ``txn``: replacement for snapshot/historical relations,
        append for rollback/temporal relations (paper Sections 3.5 and 4)."""
        if self._rtype.keeps_history:
            return Relation(self._rtype, self._states + ((state, txn),))
        return Relation(self._rtype, ((state, txn),))

    # -- equality ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._rtype == other._rtype and self._states == other._states

    def __hash__(self) -> int:
        return hash(("Relation", self._rtype, self._states))

    def __repr__(self) -> str:
        return (
            f"Relation({self._rtype.value}, "
            f"{len(self._states)} states at txns "
            f"{[txn for _, txn in self._states]})"
        )


def find_state(relation: Relation, txn: TransactionNumber):
    """The paper's ``FINDSTATE`` auxiliary function.

    Maps a relation into the state component of the element in the
    relation's state sequence having the largest transaction-number
    component ≤ ``txn``.  Returns :data:`EMPTY_STATE` when the sequence is
    empty or no such element exists (paper Section 3.3).

    Implemented by binary search over the strictly increasing
    transaction-number components — the "interpolation" the paper notes is
    possible (Section 3.2).
    """
    states = relation.rstate
    lo, hi = 0, len(states)
    while lo < hi:
        mid = (lo + hi) // 2
        if states[mid][1] <= txn:
            lo = mid + 1
        else:
            hi = mid
    if lo == 0:
        return EMPTY_STATE
    return states[lo - 1][0]


def find_type(relation: Relation, txn: TransactionNumber) -> RelationType:
    """The paper's ``FINDTYPE`` auxiliary function (Section 4).

    In the core language a relation's type never changes, so ``FINDTYPE``
    coincides with ``RTYPE`` for every transaction number; the schema-
    evolution extension (:mod:`repro.evolution`) generalizes this to types
    that vary over transaction time.
    """
    return relation.rtype
