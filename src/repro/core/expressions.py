"""Algebraic expressions and the semantic function **E**.

Section 3.4 of the paper:

    ``E : EXPRESSION → [DATABASE → [SNAPSHOT STATE]]``

The result of evaluating an expression on a specific database is a state;
"evaluation of an expression on a specific database does not change that
database".  Section 4 extends expressions to evaluate to historical states
as well.

The expression AST mirrors the paper's grammar:

    ``E ::= A | E1 ∪ E2 | E1 − E2 | E1 × E2 | π_X(E) | σ_F(E) | ρ(I, N)``

plus Section 4's historical counterparts and the valid-time operator
``δ_{G,V}``.  Rather than duplicating every node for the hatted operator
(``∪̂`` vs ``∪`` etc.), each node dispatches on the runtime type of its
operand states — the hatted and unhatted operators have identical
denotational structure (compare the two displayed equation blocks in the
paper), differing only in the underlying state algebra.  Mixing a snapshot
state with an historical state in one operator is an error.

Every node is immutable and hashable, so the optimizer can rewrite
expression trees and memoize safely.
"""

from __future__ import annotations

from typing import Any, Sequence, Union as TypingUnion

from repro.errors import ExpressionError, RelationTypeError
from repro.core.database import Database
from repro.core.relation import EMPTY_STATE, Relation, RelationType, find_state
from repro.core.txn import NOW, Numeral, as_transaction_number, is_now
from repro.historical.operators import (
    historical_derive,
    historical_difference,
    historical_product,
    historical_project,
    historical_rename,
    historical_select,
    historical_union,
)
from repro.historical.predicates import TemporalPredicate
from repro.historical.state import HistoricalState
from repro.historical.temporal_exprs import TemporalExpression
from repro.snapshot.derived import rename as snap_rename
from repro.snapshot.operators import (
    difference as snap_difference,
    product as snap_product,
    project as snap_project,
    select as snap_select,
    union as snap_union,
)
from repro.snapshot.predicates import Predicate
from repro.snapshot.state import SnapshotState

__all__ = [
    "Expression",
    "Const",
    "Union",
    "Difference",
    "Product",
    "Project",
    "Select",
    "Rename",
    "Derive",
    "Rollback",
    "NODE_HANDLERS",
    "apply_node",
    "evaluate",
    "evaluate_memoized",
]

State = TypingUnion[SnapshotState, HistoricalState]

#: The denotation of the paper's untyped empty set ∅, which ``FINDSTATE``
#: returns when a relation has no recorded state at the requested time.
#: Because our snapshot/historical states are typed by a schema, ∅ is a
#: distinguished marker that the algebraic operators treat as the identity
#: of union (and annihilator of product, etc.); see each node's evaluate.
EMPTY_SET = EMPTY_STATE


def is_empty_set(value: Any) -> bool:
    """True iff ``value`` is the untyped empty set ∅ (as opposed to a
    typed empty state, which has a schema)."""
    return value is EMPTY_SET


#: Observability slot: ``None`` until :func:`repro.obsv.registry.enable`
#: installs an :class:`repro.obsv.hooks.ExpressionObserver`.  Kept as a
#: plain module global so the disabled cost per node is one load and an
#: ``is None`` branch; this module never imports :mod:`repro.obsv`.
_OBSERVER = None


def _require_state(value: Any, node: "Expression") -> State:
    if isinstance(value, (SnapshotState, HistoricalState)):
        return value
    if value is EMPTY_SET:
        raise ExpressionError(
            f"operand of {node!r} evaluated to the untyped empty set ∅ "
            "in a position that requires a schema"
        )
    raise ExpressionError(
        f"operand of {node!r} evaluated to {type(value).__name__}, "
        "not a state"
    )


def _require_same_kind(
    left: State, right: State, operator_name: str
) -> None:
    if type(left) is not type(right):
        raise ExpressionError(
            f"{operator_name} cannot mix a snapshot state with an "
            "historical state; the hatted and unhatted operators apply "
            "to one algebra at a time"
        )


class Expression:
    """Base class for algebraic expressions.

    Subclasses implement :meth:`evaluate`, the paper's semantic function
    **E** restricted to that construct.  Evaluation never mutates the
    database argument.
    """

    __slots__ = ()

    def evaluate(self, database: Database) -> State:
        """``E[[self]] database`` — the denoted state."""
        raise NotImplementedError

    def children(self) -> tuple["Expression", ...]:
        """Immediate sub-expressions, for tree walks and the optimizer."""
        return ()

    # -- operator sugar for building expression trees ------------------------

    def union(self, other: "Expression") -> "Union":
        return Union(self, other)

    def difference(self, other: "Expression") -> "Difference":
        return Difference(self, other)

    def product(self, other: "Expression") -> "Product":
        return Product(self, other)

    def project(self, names: Sequence[str]) -> "Project":
        return Project(self, names)

    def select(self, predicate: Predicate) -> "Select":
        return Select(self, predicate)


class Const(Expression):
    """A constant state ``A`` (Section 3.1) — "an alphanumeric
    representation of a snapshot state (i.e., a constant relation)", or in
    Section 4's extension a snapshot *or* historical state tagged with its
    type ``(Y, A)``.

    We take the already-denoted state directly; the semantic functions **S**
    and **H** that map alphanumeric representations to states live in the
    concrete-syntax layer (:mod:`repro.lang`).
    """

    __slots__ = ("state", "_hash")

    def __init__(self, state: State) -> None:
        if not isinstance(state, (SnapshotState, HistoricalState)):
            raise ExpressionError(
                f"Const requires a snapshot or historical state, "
                f"got {type(state).__name__}"
            )
        self.state = state
        self._hash = hash(("Const", state))

    def evaluate(self, database: Database) -> State:
        if _OBSERVER is not None:
            _OBSERVER.node()
        return self.state

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.state == other.state

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        kind = "historical" if isinstance(self.state, HistoricalState) else "snapshot"
        return f"Const({kind}, {len(self.state)} tuples)"


class Union(Expression):
    """``E1 ∪ E2`` / ``E1 ∪̂ E2``."""

    __slots__ = ("left", "right", "_hash")

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right
        self._hash = hash(("Union", left, right))

    def evaluate(self, database: Database) -> State:
        if _OBSERVER is not None:
            _OBSERVER.node()
        l = self.left.evaluate(database)
        r = self.right.evaluate(database)
        # ∅ is the identity of union (paper: FINDSTATE may denote ∅).
        if is_empty_set(l):
            return r
        if is_empty_set(r):
            return l
        l = _require_state(l, self)
        r = _require_state(r, self)
        _require_same_kind(l, r, "union")
        if isinstance(l, HistoricalState):
            return historical_union(l, r)  # type: ignore[arg-type]
        return snap_union(l, r)  # type: ignore[arg-type]

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Union)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"({self.left!r} ∪ {self.right!r})"


class Difference(Expression):
    """``E1 − E2`` / ``E1 −̂ E2``."""

    __slots__ = ("left", "right", "_hash")

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right
        self._hash = hash(("Difference", left, right))

    def evaluate(self, database: Database) -> State:
        if _OBSERVER is not None:
            _OBSERVER.node()
        l = self.left.evaluate(database)
        r = self.right.evaluate(database)
        # ∅ − E = ∅ and E − ∅ = E.
        if is_empty_set(l):
            return EMPTY_SET
        if is_empty_set(r):
            return l
        l = _require_state(l, self)
        r = _require_state(r, self)
        _require_same_kind(l, r, "difference")
        if isinstance(l, HistoricalState):
            return historical_difference(l, r)  # type: ignore[arg-type]
        return snap_difference(l, r)  # type: ignore[arg-type]

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Difference)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"({self.left!r} − {self.right!r})"


class Product(Expression):
    """``E1 × E2`` / ``E1 ×̂ E2``."""

    __slots__ = ("left", "right", "_hash")

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right
        self._hash = hash(("Product", left, right))

    def evaluate(self, database: Database) -> State:
        if _OBSERVER is not None:
            _OBSERVER.node()
        l = self.left.evaluate(database)
        r = self.right.evaluate(database)
        # ∅ annihilates a product.
        if is_empty_set(l) or is_empty_set(r):
            return EMPTY_SET
        l = _require_state(l, self)
        r = _require_state(r, self)
        _require_same_kind(l, r, "product")
        if isinstance(l, HistoricalState):
            return historical_product(l, r)  # type: ignore[arg-type]
        return snap_product(l, r)  # type: ignore[arg-type]

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Product)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"({self.left!r} × {self.right!r})"


class Project(Expression):
    """``π_X(E)`` / ``π̂_X(E)``."""

    __slots__ = ("operand", "names", "_hash")

    def __init__(self, operand: Expression, names: Sequence[str]) -> None:
        self.operand = operand
        self.names = tuple(names)
        self._hash = hash(("Project", operand, self.names))

    def evaluate(self, database: Database) -> State:
        if _OBSERVER is not None:
            _OBSERVER.node()
        inner = self.operand.evaluate(database)
        if is_empty_set(inner):
            return EMPTY_SET
        inner = _require_state(inner, self)
        if isinstance(inner, HistoricalState):
            return historical_project(inner, self.names)
        return snap_project(inner, self.names)

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Project)
            and self.operand == other.operand
            and self.names == other.names
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"π[{', '.join(self.names)}]({self.operand!r})"


class Select(Expression):
    """``σ_F(E)`` / ``σ̂_F(E)``."""

    __slots__ = ("operand", "predicate", "_hash")

    def __init__(self, operand: Expression, predicate: Predicate) -> None:
        self.operand = operand
        self.predicate = predicate
        self._hash = hash(("Select", operand, predicate))

    def evaluate(self, database: Database) -> State:
        if _OBSERVER is not None:
            _OBSERVER.node()
        inner = self.operand.evaluate(database)
        if is_empty_set(inner):
            return EMPTY_SET
        inner = _require_state(inner, self)
        if isinstance(inner, HistoricalState):
            return historical_select(inner, self.predicate)
        return snap_select(inner, self.predicate)

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Select)
            and self.operand == other.operand
            and self.predicate == other.predicate
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"σ[{self.predicate!r}]({self.operand!r})"


class Rename(Expression):
    """Attribute renaming — a derived operator (expressible as projection
    over a relabeled schema) included as a node so cartesian products of a
    relation with itself, and the Quel ``replace`` translation, can be
    written without leaving the algebra."""

    __slots__ = ("operand", "mapping", "_hash")

    def __init__(self, operand: Expression, mapping: dict[str, str]) -> None:
        self.operand = operand
        self.mapping = dict(mapping)
        self._hash = hash(
            ("Rename", operand, tuple(sorted(self.mapping.items())))
        )

    def evaluate(self, database: Database) -> State:
        if _OBSERVER is not None:
            _OBSERVER.node()
        inner = self.operand.evaluate(database)
        if is_empty_set(inner):
            return EMPTY_SET
        inner = _require_state(inner, self)
        if isinstance(inner, HistoricalState):
            return historical_rename(inner, self.mapping)
        return snap_rename(inner, self.mapping)

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rename)
            and self.operand == other.operand
            and self.mapping == other.mapping
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}→{v}" for k, v in sorted(self.mapping.items()))
        return f"rename[{inner}]({self.operand!r})"


class Derive(Expression):
    """``δ_{G,V}(E)`` — Section 4's valid-time selection/derivation.

    Only defined on historical states.
    """

    __slots__ = ("operand", "predicate", "expression", "_hash")

    def __init__(
        self,
        operand: Expression,
        predicate: TemporalPredicate | None = None,
        expression: TemporalExpression | None = None,
    ) -> None:
        self.operand = operand
        self.predicate = predicate
        self.expression = expression
        self._hash = hash(("Derive", operand, predicate, expression))

    def evaluate(self, database: Database) -> State:
        if _OBSERVER is not None:
            _OBSERVER.node()
        inner = self.operand.evaluate(database)
        if is_empty_set(inner):
            return EMPTY_SET
        inner = _require_state(inner, self)
        if not isinstance(inner, HistoricalState):
            raise ExpressionError(
                "δ applies only to historical states; its operand "
                "evaluated to a snapshot state"
            )
        return historical_derive(inner, self.predicate, self.expression)

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Derive)
            and self.operand == other.operand
            and self.predicate == other.predicate
            and self.expression == other.expression
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"δ[{self.predicate!r}, {self.expression!r}]({self.operand!r})"
        )


class Rollback(Expression):
    """``ρ(I, N)`` / ``ρ̂(I, N)`` — the paper's new operator (Section 3.4).

    Retrieves the state of relation ``I`` at the time of transaction ``N``:

    * ``N = ∞`` — the most recent state; legal on every relation type.
    * ``N ≠ ∞`` — ``FINDSTATE(r, N)``; legal only on rollback and temporal
      relations ("The rollback operator cannot retrieve a past state of a
      snapshot relation", Section 3.1).

    Rollback is side-effect-free, which is what lets the paper incorporate
    it into the algebra rather than the command layer.
    """

    __slots__ = ("identifier", "numeral", "_hash")

    def __init__(self, identifier: str, numeral: Numeral = NOW) -> None:
        if not identifier or not isinstance(identifier, str):
            raise ExpressionError(
                f"rollback requires a relation identifier, got {identifier!r}"
            )
        if not is_now(numeral):
            numeral = as_transaction_number(numeral)
        self.identifier = identifier
        self.numeral = numeral
        self._hash = hash(("Rollback", identifier, numeral))

    def evaluate(self, database: Database) -> State:
        if _OBSERVER is not None:
            _OBSERVER.node()
            _OBSERVER.rollback()
        # ``relation`` is duck-typed: a core Relation or any view exposing
        # rtype and find_state (e.g. a storage-backend relation view).
        relation: Relation = database.require(self.identifier)
        if is_now(self.numeral):
            result = relation.find_state(database.transaction_number)
        else:
            if not relation.rtype.keeps_history:
                raise RelationTypeError(
                    f"cannot roll back {relation.rtype.value} relation "
                    f"{self.identifier!r} to transaction {self.numeral}; "
                    "only rollback and temporal relations retain past states"
                )
            result = relation.find_state(self.numeral)
        # FINDSTATE "returns the empty set" when the sequence is empty or
        # no element qualifies (Section 3.3); the ∅ marker propagates
        # through the algebraic operators.
        return result  # type: ignore[return-value]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rollback)
            and self.identifier == other.identifier
            and self.numeral == other.numeral
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"ρ({self.identifier}, {self.numeral!r})"


def evaluate(expression: Expression, database: Database) -> State:
    """The semantic function **E** as a standalone entry point.

    ``evaluate(e, d)`` is ``E[[e]] d``.  Provided for symmetry with
    :func:`repro.core.commands.execute` and :func:`repro.core.sentences.run`.
    """
    return expression.evaluate(database)


#: Node types whose result is a pure function of their operand values —
#: exactly the nodes :func:`apply_node` can compute from pre-evaluated
#: children.  Leaves (``Const``, ``Rollback``) and unknown node types are
#: evaluated through their own ``evaluate``.
_COMPOSITE_NODES = (
    Union,
    Difference,
    Product,
    Project,
    Select,
    Rename,
    Derive,
)


def _apply_union(node: Union, operands: Sequence[Any], database: Database):
    l, r = operands
    if is_empty_set(l):
        return r
    if is_empty_set(r):
        return l
    l = _require_state(l, node)
    r = _require_state(r, node)
    _require_same_kind(l, r, "union")
    return (
        historical_union(l, r)
        if isinstance(l, HistoricalState)
        else snap_union(l, r)
    )


def _apply_difference(
    node: Difference, operands: Sequence[Any], database: Database
):
    l, r = operands
    if is_empty_set(l):
        return EMPTY_SET
    if is_empty_set(r):
        return l
    l = _require_state(l, node)
    r = _require_state(r, node)
    _require_same_kind(l, r, "difference")
    return (
        historical_difference(l, r)
        if isinstance(l, HistoricalState)
        else snap_difference(l, r)
    )


def _apply_product(node: Product, operands: Sequence[Any], database: Database):
    l, r = operands
    if is_empty_set(l) or is_empty_set(r):
        return EMPTY_SET
    l = _require_state(l, node)
    r = _require_state(r, node)
    _require_same_kind(l, r, "product")
    return (
        historical_product(l, r)
        if isinstance(l, HistoricalState)
        else snap_product(l, r)
    )


def _apply_project(node: Project, operands: Sequence[Any], database: Database):
    (inner,) = operands
    if is_empty_set(inner):
        return EMPTY_SET
    inner = _require_state(inner, node)
    if isinstance(inner, HistoricalState):
        return historical_project(inner, node.names)
    return snap_project(inner, node.names)


def _apply_select(node: Select, operands: Sequence[Any], database: Database):
    (inner,) = operands
    if is_empty_set(inner):
        return EMPTY_SET
    inner = _require_state(inner, node)
    if isinstance(inner, HistoricalState):
        return historical_select(inner, node.predicate)
    return snap_select(inner, node.predicate)


def _apply_rename(node: Rename, operands: Sequence[Any], database: Database):
    (inner,) = operands
    if is_empty_set(inner):
        return EMPTY_SET
    inner = _require_state(inner, node)
    if isinstance(inner, HistoricalState):
        return historical_rename(inner, node.mapping)
    return snap_rename(inner, node.mapping)


def _apply_derive(node: Derive, operands: Sequence[Any], database: Database):
    (inner,) = operands
    if is_empty_set(inner):
        return EMPTY_SET
    inner = _require_state(inner, node)
    if not isinstance(inner, HistoricalState):
        raise ExpressionError("δ applies only to historical states")
    return historical_derive(inner, node.predicate, node.expression)


#: Per-type handlers computing a composite node's result from its
#: pre-evaluated operand values.  This table is the single source of
#: truth shared by :func:`apply_node`, :func:`evaluate_memoized` and the
#: compiled engine (:mod:`repro.core.compile`): the compiler resolves a
#: node's handler once at compile time, so compiled plans cannot drift
#: from the interpreted semantics.
NODE_HANDLERS = {
    Union: _apply_union,
    Difference: _apply_difference,
    Product: _apply_product,
    Project: _apply_project,
    Select: _apply_select,
    Rename: _apply_rename,
    Derive: _apply_derive,
}


def apply_node(
    node: Expression, operands: Sequence[Any], database: Database
):
    """Compute ``node``'s result from already-evaluated operand values.

    ``operands`` must align with ``node.children()``.  For leaves (and
    any node type outside :data:`NODE_HANDLERS`) the node's own
    ``evaluate`` is used.  This is the single dispatch point shared by
    :func:`evaluate_memoized`, the compiled engine and the tracing
    evaluator in :mod:`repro.obsv.trace`, so the evaluation strategies
    cannot drift apart semantically.
    """
    handler = NODE_HANDLERS.get(type(node))
    if handler is not None:
        return handler(node, operands, database)
    # leaves (Const, Rollback) and any future node types
    return node.evaluate(database)


#: Sentinel distinguishing "not cached" from any cached value (including
#: falsy states and the untyped ∅) in :func:`evaluate_memoized`.
_MEMO_MISSING = object()


def evaluate_memoized(expression: Expression, database: Database):
    """**E** with common-subexpression elimination.

    Expressions are immutable, hashable values and evaluation is pure, so
    within one evaluation every occurrence of an equal subtree denotes
    the same state.  This evaluator caches results per subtree: a query
    like ``E − σ_F(E)`` evaluates ``E`` once however large it is.

    Observationally identical to :func:`evaluate` (property-tested);
    worth using when expression trees share large subtrees — e.g. the
    update expressions the Quel translator emits.
    """
    cache: dict[Expression, Any] = {}

    def walk(node: Expression):
        # Single sentinel-based lookup: a cached result may be falsy
        # (the ∅ marker, an empty state) or even None (a hypothetical
        # third-party node), and must still count as exactly one hit.
        cached = cache.get(node, _MEMO_MISSING)
        if cached is not _MEMO_MISSING:
            if _OBSERVER is not None:
                _OBSERVER.memo_hit()
            return cached
        if _OBSERVER is not None:
            _OBSERVER.memo_miss()
        if isinstance(node, _COMPOSITE_NODES):
            operands = [walk(child) for child in node.children()]
            if _OBSERVER is not None:
                _OBSERVER.node()
            result = apply_node(node, operands, database)
        else:
            # leaves and unknown node types count themselves (their
            # ``evaluate`` fires the observer hook)
            result = node.evaluate(database)
        cache[node] = result
        return result

    return walk(expression)
