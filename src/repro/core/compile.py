"""Compiling expression trees into flat, batch-level execution plans.

The interpreted evaluator walks the tree on every call: each node pays a
Python method call, an isinstance dispatch chain, and — for trees with
shared subtrees — repeated evaluation of equal subexpressions.  For the
hot production shape (the same query issued over and over against a
session) that per-call tree walk is pure overhead: the tree never
changes between calls.

:func:`compile_expression` flattens a tree once into a
:class:`CompiledPlan` — a topologically ordered list of *steps*, one per
**distinct** subtree (common subexpressions are hash-consed away, the
same sharing :func:`~repro.core.expressions.evaluate_memoized` discovers
per call, discovered here once at compile time).  Each composite step
captures its :data:`~repro.core.expressions.NODE_HANDLERS` handler at
compile time, so executing a plan is a tight loop of pre-resolved
callables over a value array — no per-call isinstance chains, no
recursion, no dictionary probes.

Because every step dispatches through the same handler table as
:func:`~repro.core.expressions.apply_node`, a compiled plan is
observation-equivalent to ``evaluate`` by construction (the paper's C6:
any physical evaluation strategy is correct iff observation-equivalent
to the simple semantics); the differential suite in
``tests/optimizer/test_compiled_differential.py`` checks it over all
five storage backends.

Compilation and execution are both iterative (explicit stack / flat
loop), so plans for trees deeper than the Python recursion limit — the
shape the Quel translator emits for long conjunctions — compile and run
fine.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.database import Database
from repro.core.expressions import (
    NODE_HANDLERS,
    Expression,
    State,
)

__all__ = ["CompiledPlan", "compile_expression"]


#: Observability slot for the compiled engine, installed by
#: :func:`repro.obsv.hooks.install` (``engine.*`` metrics).  Module
#: global so the disabled cost per execution is one load and an
#: ``is None`` branch; this module never imports :mod:`repro.obsv`.
_OBSERVER = None


class CompiledPlan:
    """A flat, reusable execution plan for one expression tree.

    The plan is a sequence of steps in bottom-up topological order;
    step ``i`` writes slot ``i`` of a per-execution value array, and the
    last slot is the root's result.  Calling the plan evaluates it
    against a database, exactly like ``expression.evaluate(database)``.
    """

    __slots__ = ("expression", "_steps", "_n_nodes")

    def __init__(
        self,
        expression: Expression,
        steps: "list[tuple[Callable | None, Expression, tuple[int, ...]]]",
        n_nodes: int,
    ) -> None:
        self.expression = expression
        self._steps = steps
        self._n_nodes = n_nodes

    @property
    def step_count(self) -> int:
        """Distinct subtrees in the plan (after common-subexpression
        elimination)."""
        return len(self._steps)

    @property
    def node_count(self) -> int:
        """Nodes in the original tree (before sharing); the difference
        with :attr:`step_count` is the work CSE saves per execution."""
        return self._n_nodes

    def __call__(self, database: Database) -> State:
        """Execute the plan — ``E[[expression]] database``."""
        observer = _OBSERVER
        values: list = [None] * len(self._steps)
        for index, (handler, node, operand_slots) in enumerate(
            self._steps
        ):
            if handler is None:
                # leaves (Const, Rollback, third-party nodes) evaluate
                # themselves so their own observer hooks fire
                values[index] = node.evaluate(database)
            else:
                if observer is not None:
                    observer.node()
                values[index] = handler(
                    node,
                    [values[slot] for slot in operand_slots],
                    database,
                )
        if observer is not None:
            observer.executed(len(self._steps))
        return values[-1]

    def __repr__(self) -> str:
        return (
            f"CompiledPlan({self.step_count} steps, "
            f"{self.node_count} tree nodes)"
        )


def compile_expression(
    expression: Expression,
) -> Callable[[Database], State]:
    """Compile a tree into a :class:`CompiledPlan` closure.

    The plan assigns one step per distinct subtree (expressions are
    immutable, hashable values, so equal subtrees denote the same state
    within one evaluation — the property ``evaluate_memoized`` relies
    on) and resolves each composite node's handler once.  The returned
    plan is a pure function of the database argument and can be cached
    and reused across evaluations; the Session plan cache stores one per
    normalized query text.
    """
    slots: dict[Expression, int] = {}
    steps: list = []

    # Iterative post-order: (node, children_pushed) frames.
    stack: list[tuple[Expression, bool]] = [(expression, False)]
    while stack:
        node, children_pushed = stack.pop()
        if node in slots:
            continue
        handler = NODE_HANDLERS.get(type(node))
        if not children_pushed and handler is not None:
            stack.append((node, True))
            for child in node.children():
                if child not in slots:
                    stack.append((child, False))
            continue
        if node in slots:  # a duplicate frame finished first
            continue
        if handler is None:
            steps.append((None, node, ()))
        else:
            operand_slots = tuple(
                slots[child] for child in node.children()
            )
            steps.append((handler, node, operand_slots))
        slots[node] = len(steps) - 1

    # Tree size (nodes before sharing), computed bottom-up over the
    # distinct subtrees so heavily shared (DAG-shaped) trees don't cost
    # an exponential walk: size(node) = 1 + Σ size(child).
    sizes: list[int] = []
    for _, node, operand_slots in steps:
        sizes.append(1 + sum(sizes[slot] for slot in operand_slots))
    plan = CompiledPlan(expression, steps, sizes[-1] if sizes else 0)
    if _OBSERVER is not None:
        _OBSERVER.compiled(plan.step_count, plan.node_count)
    return plan
