"""Sentences and the semantic function **P**.

Section 3.6 of the paper:

    ``P : SENTENCE → [DATABASE]``
    ``P[[C]] ≜ C[[C]](EMPTY, 0)``

A sentence is a non-empty sequence of commands evaluated against the empty
database.  "This requirement is both necessary and sufficient ... to ensure
that transaction-number components of the state sequence of each rollback
relation in the database will be strictly increasing."  The content of a
database is the cumulative result of all the transactions performed on it
since creation.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.errors import CommandError
from repro.core.commands import Command, sequence
from repro.core.database import EMPTY_DATABASE, Database

__all__ = ["Sentence", "run"]


class Sentence:
    """A non-empty sequence of commands, the language's highest-level
    construct."""

    __slots__ = ("_commands",)

    def __init__(self, commands: Union[Command, Iterable[Command]]) -> None:
        if isinstance(commands, Command):
            items: tuple[Command, ...] = (commands,)
        else:
            items = tuple(commands)
        if not items:
            raise CommandError("a sentence must contain at least one command")
        self._commands = items

    @property
    def commands(self) -> tuple[Command, ...]:
        """The constituent commands in execution order."""
        return self._commands

    def evaluate(self) -> Database:
        """``P[[self]]`` — execute against ``(EMPTY, 0)``."""
        return sequence(self._commands).execute(EMPTY_DATABASE)

    def __len__(self) -> int:
        return len(self._commands)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sentence):
            return NotImplemented
        return self._commands == other._commands

    def __hash__(self) -> int:
        return hash(("Sentence", self._commands))

    def __repr__(self) -> str:
        return f"Sentence({len(self._commands)} commands)"


def run(commands: Union[Command, Iterable[Command]]) -> Database:
    """The semantic function **P** as a standalone entry point: build a
    sentence from ``commands`` and evaluate it on the empty database."""
    return Sentence(commands).evaluate()
