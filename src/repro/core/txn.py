"""Transaction numbers and the ``∞`` numeral.

``TRANSACTION NUMBER ≜ {0, 1, ...}`` (Section 3.2 of the paper): a
non-negative integer identifying the transaction that modified the database,
interpreted as the transaction's commit-time time-stamp.  The syntactic
domain ``NUMERAL`` additionally contains "the special symbol ∞", which the
rollback operator uses to request the most recent state.  We realize ``∞``
as the singleton :data:`NOW`, which compares greater than every transaction
number.
"""

from __future__ import annotations

from typing import Any, Union

from repro.errors import RollbackError

__all__ = ["TransactionNumber", "NOW", "Numeral", "as_transaction_number", "is_now"]

TransactionNumber = int


class _Now:
    """Singleton denotation of the paper's ``∞`` numeral."""

    _instance: "_Now | None" = None

    def __new__(cls) -> "_Now":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __lt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return other is self

    def __gt__(self, other: Any) -> bool:
        return other is not self

    def __ge__(self, other: Any) -> bool:
        return True

    def __eq__(self, other: Any) -> bool:
        return other is self

    def __hash__(self) -> int:
        return hash("repro.core.NOW")

    def __repr__(self) -> str:
        return "∞"

    def __reduce__(self):
        return (_Now, ())


#: The denotation of the paper's ``∞``: "the time of the most recent
#: transaction on the database".
NOW = _Now()

Numeral = Union[TransactionNumber, _Now]


def is_now(numeral: Any) -> bool:
    """True iff the numeral is the ``∞`` symbol."""
    return numeral is NOW


def as_transaction_number(value: Any) -> TransactionNumber:
    """Validate a concrete (non-``∞``) transaction number.

    This is the semantic function **N** of the paper, mapping the syntactic
    domain NUMERAL (minus ``∞``) into TRANSACTION NUMBER.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise RollbackError(
            f"transaction number must be an integer, got {value!r}"
        )
    if value < 0:
        raise RollbackError(
            f"transaction number must be non-negative, got {value}"
        )
    return value
