"""Database states and databases.

Section 3.2 of the paper:

    ``DATABASE STATE ≜ IDENTIFIER → [RELATION + {⊥}]``
    ``DATABASE ≜ DATABASE STATE × TRANSACTION NUMBER``

A database state is a function from identifiers to relations or the bottom
element ⊥ (unbound).  A database pairs a database state with the transaction
number of the most recent transaction.  Both are immutable values: command
semantics produce *new* databases, never mutate existing ones — this is what
lets the reproduction check the paper's claim C1 (expressions are
side-effect-free) structurally.

We realize the function ``IDENTIFIER → [RELATION + {⊥}]`` as a finite
mapping; identifiers absent from the mapping denote ⊥.  The functional
update ``b[r/I]`` from the paper's semantics is :meth:`DatabaseState.bind`.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

from repro.errors import UnknownRelationError
from repro.core.relation import Relation
from repro.core.txn import TransactionNumber

__all__ = ["DatabaseState", "Database", "EMPTY_DATABASE"]


class DatabaseState:
    """An immutable finite map from identifiers to relations.

    Identifiers not present are *unbound* — they map to the paper's ⊥.
    """

    __slots__ = ("_bindings",)

    def __init__(
        self, bindings: Optional[Mapping[str, Relation]] = None
    ) -> None:
        self._bindings: dict[str, Relation] = dict(bindings or {})

    def lookup(self, identifier: str) -> Optional[Relation]:
        """The relation bound to ``identifier``, or None for ⊥."""
        return self._bindings.get(identifier)

    def is_bound(self, identifier: str) -> bool:
        """True iff the identifier denotes a defined relation."""
        return identifier in self._bindings

    def require(self, identifier: str) -> Relation:
        """The bound relation, raising on ⊥."""
        relation = self._bindings.get(identifier)
        if relation is None:
            raise UnknownRelationError(
                f"identifier {identifier!r} is unbound (⊥) in this "
                "database state"
            )
        return relation

    def bind(self, identifier: str, relation: Relation) -> "DatabaseState":
        """The functional update ``b[relation/identifier]``: a new state
        identical to this one except that ``identifier`` maps to
        ``relation``."""
        updated = dict(self._bindings)
        updated[identifier] = relation
        return DatabaseState(updated)

    def unbind(self, identifier: str) -> "DatabaseState":
        """A new state with ``identifier`` mapped back to ⊥ (used only by
        the schema-evolution extension's ``delete_relation``)."""
        updated = dict(self._bindings)
        updated.pop(identifier, None)
        return DatabaseState(updated)

    @property
    def identifiers(self) -> tuple[str, ...]:
        """The bound identifiers, sorted for determinism."""
        return tuple(sorted(self._bindings))

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._bindings))

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, identifier: object) -> bool:
        return identifier in self._bindings

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseState):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self) -> int:
        return hash(("DatabaseState", frozenset(self._bindings.items())))

    def __repr__(self) -> str:
        names = ", ".join(sorted(self._bindings)) or "∅"
        return f"DatabaseState({names})"


class Database:
    """An immutable (database state, transaction number) pair.

    The transaction number identifies "the most recent transaction that
    caused a change to the database" (Section 3.2).
    """

    __slots__ = ("_state", "_txn")

    def __init__(
        self, state: DatabaseState, txn: TransactionNumber
    ) -> None:
        if txn < 0:
            raise UnknownRelationError(
                f"database transaction number must be ≥ 0, got {txn}"
            )
        self._state = state
        self._txn = txn

    @property
    def state(self) -> DatabaseState:
        """The database-state component ``b``."""
        return self._state

    @property
    def transaction_number(self) -> TransactionNumber:
        """The transaction-number component ``n``."""
        return self._txn

    def lookup(self, identifier: str) -> Optional[Relation]:
        """Convenience: look an identifier up in the state component."""
        return self._state.lookup(identifier)

    def require(self, identifier: str) -> Relation:
        """Convenience: require an identifier to be bound."""
        return self._state.require(identifier)

    def with_binding(
        self, identifier: str, relation: Relation, txn: TransactionNumber
    ) -> "Database":
        """The database ``(b[relation/identifier], txn)``."""
        return Database(self._state.bind(identifier, relation), txn)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._state == other._state and self._txn == other._txn

    def __hash__(self) -> int:
        return hash(("Database", self._state, self._txn))

    def __repr__(self) -> str:
        return f"Database({self._state!r}, txn={self._txn})"


def _empty_database() -> Database:
    """The paper's ``(EMPTY, 0)``: every identifier maps to ⊥ and the
    transaction count is 0 (Section 3.6)."""
    return Database(DatabaseState(), 0)


#: The distinguished starting database for sentence evaluation.
EMPTY_DATABASE = _empty_database()
