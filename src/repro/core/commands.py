"""Commands and the semantic function **C**.

Section 3.5 of the paper:

    ``C : COMMAND → [DATABASE → [DATABASE]]``

"Commands are the only language constructs that change the database.
Execution of a command either produces a new database or leaves the
database unchanged."  Because our databases are immutable values, "changes"
are realized functionally: :meth:`Command.execute` returns a new
:class:`~repro.core.database.Database`.

The two commands are:

* ``define_relation(I, Y)`` — bind type ``Y`` and an empty state sequence to
  an unbound identifier ``I``; a no-op when ``I`` is already bound.
* ``modify_state(I, E)`` — evaluate ``E`` against the *current* database and
  install the resulting state in relation ``I`` at transaction ``n + 1``:
  replacing the single element for snapshot/historical relations, appending
  for rollback/temporal relations; a no-op when ``I`` is unbound.

Sequencing ``C1 ; C2`` composes: ``C[[C1, C2]] d = C[[C2]](C[[C1]] d)``.

Note the paper's exact no-op semantics: ``define_relation`` on a bound
identifier and ``modify_state`` on an unbound identifier "leave the database
unchanged" — including its transaction number.  The strict mode offered by
:class:`ModifyState` and :class:`DefineRelation` (``strict=True``) instead
raises, which implementations typically prefer; the default follows the
paper.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import CommandError, RelationTypeError
from repro.core.database import Database
from repro.core.expressions import Expression
from repro.core.relation import Relation, RelationType, find_type
from repro.historical.state import HistoricalState
from repro.snapshot.state import SnapshotState

__all__ = [
    "Command",
    "DefineRelation",
    "ModifyState",
    "Sequence",
    "execute",
    "sequence",
]


class Command:
    """Base class for commands; the semantic function **C** restricted to
    each construct is its :meth:`execute`."""

    __slots__ = ()

    def execute(self, database: Database) -> Database:
        """``C[[self]] database`` — the resulting database."""
        raise NotImplementedError

    def then(self, next_command: "Command") -> "Sequence":
        """Sequential composition ``self ; next_command``."""
        return Sequence(self, next_command)


class DefineRelation(Command):
    """``define_relation(I, Y)`` (Section 3.5).

    If ``I`` is unbound, bind it to ``(Y, ⟨⟩)`` — the named type and an
    empty state sequence — and increment the database's transaction number.
    If ``I`` is already bound, leave the database unchanged (or raise, in
    strict mode).
    """

    __slots__ = ("identifier", "rtype", "strict")

    def __init__(
        self,
        identifier: str,
        rtype: RelationType | str,
        strict: bool = False,
    ) -> None:
        if not identifier or not isinstance(identifier, str):
            raise CommandError(
                f"define_relation requires an identifier, got {identifier!r}"
            )
        if isinstance(rtype, str):
            rtype = RelationType.from_name(rtype)
        self.identifier = identifier
        self.rtype = rtype
        self.strict = strict

    def execute(self, database: Database) -> Database:
        if database.state.is_bound(self.identifier):
            if self.strict:
                raise CommandError(
                    f"define_relation: {self.identifier!r} is already "
                    "defined"
                )
            return database
        new_relation = Relation(self.rtype, ())
        return database.with_binding(
            self.identifier,
            new_relation,
            database.transaction_number + 1,
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DefineRelation)
            and self.identifier == other.identifier
            and self.rtype == other.rtype
        )

    def __hash__(self) -> int:
        return hash(("DefineRelation", self.identifier, self.rtype))

    def __repr__(self) -> str:
        return f"define_relation({self.identifier}, {self.rtype.value})"


class ModifyState(Command):
    """``modify_state(I, E)`` (Sections 3.5 and 4).

    Evaluate ``E`` on the current database to produce a state, pair it with
    transaction number ``n + 1``, and install it in relation ``I``:
    *replacing* the single element for snapshot and historical relations,
    *appending* for rollback and temporal relations.  If ``I`` is unbound,
    leave the database unchanged (or raise, in strict mode).

    Append, delete and replace (Quel-style updates) are all special cases
    obtained by choosing ``E`` appropriately — see :mod:`repro.quel`.
    """

    __slots__ = ("identifier", "expression", "strict", "memoize")

    def __init__(
        self,
        identifier: str,
        expression: Expression,
        strict: bool = False,
        memoize: bool = False,
    ) -> None:
        if not identifier or not isinstance(identifier, str):
            raise CommandError(
                f"modify_state requires an identifier, got {identifier!r}"
            )
        if not isinstance(expression, Expression):
            raise CommandError(
                f"modify_state requires an Expression, got {expression!r}"
            )
        self.identifier = identifier
        self.expression = expression
        self.strict = strict
        #: Evaluate the expression with common-subexpression elimination
        #: (observationally identical; helpful for update expressions
        #: that repeat a large source subtree, e.g. E − σ_F(E)).
        self.memoize = memoize

    def execute(self, database: Database) -> Database:
        relation = database.lookup(self.identifier)
        if relation is None:
            if self.strict:
                raise CommandError(
                    f"modify_state: {self.identifier!r} is not defined"
                )
            return database
        # E is evaluated against the database *before* the change; the new
        # state is stamped with transaction number n + 1.
        if self.memoize:
            from repro.core.expressions import evaluate_memoized

            new_state = evaluate_memoized(self.expression, database)
        else:
            new_state = self.expression.evaluate(database)
        rtype = find_type(relation, database.transaction_number)
        new_state = self._resolve_empty_set(relation, rtype, new_state)
        self._check_state_kind(rtype, new_state)
        next_txn = database.transaction_number + 1
        return database.with_binding(
            self.identifier,
            relation.with_new_state(new_state, next_txn),
            next_txn,
        )

    def _resolve_empty_set(
        self, relation: Relation, rtype: RelationType, state: object
    ):
        """Give the paper's untyped ∅ a schema before it is stored.

        The expression may denote ∅ (e.g. ``ρ(R, now) − ρ(R, now)`` via a
        rollback on an empty relation).  Our states are typed by a schema,
        so we borrow the schema of the relation's most recent state; if
        the relation has never had a state, storing ∅ carries no
        information and we reject it with a clear error.
        """
        from repro.core.expressions import is_empty_set

        if not is_empty_set(state):
            return state
        if relation.history_length == 0:
            raise CommandError(
                f"modify_state({self.identifier!r}, ...): the expression "
                "denotes the untyped empty set and the relation has no "
                "prior state to take a schema from; use an explicit "
                "empty constant state instead"
            )
        latest = relation.current_state
        if isinstance(latest, HistoricalState):
            return HistoricalState.empty(latest.schema)
        assert isinstance(latest, SnapshotState)
        return SnapshotState.empty(latest.schema)

    @staticmethod
    def _check_state_kind(rtype: RelationType, state: object) -> None:
        if rtype.stores_valid_time and not isinstance(
            state, HistoricalState
        ):
            raise RelationTypeError(
                f"modify_state on a {rtype.value} relation requires an "
                "expression denoting an historical state, got "
                f"{type(state).__name__}"
            )
        if not rtype.stores_valid_time and not isinstance(
            state, SnapshotState
        ):
            raise RelationTypeError(
                f"modify_state on a {rtype.value} relation requires an "
                "expression denoting a snapshot state, got "
                f"{type(state).__name__}"
            )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ModifyState)
            and self.identifier == other.identifier
            and self.expression == other.expression
        )

    def __hash__(self) -> int:
        return hash(("ModifyState", self.identifier, self.expression))

    def __repr__(self) -> str:
        return f"modify_state({self.identifier}, {self.expression!r})"


class Sequence(Command):
    """``C1 ; C2`` — ``C[[C1, C2]] d ≜ C[[C2]](C[[C1]] d)`` (Section 3.5)."""

    __slots__ = ("first", "second")

    def __init__(self, first: Command, second: Command) -> None:
        self.first = first
        self.second = second

    def execute(self, database: Database) -> Database:
        return self.second.execute(self.first.execute(database))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Sequence)
            and self.first == other.first
            and self.second == other.second
        )

    def __hash__(self) -> int:
        return hash(("Sequence", self.first, self.second))

    def __repr__(self) -> str:
        return f"{self.first!r}; {self.second!r}"


def sequence(commands: Iterable[Command]) -> Command:
    """Fold a non-empty iterable of commands into :class:`Sequence`
    nodes.

    The tree is balanced rather than left- or right-nested: sequential
    composition is associative (``C[[C1, C2]] d = C[[C2]](C[[C1]] d)``),
    so the shape is semantically irrelevant, and a balanced shape keeps
    the execution recursion depth at O(log n) for long sentences.
    """
    items = list(commands)
    if not items:
        raise CommandError("a command sequence must be non-empty")

    def build(lo: int, hi: int) -> Command:
        if hi - lo == 1:
            return items[lo]
        mid = (lo + hi) // 2
        return Sequence(build(lo, mid), build(mid, hi))

    return build(0, len(items))


def execute(command: Command, database: Database) -> Database:
    """The semantic function **C** as a standalone entry point:
    ``execute(c, d)`` is ``C[[c]] d``."""
    return command.execute(database)
