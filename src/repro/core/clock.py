"""Mapping transaction numbers to wall-clock time.

The paper (Section 3.2) fixes transaction *numbers* as the time-stamps of
the semantics, noting that "implementations may use some other time, such
as the begin transaction time ... However, such implementations should
preserve the semantics of commit transaction time as specified here."
Users, though, ask "what did the database say last Tuesday?" — a
wall-clock question.

:class:`TransactionClock` is the bridge: it records the (strictly
increasing) wall-clock commit instant of each transaction number, so an
``AS OF <instant>`` query resolves to the largest transaction committed
at or before that instant, and then the ordinary rollback operator takes
over.  Instants are arbitrary comparable numbers (seconds, millis, a test
counter) — the clock imposes no unit.
"""

from __future__ import annotations

import bisect
from typing import Optional

from repro.errors import RollbackError
from repro.core.database import Database
from repro.core.expressions import Rollback
from repro.core.txn import TransactionNumber

__all__ = ["TransactionClock"]


class TransactionClock:
    """An append-only log of (transaction number, commit instant) pairs.

    Both components must be strictly increasing — transaction numbers by
    the paper's semantics, instants because commit time advances.
    """

    def __init__(self) -> None:
        self._txns: list[TransactionNumber] = []
        self._instants: list = []

    def record(self, txn: TransactionNumber, instant) -> None:
        """Record that transaction ``txn`` committed at ``instant``."""
        if self._txns and txn <= self._txns[-1]:
            raise RollbackError(
                f"transaction {txn} is not after the last recorded "
                f"transaction {self._txns[-1]}"
            )
        if self._instants and not instant > self._instants[-1]:
            raise RollbackError(
                f"instant {instant!r} is not after the last recorded "
                f"instant {self._instants[-1]!r}"
            )
        self._txns.append(txn)
        self._instants.append(instant)

    def __len__(self) -> int:
        return len(self._txns)

    # -- resolution ----------------------------------------------------------

    def txn_as_of(self, instant) -> Optional[TransactionNumber]:
        """The largest transaction committed at or before ``instant``,
        or None when nothing had committed yet."""
        index = bisect.bisect_right(self._instants, instant)
        if index == 0:
            return None
        return self._txns[index - 1]

    def instant_of(self, txn: TransactionNumber):
        """The recorded commit instant of ``txn`` (exact match)."""
        index = bisect.bisect_left(self._txns, txn)
        if index == len(self._txns) or self._txns[index] != txn:
            raise RollbackError(
                f"transaction {txn} has no recorded commit instant"
            )
        return self._instants[index]

    # -- the AS OF query -----------------------------------------------------------

    def rollback_as_of(
        self, database: Database, identifier: str, instant
    ):
        """``ρ(identifier, N)`` where ``N`` is the transaction current at
        the wall-clock ``instant``.  Raises when the instant predates
        every recorded commit."""
        txn = self.txn_as_of(instant)
        if txn is None:
            raise RollbackError(
                f"no transaction had committed at instant {instant!r}"
            )
        return Rollback(identifier, txn).evaluate(database)
