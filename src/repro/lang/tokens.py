"""Token definitions for the concrete syntax."""

from __future__ import annotations

import enum
from typing import Any

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType(enum.Enum):
    """Lexical categories."""

    IDENT = "identifier"
    INT = "integer"
    STRING = "string"
    KEYWORD = "keyword"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    AT = "@"
    PLUS = "+"
    EQ = "="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    EOF = "end of input"


#: Reserved words.  Everything else alphanumeric is an identifier.
KEYWORDS = frozenset(
    {
        # commands
        "define_relation",
        "modify_state",
        # relation types (the TYPE domain)
        "snapshot",
        "rollback",
        "historical",
        "temporal",
        # expression operators
        "union",
        "minus",
        "times",
        "project",
        "select",
        "derive",
        # constants
        "state",
        "forever",
        "now",
        "true",
        "false",
        # attribute domains
        "integer",
        "string",
        "number",
        "boolean",
        "any",
        # predicate connectives
        "and",
        "or",
        "not",
        # temporal expressions (the V domain)
        "valid",
        "first",
        "last",
        "intersect",
        "extend",
        "shift",
        "periods",
        # temporal predicates (the G domain)
        "precedes",
        "overlaps",
        "contains",
        "meets",
        "equals",
        "nonempty",
        "validat",
    }
)


class Token:
    """A lexed token with its source position (for error messages)."""

    __slots__ = ("type", "value", "position")

    def __init__(self, type_: TokenType, value: Any, position: int) -> None:
        self.type = type_
        self.value = value
        self.position = position

    def is_keyword(self, word: str) -> bool:
        """True iff this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == word

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return self.type is other.type and self.value == other.value

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, @{self.position})"
