"""Pretty-printing of expression and command ASTs back to concrete syntax.

``parse_expression(format_expression(e))`` round-trips for every expression
the parser can produce from constants the printer can render; the test
suite checks this property.
"""

from __future__ import annotations

from repro.errors import ExpressionError
from repro.core.commands import Command, DefineRelation, ModifyState, Sequence
from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Expression,
    Product,
    Project,
    Rollback,
    Select,
    Union,
)
from repro.core.txn import is_now
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.historical.temporal_exprs import (
    Extend,
    First,
    Intersect,
    Last,
    Shift,
    TemporalConstant,
    TemporalExpression,
    ValidTime,
    Union as TemporalUnion,
)
from repro.historical.predicates import (
    Contains,
    Equals,
    Meets,
    NonEmpty,
    Overlaps,
    Precedes,
    TemporalAnd,
    TemporalNot,
    TemporalOr,
    TemporalPredicate,
    ValidAt,
)
from repro.snapshot.attributes import ANY, Attribute
from repro.snapshot.predicates import (
    And,
    AttributeRef,
    Comparison,
    FalsePredicate,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.snapshot.state import SnapshotState

__all__ = ["format_expression", "format_command", "format_predicate"]

_DOMAIN_KEYWORDS = {
    "integer": "integer",
    "string": "string",
    "number": "number",
    "boolean": "boolean",
    "any": "any",
}


def format_command(command: Command) -> str:
    """Render a command AST to concrete syntax."""
    if isinstance(command, DefineRelation):
        return f"define_relation({command.identifier}, {command.rtype.value})"
    if isinstance(command, ModifyState):
        return (
            f"modify_state({command.identifier}, "
            f"{format_expression(command.expression)})"
        )
    if isinstance(command, Sequence):
        return (
            f"{format_command(command.first)}; "
            f"{format_command(command.second)}"
        )
    raise ExpressionError(f"cannot format command {command!r}")


def format_expression(expression: Expression) -> str:
    """Render an expression AST to concrete syntax."""
    if isinstance(expression, Const):
        return _format_const(expression)
    if isinstance(expression, Union):
        return (
            f"({format_expression(expression.left)} union "
            f"{format_expression(expression.right)})"
        )
    if isinstance(expression, Difference):
        return (
            f"({format_expression(expression.left)} minus "
            f"{format_expression(expression.right)})"
        )
    if isinstance(expression, Product):
        return (
            f"({format_expression(expression.left)} times "
            f"{format_expression(expression.right)})"
        )
    if isinstance(expression, Project):
        names = ", ".join(expression.names)
        return f"project [{names}] ({format_expression(expression.operand)})"
    if isinstance(expression, Select):
        return (
            f"select [{format_predicate(expression.predicate)}] "
            f"({format_expression(expression.operand)})"
        )
    if isinstance(expression, Derive):
        g = (
            format_g_predicate(expression.predicate)
            if expression.predicate is not None
            else ""
        )
        v = (
            format_v_expression(expression.expression)
            if expression.expression is not None
            else ""
        )
        return (
            f"derive [{g} ; {v}] "
            f"({format_expression(expression.operand)})"
        )
    if isinstance(expression, Rollback):
        numeral = "now" if is_now(expression.numeral) else str(
            expression.numeral
        )
        return f"rollback({expression.identifier}, {numeral})"
    raise ExpressionError(f"cannot format expression {expression!r}")


def _format_const(expression: Const) -> str:
    state = expression.state
    schema_text = ", ".join(
        _format_attribute(a) for a in state.schema.attributes
    )
    if isinstance(state, HistoricalState):
        rows = []
        for t in sorted(
            state.tuples, key=lambda t: tuple(map(repr, t.value.values))
        ):
            values = ", ".join(_format_literal(v) for v in t.value.values)
            rows.append(f"({values}) @ {_format_periods(t.valid_time)}")
        body = ", ".join(rows)
        return f"historical state ({schema_text}) {{ {body} }}"
    assert isinstance(state, SnapshotState)
    rows = []
    for t in sorted(state.tuples, key=lambda t: tuple(map(repr, t.values))):
        values = ", ".join(_format_literal(v) for v in t.values)
        rows.append(f"({values})")
    body = ", ".join(rows)
    return f"state ({schema_text}) {{ {body} }}"


def _format_attribute(attribute: Attribute) -> str:
    if attribute.domain == ANY:
        return attribute.name
    keyword = _DOMAIN_KEYWORDS.get(attribute.domain.name)
    if keyword is None:
        # Custom domains have no concrete-syntax spelling; degrade to any.
        return attribute.name
    return f"{attribute.name}: {keyword}"


def _format_literal(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    raise ExpressionError(
        f"value {value!r} has no concrete-syntax literal form"
    )


def _format_periods(periods: PeriodSet) -> str:
    return " + ".join(
        f"[{i.start}, {'forever' if i.is_unbounded else i.end})"
        for i in periods.intervals
    )


def format_predicate(predicate: Predicate) -> str:
    """Render an ``F``-domain predicate to concrete syntax."""
    if isinstance(predicate, TruePredicate):
        return "true"
    if isinstance(predicate, FalsePredicate):
        return "false"
    if isinstance(predicate, Comparison):
        return (
            f"{_format_term(predicate.left)} {predicate.op} "
            f"{_format_term(predicate.right)}"
        )
    if isinstance(predicate, And):
        return (
            f"({format_predicate(predicate.left)} and "
            f"{format_predicate(predicate.right)})"
        )
    if isinstance(predicate, Or):
        return (
            f"({format_predicate(predicate.left)} or "
            f"{format_predicate(predicate.right)})"
        )
    if isinstance(predicate, Not):
        return f"not ({format_predicate(predicate.operand)})"
    raise ExpressionError(f"cannot format predicate {predicate!r}")


def _format_term(term) -> str:
    if isinstance(term, AttributeRef):
        return term.name
    if isinstance(term, Literal):
        return _format_literal(term.value)
    raise ExpressionError(f"cannot format term {term!r}")


def format_v_expression(expression: TemporalExpression) -> str:
    """Render a ``V``-domain temporal expression to concrete syntax."""
    if isinstance(expression, ValidTime):
        return "valid"
    if isinstance(expression, TemporalConstant):
        return f"periods {_format_periods(expression.periods)}"
    if isinstance(expression, First):
        return f"first({format_v_expression(expression.operand)})"
    if isinstance(expression, Last):
        return f"last({format_v_expression(expression.operand)})"
    if isinstance(expression, Intersect):
        return (
            f"intersect({format_v_expression(expression.left)}, "
            f"{format_v_expression(expression.right)})"
        )
    if isinstance(expression, TemporalUnion):
        return (
            f"union({format_v_expression(expression.left)}, "
            f"{format_v_expression(expression.right)})"
        )
    if isinstance(expression, Extend):
        return (
            f"extend({format_v_expression(expression.left)}, "
            f"{format_v_expression(expression.right)})"
        )
    if isinstance(expression, Shift):
        return (
            f"shift({format_v_expression(expression.operand)}, "
            f"{expression.delta})"
        )
    raise ExpressionError(
        f"cannot format temporal expression {expression!r}"
    )


_G_SYMBOLS = {
    Precedes: "precedes",
    Overlaps: "overlaps",
    Contains: "contains",
    Meets: "meets",
    Equals: "equals",
}


def format_g_predicate(predicate: TemporalPredicate) -> str:
    """Render a ``G``-domain temporal predicate to concrete syntax."""
    for cls, symbol in _G_SYMBOLS.items():
        if isinstance(predicate, cls):
            return (
                f"{format_v_expression(predicate.left)} {symbol} "
                f"{format_v_expression(predicate.right)}"
            )
    if isinstance(predicate, NonEmpty):
        return f"nonempty({format_v_expression(predicate.operand)})"
    if isinstance(predicate, ValidAt):
        return (
            f"validat({format_v_expression(predicate.operand)}, "
            f"{predicate.chronon})"
        )
    if isinstance(predicate, TemporalAnd):
        return (
            f"({format_g_predicate(predicate.left)} and "
            f"{format_g_predicate(predicate.right)})"
        )
    if isinstance(predicate, TemporalOr):
        return (
            f"({format_g_predicate(predicate.left)} or "
            f"{format_g_predicate(predicate.right)})"
        )
    if isinstance(predicate, TemporalNot):
        return f"not ({format_g_predicate(predicate.operand)})"
    raise ExpressionError(
        f"cannot format temporal predicate {predicate!r}"
    )
