"""A concrete syntax for the paper's language.

The paper specifies its syntax abstractly in BNF (Section 3.1) and leaves
lower-level constituents (identifiers, snapshot states, boolean expressions)
to a technical report.  This package supplies a complete ASCII concrete
syntax, a lexer and recursive-descent parser for it, and an interactive
:class:`Session` that maintains a database and executes parsed commands.

Concrete-syntax summary::

    define_relation(faculty, rollback);
    modify_state(faculty,
        state (name: string, rank: string)
              { ("merrie", "assistant"), ("tom", "full") });
    modify_state(faculty,
        rollback(faculty, now)
        union state (name: string, rank: string) { ("jane", "assistant") });

Expression operators: ``union``, ``minus``, ``times``,
``project [a, b] (E)``, ``select [F] (E)``, ``derive [G ; V] (E)``,
``rollback(I, N)`` with ``N`` an integer or ``now`` (the paper's ``∞``).

Historical constants attach valid time to each row with ``@``::

    state (name: string) { ("merrie") @ [0, 10) + [15, forever) }

The semantic functions **S** (snapshot-state denotation) and **H**
(historical-state denotation) of the paper are realized by the parser's
constant rules; **N** (numeral denotation) and **Y** (type denotation) by
the numeral and type rules.
"""

from repro.lang.tokens import Token, TokenType
from repro.lang.lexer import tokenize
from repro.lang.parser import (
    parse_sentence,
    parse_command,
    parse_expression,
)
from repro.lang.session import Session
from repro.lang.ast_printer import format_expression, format_command

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "parse_sentence",
    "parse_command",
    "parse_expression",
    "Session",
    "format_expression",
    "format_command",
]
