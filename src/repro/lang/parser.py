"""Recursive-descent parser for the concrete syntax.

The parser produces the *semantic* ASTs directly — it builds
:class:`repro.core.expressions.Expression` and
:class:`repro.core.commands.Command` nodes, so it simultaneously realizes
the paper's syntactic domains and the semantic functions **S**, **H**,
**N** and **Y** that map alphanumeric representations into their
denotations.

Grammar (see :mod:`repro.lang` for the surface summary)::

    sentence   := command (';' command)* [';']
    command    := 'define_relation' '(' IDENT ',' type ')'
                | 'modify_state' '(' IDENT ',' expr ')'
    type       := 'snapshot' | 'rollback' | 'historical' | 'temporal'

    expr       := diff_expr ('union' diff_expr)*
    diff_expr  := prod_expr ('minus' prod_expr)*
    prod_expr  := unary ('times' unary)*
    unary      := 'project' '[' ident_list ']' '(' expr ')'
                | 'select' '[' predicate ']' '(' expr ')'
                | 'derive' '[' [g_pred] ';' [v_expr] ']' '(' expr ')'
                | 'rollback' '(' IDENT ',' numeral ')'
                | constant
                | '(' expr ')'
    numeral    := INT | 'now'

    constant   := 'state' '(' attr_decls ')' '{' [row (',' row)*] '}'
    attr_decls := attr_decl (',' attr_decl)*
    attr_decl  := IDENT [':' domain]
    row        := '(' literal (',' literal)* ')' ['@' periods]
    periods    := interval ('+' interval)*
    interval   := '[' INT ',' (INT | 'forever') ')'

    predicate  := or_pred
    or_pred    := and_pred ('or' and_pred)*
    and_pred   := not_pred ('and' not_pred)*
    not_pred   := 'not' not_pred | comparison | 'true' | 'false'
                | '(' predicate ')'
    comparison := operand cmp_op operand
    operand    := IDENT | literal

    v_expr     := 'valid' | 'periods' periods
                | ('first'|'last') '(' v_expr ')'
                | ('intersect'|'union'|'extend') '(' v_expr ',' v_expr ')'
                | 'shift' '(' v_expr ',' INT ')'
    g_pred     := g_or
    g_or       := g_and ('or' g_and)*
    g_and      := g_not ('and' g_not)*
    g_not      := 'not' g_not | g_atom | '(' g_pred ')'
    g_atom     := v_expr ('precedes'|'overlaps'|'contains'|'meets'|'equals') v_expr
                | 'nonempty' '(' v_expr ')'
                | 'validat' '(' v_expr ',' INT ')'

A ``state`` constant with at least one ``@`` clause (or an empty body
preceded by the keyword ``historical``) denotes an historical state; rows
of an historical constant without an explicit ``@`` default to valid
``[0, forever)``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ParseError
from repro.core.commands import Command, DefineRelation, ModifyState
from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Expression,
    Product,
    Project,
    Rollback,
    Select,
    Union,
)
from repro.core.txn import NOW
from repro.core.relation import RelationType
from repro.historical.chronons import FOREVER
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.historical.temporal_exprs import (
    Extend,
    First,
    Intersect,
    Last,
    Shift,
    TemporalConstant,
    TemporalExpression,
    ValidTime,
    Union as TemporalUnion,
)
from repro.historical.predicates import (
    Contains,
    Equals,
    Meets,
    NonEmpty,
    Overlaps,
    Precedes,
    TemporalAnd,
    TemporalNot,
    TemporalOr,
    TemporalPredicate,
    ValidAt,
)
from repro.historical.tuples import HistoricalTuple
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenType
from repro.snapshot.attributes import (
    ANY,
    BOOLEAN,
    INTEGER,
    NUMBER,
    STRING,
    Attribute,
    Domain,
)
from repro.snapshot.predicates import (
    AttributeRef,
    Comparison,
    FalsePredicate,
    Literal,
    Predicate,
    TruePredicate,
    And,
    Not,
    Or,
)
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

__all__ = ["parse_sentence", "parse_command", "parse_expression", "Parser"]

_DOMAINS: dict[str, Domain] = {
    "integer": INTEGER,
    "string": STRING,
    "number": NUMBER,
    "boolean": BOOLEAN,
    "any": ANY,
}

_COMPARATOR_TOKENS = {
    TokenType.EQ: "=",
    TokenType.NEQ: "!=",
    TokenType.LT: "<",
    TokenType.LTE: "<=",
    TokenType.GT: ">",
    TokenType.GTE: ">=",
}

_G_COMPARATORS = {
    "precedes": Precedes,
    "overlaps": Overlaps,
    "contains": Contains,
    "meets": Meets,
    "equals": Equals,
}


class Parser:
    """A single-use recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _expect(self, type_: TokenType) -> Token:
        token = self._peek()
        if token.type is not type_:
            raise ParseError(
                f"expected {type_.value!r} but found {token.value!r} "
                f"at position {token.position}",
                token.position,
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(
                f"expected keyword {word!r} but found {token.value!r} "
                f"at position {token.position}",
                token.position,
            )
        return self._advance()

    def _match_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def at_end(self) -> bool:
        """True iff all tokens have been consumed."""
        return self._peek().type is TokenType.EOF

    # -- sentences and commands ------------------------------------------------

    def sentence(self) -> list[Command]:
        """Parse a non-empty ';'-separated command sequence."""
        commands = [self.command()]
        while self._peek().type is TokenType.SEMICOLON:
            self._advance()
            if self.at_end():
                break  # trailing semicolon
            commands.append(self.command())
        self._expect(TokenType.EOF)
        return commands

    def command(self) -> Command:
        """Parse a single command."""
        token = self._peek()
        if token.is_keyword("define_relation"):
            self._advance()
            self._expect(TokenType.LPAREN)
            identifier = self._expect(TokenType.IDENT).value
            self._expect(TokenType.COMMA)
            rtype = self._relation_type()
            self._expect(TokenType.RPAREN)
            return DefineRelation(identifier, rtype)
        if token.is_keyword("modify_state"):
            self._advance()
            self._expect(TokenType.LPAREN)
            identifier = self._expect(TokenType.IDENT).value
            self._expect(TokenType.COMMA)
            expression = self.expression()
            self._expect(TokenType.RPAREN)
            return ModifyState(identifier, expression)
        raise ParseError(
            f"expected a command but found {token.value!r} at position "
            f"{token.position}",
            token.position,
        )

    def _relation_type(self) -> RelationType:
        token = self._advance()
        if token.type is TokenType.KEYWORD and token.value in (
            "snapshot",
            "rollback",
            "historical",
            "temporal",
        ):
            return RelationType.from_name(token.value)
        raise ParseError(
            f"expected a relation type but found {token.value!r} at "
            f"position {token.position}",
            token.position,
        )

    # -- expressions -------------------------------------------------------------

    def expression(self) -> Expression:
        """Parse an algebraic expression (lowest precedence: union)."""
        left = self._diff_expr()
        while self._match_keyword("union"):
            left = Union(left, self._diff_expr())
        return left

    def _diff_expr(self) -> Expression:
        left = self._prod_expr()
        while self._match_keyword("minus"):
            left = Difference(left, self._prod_expr())
        return left

    def _prod_expr(self) -> Expression:
        left = self._unary()
        while self._match_keyword("times"):
            left = Product(left, self._unary())
        return left

    def _unary(self) -> Expression:
        token = self._peek()
        if token.is_keyword("project"):
            self._advance()
            self._expect(TokenType.LBRACKET)
            names = [self._expect(TokenType.IDENT).value]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                names.append(self._expect(TokenType.IDENT).value)
            self._expect(TokenType.RBRACKET)
            self._expect(TokenType.LPAREN)
            operand = self.expression()
            self._expect(TokenType.RPAREN)
            return Project(operand, names)
        if token.is_keyword("select"):
            self._advance()
            self._expect(TokenType.LBRACKET)
            predicate = self.predicate()
            self._expect(TokenType.RBRACKET)
            self._expect(TokenType.LPAREN)
            operand = self.expression()
            self._expect(TokenType.RPAREN)
            return Select(operand, predicate)
        if token.is_keyword("derive"):
            self._advance()
            self._expect(TokenType.LBRACKET)
            g_pred: Optional[TemporalPredicate] = None
            if self._peek().type is not TokenType.SEMICOLON:
                g_pred = self.g_predicate()
            self._expect(TokenType.SEMICOLON)
            v_expr: Optional[TemporalExpression] = None
            if self._peek().type is not TokenType.RBRACKET:
                v_expr = self.v_expression()
            self._expect(TokenType.RBRACKET)
            self._expect(TokenType.LPAREN)
            operand = self.expression()
            self._expect(TokenType.RPAREN)
            return Derive(operand, g_pred, v_expr)
        if token.is_keyword("rollback"):
            self._advance()
            self._expect(TokenType.LPAREN)
            identifier = self._expect(TokenType.IDENT).value
            self._expect(TokenType.COMMA)
            numeral = self._numeral()
            self._expect(TokenType.RPAREN)
            return Rollback(identifier, numeral)
        if token.is_keyword("state") or token.is_keyword("historical"):
            return self._constant()
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self.expression()
            self._expect(TokenType.RPAREN)
            return inner
        raise ParseError(
            f"expected an expression but found {token.value!r} at "
            f"position {token.position}",
            token.position,
        )

    def _numeral(self) -> Any:
        """The semantic function **N**: numeral syntax to denotation
        (integer or the ``∞`` symbol, spelled ``now``)."""
        token = self._advance()
        if token.is_keyword("now"):
            return NOW
        if token.type is TokenType.INT:
            return token.value
        raise ParseError(
            f"expected a transaction numeral but found {token.value!r} "
            f"at position {token.position}",
            token.position,
        )

    # -- constants (the semantic functions S and H) -----------------------------

    def _constant(self) -> Const:
        force_historical = self._match_keyword("historical")
        self._expect_keyword("state")
        self._expect(TokenType.LPAREN)
        schema = self._schema()
        self._expect(TokenType.RPAREN)
        self._expect(TokenType.LBRACE)
        rows: list[tuple[tuple, Optional[PeriodSet]]] = []
        if self._peek().type is not TokenType.RBRACE:
            rows.append(self._row(schema))
            while self._peek().type is TokenType.COMMA:
                self._advance()
                rows.append(self._row(schema))
        self._expect(TokenType.RBRACE)
        has_valid_time = force_historical or any(
            periods is not None for _, periods in rows
        )
        if has_valid_time:
            tuples = [
                HistoricalTuple(
                    values,
                    periods if periods is not None else PeriodSet.always(),
                    schema=schema,
                )
                for values, periods in rows
            ]
            return Const(HistoricalState(schema, tuples))
        return Const(
            SnapshotState(schema, [values for values, _ in rows])
        )

    def _schema(self) -> Schema:
        attributes = [self._attr_decl()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            attributes.append(self._attr_decl())
        return Schema(attributes)

    def _attr_decl(self) -> Attribute:
        name = self._expect(TokenType.IDENT).value
        domain = ANY
        if self._peek().type is TokenType.COLON:
            self._advance()
            token = self._advance()
            if (
                token.type is not TokenType.KEYWORD
                or token.value not in _DOMAINS
            ):
                raise ParseError(
                    f"unknown attribute domain {token.value!r} at "
                    f"position {token.position}",
                    token.position,
                )
            domain = _DOMAINS[token.value]
        return Attribute(name, domain)

    def _row(self, schema: Schema) -> tuple[tuple, Optional[PeriodSet]]:
        self._expect(TokenType.LPAREN)
        values = [self._literal()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            values.append(self._literal())
        self._expect(TokenType.RPAREN)
        if len(values) != schema.degree:
            raise ParseError(
                f"row has {len(values)} values but the schema has degree "
                f"{schema.degree}"
            )
        periods: Optional[PeriodSet] = None
        if self._peek().type is TokenType.AT:
            self._advance()
            periods = self._periods()
        return tuple(values), periods

    def _periods(self) -> PeriodSet:
        intervals = [self._interval()]
        while self._peek().type is TokenType.PLUS:
            self._advance()
            intervals.append(self._interval())
        return PeriodSet(intervals)

    def _interval(self) -> tuple:
        self._expect(TokenType.LBRACKET)
        start = self._expect(TokenType.INT).value
        self._expect(TokenType.COMMA)
        token = self._advance()
        if token.is_keyword("forever"):
            end: Any = FOREVER
        elif token.type is TokenType.INT:
            end = token.value
        else:
            raise ParseError(
                f"expected an interval end but found {token.value!r} at "
                f"position {token.position}",
                token.position,
            )
        self._expect(TokenType.RPAREN)
        return (start, end)

    def _literal(self) -> Any:
        token = self._advance()
        if token.type is TokenType.INT:
            return token.value
        if token.type is TokenType.STRING:
            return token.value
        if token.is_keyword("true"):
            return True
        if token.is_keyword("false"):
            return False
        raise ParseError(
            f"expected a literal but found {token.value!r} at position "
            f"{token.position}",
            token.position,
        )

    # -- predicates (the F domain) ------------------------------------------------

    def predicate(self) -> Predicate:
        """Parse a boolean expression of the paper's domain ``F``."""
        left = self._and_pred()
        while self._match_keyword("or"):
            left = Or(left, self._and_pred())
        return left

    def _and_pred(self) -> Predicate:
        left = self._not_pred()
        while self._match_keyword("and"):
            left = And(left, self._not_pred())
        return left

    def _not_pred(self) -> Predicate:
        token = self._peek()
        if token.is_keyword("not"):
            self._advance()
            return Not(self._not_pred())
        if token.is_keyword("true"):
            self._advance()
            return TruePredicate()
        if token.is_keyword("false"):
            self._advance()
            return FalsePredicate()
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self.predicate()
            self._expect(TokenType.RPAREN)
            return inner
        return self._comparison()

    def _comparison(self) -> Comparison:
        left = self._operand()
        op_token = self._advance()
        op = _COMPARATOR_TOKENS.get(op_token.type)
        if op is None:
            raise ParseError(
                f"expected a comparator but found {op_token.value!r} at "
                f"position {op_token.position}",
                op_token.position,
            )
        right = self._operand()
        return Comparison(left, op, right)

    def _operand(self) -> Any:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return AttributeRef(token.value)
        return Literal(self._literal())

    # -- temporal expressions (the V domain) ---------------------------------------

    def v_expression(self) -> TemporalExpression:
        """Parse a temporal expression of the paper's domain ``V``."""
        token = self._peek()
        if token.is_keyword("valid"):
            self._advance()
            return ValidTime()
        if token.is_keyword("periods"):
            self._advance()
            return TemporalConstant(self._periods())
        if token.is_keyword("first") or token.is_keyword("last"):
            self._advance()
            self._expect(TokenType.LPAREN)
            inner = self.v_expression()
            self._expect(TokenType.RPAREN)
            return First(inner) if token.value == "first" else Last(inner)
        if (
            token.is_keyword("intersect")
            or token.is_keyword("union")
            or token.is_keyword("extend")
        ):
            self._advance()
            self._expect(TokenType.LPAREN)
            left = self.v_expression()
            self._expect(TokenType.COMMA)
            right = self.v_expression()
            self._expect(TokenType.RPAREN)
            if token.value == "intersect":
                return Intersect(left, right)
            if token.value == "union":
                return TemporalUnion(left, right)
            return Extend(left, right)
        if token.is_keyword("shift"):
            self._advance()
            self._expect(TokenType.LPAREN)
            inner = self.v_expression()
            self._expect(TokenType.COMMA)
            delta = self._expect(TokenType.INT).value
            self._expect(TokenType.RPAREN)
            return Shift(inner, delta)
        raise ParseError(
            f"expected a temporal expression but found {token.value!r} "
            f"at position {token.position}",
            token.position,
        )

    # -- temporal predicates (the G domain) -----------------------------------------

    def g_predicate(self) -> TemporalPredicate:
        """Parse a temporal predicate of the paper's domain ``G``."""
        left = self._g_and()
        while self._match_keyword("or"):
            left = TemporalOr(left, self._g_and())
        return left

    def _g_and(self) -> TemporalPredicate:
        left = self._g_not()
        while self._match_keyword("and"):
            left = TemporalAnd(left, self._g_not())
        return left

    def _g_not(self) -> TemporalPredicate:
        token = self._peek()
        if token.is_keyword("not"):
            self._advance()
            return TemporalNot(self._g_not())
        if token.is_keyword("nonempty"):
            self._advance()
            self._expect(TokenType.LPAREN)
            inner = self.v_expression()
            self._expect(TokenType.RPAREN)
            return NonEmpty(inner)
        if token.is_keyword("validat"):
            self._advance()
            self._expect(TokenType.LPAREN)
            inner = self.v_expression()
            self._expect(TokenType.COMMA)
            chronon = self._expect(TokenType.INT).value
            self._expect(TokenType.RPAREN)
            return ValidAt(inner, chronon)
        if token.type is TokenType.LPAREN:
            # Could be a parenthesized g-predicate; V expressions never
            # start with '(' so this is unambiguous.
            self._advance()
            inner_pred = self.g_predicate()
            self._expect(TokenType.RPAREN)
            return inner_pred
        return self._g_atom()

    def _g_atom(self) -> TemporalPredicate:
        left = self.v_expression()
        token = self._advance()
        if (
            token.type is TokenType.KEYWORD
            and token.value in _G_COMPARATORS
        ):
            right = self.v_expression()
            return _G_COMPARATORS[token.value](left, right)
        raise ParseError(
            f"expected a temporal comparator but found {token.value!r} "
            f"at position {token.position}",
            token.position,
        )


def parse_sentence(source: str) -> list[Command]:
    """Parse a full sentence (a ';'-separated command sequence)."""
    return Parser(tokenize(source)).sentence()


def parse_command(source: str) -> Command:
    """Parse exactly one command."""
    parser = Parser(tokenize(source))
    command = parser.command()
    if parser._peek().type is TokenType.SEMICOLON:
        parser._advance()
    parser._expect(TokenType.EOF)
    return command


def parse_expression(source: str) -> Expression:
    """Parse exactly one algebraic expression."""
    parser = Parser(tokenize(source))
    expression = parser.expression()
    parser._expect(TokenType.EOF)
    return expression
