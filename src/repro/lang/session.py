"""Interactive sessions over the language.

A :class:`Session` holds a current :class:`~repro.core.database.Database`
and incrementally executes commands against it.  Because the paper's
sequencing semantics is plain function composition
(``C[[C1, C2]] d = C[[C2]](C[[C1]] d)``), executing commands one at a time
against a session is observationally identical to evaluating the whole
prefix as one sentence starting from the empty database — a property the
test suite verifies.

The session also offers :meth:`Session.query`, which parses and evaluates a
side-effect-free expression (the "display the contents of a relation" use
the paper mentions as a command example), and :meth:`Session.display`,
which renders a relation's current state as an aligned text table.

Repeated queries — the hot production read shape — run through a full
plan pipeline: the source text is normalized and memoized, the parsed
tree is rewritten by the cost-guided optimizer under statistics
collected from whatever is serving reads, and the winning plan is
compiled into a flat :class:`~repro.core.compile.CompiledPlan`.  Cached
plans are tagged with the transaction number they were planned at and
re-planned when the database moves on (statistics and the data
dictionary may have shifted); in the steady read-heavy state every
``query`` call is one dict probe plus one compiled-plan execution.
:meth:`Session.explain` renders the before/after story for any query.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional, Union as TypingUnion

from repro.core.commands import Command
from repro.core.compile import CompiledPlan, compile_expression
from repro.core.database import EMPTY_DATABASE, Database
from repro.core.expressions import Expression, Rollback
from repro.core.txn import NOW
from repro.historical.state import HistoricalState
from repro.lang.parser import parse_command, parse_expression, parse_sentence
from repro.obsv import registry as _obsv
from repro.optimizer.cost import explain as explain_plan
from repro.optimizer.rewriter import CostGuidedRewriter
from repro.optimizer.stats import Statistics, collect_statistics
from repro.snapshot.state import SnapshotState

__all__ = ["Session"]

State = TypingUnion[SnapshotState, HistoricalState]


class _CachedPlan:
    """One plan-cache entry: the parsed tree plus the optimized and
    compiled forms planned at a particular transaction number."""

    __slots__ = ("expression", "optimized", "compiled", "txn")

    def __init__(self, expression: Expression) -> None:
        self.expression = expression
        self.optimized: Optional[Expression] = None
        self.compiled: Optional[CompiledPlan] = None
        self.txn: Optional[int] = None


class Session:
    """A mutable cursor over an immutable database value.

    The session itself is the only stateful object; each executed command
    replaces :attr:`database` with the new database value the command
    semantics denotes.  All past database values remain valid (and the
    session keeps the trail in :attr:`history` for inspection).
    """

    #: Default bound on the retained database-value trail.  Database
    #: values share structure but under full-copy semantics a long
    #: session retaining every value is O(n²) memory; the bound keeps
    #: the recent trail inspectable without the leak.
    DEFAULT_HISTORY_LIMIT = 256

    #: Default capacity of the parsed-expression (plan) cache.
    DEFAULT_PLAN_CACHE_CAPACITY = 128

    def __init__(
        self,
        durable_dir: "str | None" = None,
        *,
        fsync: str = "batch(64, 100)",
        checkpoint_every: int = 256,
        history_limit: "int | None" = DEFAULT_HISTORY_LIMIT,
        plan_cache_capacity: int = DEFAULT_PLAN_CACHE_CAPACITY,
        optimize: bool = True,
        replica_of=None,
        max_lag: "int | None" = None,
        on_stale: str = "reject",
        retry=None,
        shards: "int | None" = None,
        partitioner=None,
        cluster=None,
        isolation: str = "serial",
    ) -> None:
        if isolation not in ("serial", "si", "ssi"):
            raise ValueError(
                f"isolation must be 'serial', 'si' or 'ssi', got "
                f"{isolation!r}"
            )
        if isolation != "serial" and (
            durable_dir is not None
            or replica_of is not None
            or shards is not None
            or cluster is not None
        ):
            raise ValueError(
                "isolation='si'/'ssi' (multi-writer MVCC) applies to "
                "plain in-memory sessions; durable, replica, sharded "
                "and cluster sessions serialize writes through their "
                "WAL/coordinator commit path (isolation='serial')"
            )
        if history_limit is not None and history_limit < 1:
            raise ValueError(
                f"history_limit must be ≥ 1 (the current database is "
                f"always retained) or None for unbounded, got "
                f"{history_limit}"
            )
        if plan_cache_capacity < 0:
            raise ValueError(
                f"plan_cache_capacity must be ≥ 0, got "
                f"{plan_cache_capacity}"
            )
        if cluster is not None:
            if shards is not None:
                raise ValueError(
                    "cluster=ClusterConfig(...) already names the shard "
                    "count (ClusterConfig(shards=N)); drop the legacy "
                    "shards= kwarg"
                )
            if replica_of is not None:
                raise ValueError(
                    "cluster=ClusterConfig(...) manages its own replica "
                    "sets (ClusterConfig(replicas_per_shard=K)); drop "
                    "the legacy replica_of= kwarg"
                )
            if durable_dir is not None:
                raise ValueError(
                    "cluster sessions place each shard primary under "
                    "the cluster's own directory; pass "
                    "Cluster(config, directory=...) and hand the "
                    "Cluster to cluster= instead of durable_dir="
                )
        if durable_dir is not None and replica_of is not None:
            raise ValueError(
                "a session is a primary (durable_dir=...) or a replica "
                "(replica_of=...), not both"
            )
        if shards is not None and replica_of is not None:
            raise ValueError(
                "a session is sharded (shards=N) or a replica "
                "(replica_of=...), not both; to stack the two, compose "
                "them with cluster=ClusterConfig(shards=N, "
                "replicas_per_shard=K)"
            )
        self._durable = None
        self._replica = None
        self._sharded = None
        self._cluster = None
        if cluster is not None:
            from repro.cluster import Cluster, ClusterConfig

            if isinstance(cluster, Cluster):
                self._cluster = cluster
            elif isinstance(cluster, ClusterConfig):
                self._cluster = Cluster(cluster)
            else:
                raise ValueError(
                    "cluster= must be a ClusterConfig (the usual form) "
                    f"or a prebuilt Cluster, got "
                    f"{type(cluster).__name__}"
                )
            self._database: Database = EMPTY_DATABASE
        elif shards is not None:
            from repro.sharding import ShardedDatabase

            self._sharded = ShardedDatabase(
                shards,
                directory=durable_dir,
                partitioner=partitioner,
                fsync=fsync,
                checkpoint_every=checkpoint_every,
            )
            self._database: Database = EMPTY_DATABASE
        elif replica_of is not None:
            self._replica = self._build_replica(
                replica_of, retry=retry, max_lag=max_lag, on_stale=on_stale
            )
            self._replica.catch_up()
            self._database: Database = self._replica.database
        elif durable_dir is not None:
            from repro.durability import DurableDatabase

            self._durable = DurableDatabase(
                durable_dir,
                fsync=fsync,
                checkpoint_every=checkpoint_every,
            )
            self._database = self._durable.database
        else:
            self._database = EMPTY_DATABASE
        self._isolation = isolation
        self._manager = None
        if isolation != "serial":
            from repro.concurrency.mvcc import MVCCManager

            self._manager = MVCCManager(self._database, isolation)
        self._history: list[Database] = [self._database]
        self._history_limit = history_limit
        self._plan_cache: "OrderedDict[str, _CachedPlan]" = OrderedDict()
        self._plan_cache_capacity = plan_cache_capacity
        self._plan_cache_hits = 0
        self._plan_cache_misses = 0
        self._plan_cache_evictions = 0
        self._optimize = optimize

    @staticmethod
    def _build_replica(source, *, retry, max_lag, on_stale):
        """Accept a Replica, a ReplicationStream, a DurableDatabase, or
        another (durable) Session as the thing to follow."""
        from repro.durability import DurableDatabase
        from repro.replication import PrimaryStream, Replica
        from repro.replication.stream import ReplicationStream

        if isinstance(source, Replica):
            return source
        if isinstance(source, Session):
            if source.durable is None:
                raise ValueError(
                    "replica_of: the source session is purely "
                    "in-memory; only durable sessions publish a WAL "
                    "to replicate"
                )
            source = source.durable
        if isinstance(source, DurableDatabase):
            source = PrimaryStream(source)
        if not isinstance(source, ReplicationStream):
            raise ValueError(
                "replica_of must be a Replica, ReplicationStream, "
                f"DurableDatabase or durable Session, got "
                f"{type(source).__name__}"
            )
        kwargs = {"max_lag": max_lag, "on_stale": on_stale}
        if retry is not None:
            kwargs["retry"] = retry
        return Replica(source, **kwargs)

    @property
    def _coordinator(self):
        """The sharded or cluster coordinator, when this session has
        one — the two expose the same execute/evaluate/as_database
        surface, so dispatch treats them uniformly."""
        return self._cluster if self._cluster is not None else self._sharded

    @property
    def database(self) -> Database:
        """The current database value.

        Sharded and cluster sessions reassemble the global value from
        the shard set on each access (an O(identifiers) walk, not a
        hot-path cost); reads and writes themselves never materialize
        it."""
        coordinator = self._coordinator
        if coordinator is not None:
            self._database = coordinator.as_database()
        elif self._replica is not None:
            self._database = self._replica.database
        return self._database

    @property
    def history(self) -> tuple[Database, ...]:
        """The trail of database values the session has passed through,
        oldest first.  Sessions start the trail at the empty database;
        once more than ``history_limit`` values have accumulated, the
        oldest are dropped (pass ``history_limit=None`` to retain every
        value, the pre-bound behaviour).  Sharded and cluster sessions
        do not retain a trail (the global value is assembled on
        demand): the tuple holds just the current database."""
        if self._coordinator is not None:
            return (self.database,)
        return tuple(self._history)

    @property
    def history_limit(self) -> "int | None":
        """The bound on the retained trail (None = unbounded)."""
        return self._history_limit

    @property
    def transaction_number(self) -> int:
        """The current database's transaction number."""
        coordinator = self._coordinator
        if coordinator is not None:
            return coordinator.transaction_number
        return self.database.transaction_number

    # -- execution -----------------------------------------------------------

    def execute(self, source: str) -> Database:
        """Parse and execute one or more ';'-separated commands; return the
        resulting database."""
        for command in parse_sentence(source):
            self._apply(command)
        return self.database

    def execute_command(self, command: TypingUnion[str, Command]) -> Database:
        """Execute a single command (source text or AST)."""
        if isinstance(command, str):
            command = parse_command(command)
        self._apply(command)
        return self.database

    def execute_many(
        self, batch: Iterable[TypingUnion[str, Command]]
    ) -> Database:
        """Execute a batch of commands (source text or ASTs) as one
        group; returns the resulting database.

        For durable sessions this is *group commit*: every command's WAL
        record is appended under the log's fsync policy — with the
        default ``batch(N, ms)`` policy the appends coalesce into a few
        fsyncs instead of one per command — and a single forced sync on
        return makes the whole batch durable at once.
        """
        if _obsv.enabled():
            _obsv.get().counter("lang.batches_executed").inc()
        for item in batch:
            if isinstance(item, str):
                for command in parse_sentence(item):
                    self._apply(command)
            else:
                self._apply(item)
        if self._durable is not None:
            self._durable.sync()
        if self._coordinator is not None:
            self._coordinator.sync()
        return self.database

    def _apply(self, command: Command) -> "Database | None":
        if self._replica is not None:
            from repro.errors import ReplicationError

            raise ReplicationError(
                "this session is a read-only replica "
                "(replica_of=...): commands belong on the primary; "
                "promote() turns it into a writable primary"
            )
        if _obsv.enabled():
            _obsv.get().counter("lang.statements_executed").inc()
        if self._coordinator is not None:
            # the coordinator owns the authoritative state; the global
            # Database value is assembled on demand, never per command
            self._coordinator.execute(command)
            return None
        if self._durable is not None:
            self._record_history(self._durable.execute(command))
        elif self._manager is not None:
            # once the session has a transaction manager (always, for
            # si/ssi; after the first begin()/run(), for serial), direct
            # executes autocommit through it so scripted and
            # transactional writes share one commit path and one
            # authoritative database value
            self._record_history(
                self._manager.run(lambda txn: txn.stage(command))
            )
        else:
            self._record_history(command.execute(self._database))
        return self._database

    # -- transactions --------------------------------------------------------

    @property
    def isolation(self) -> str:
        """This session's isolation level: ``serial`` (the default
        single-writer manager), ``si`` (multi-writer snapshot isolation
        with first-committer-wins) or ``ssi`` (serializable snapshot
        isolation)."""
        return self._isolation

    @property
    def transaction_manager(self):
        """The session's transaction manager — an
        :class:`~repro.concurrency.mvcc.MVCCManager` for ``si``/``ssi``
        sessions, a lazily created serial
        :class:`~repro.concurrency.manager.TransactionManager` for plain
        ``serial`` sessions.  Durable/replica/sharded/cluster sessions
        have no client-visible manager (their execute path *is* the
        serialized commit path): raises :class:`ConcurrencyError`.
        """
        if self._manager is None:
            if (
                self._durable is not None
                or self._replica is not None
                or self._coordinator is not None
            ):
                from repro.errors import ConcurrencyError

                raise ConcurrencyError(
                    "this session's backing serializes writes through "
                    "its WAL/coordinator commit path and has no "
                    "client-visible transaction manager; use a plain "
                    "Session(isolation=...) for explicit transactions"
                )
            from repro.concurrency.manager import TransactionManager

            self._manager = TransactionManager(self._database)
        return self._manager

    def begin(self):
        """Start an explicit transaction against the session's manager
        (snapshot reads at the current transaction number)."""
        return self.transaction_manager.begin()

    def commit(self, transaction) -> Database:
        """Commit an explicit transaction; the session's database moves
        to the committed value.  Raises
        :class:`~repro.errors.ConcurrencyError` (and aborts the
        transaction) when conflict detection rejects it."""
        database = self.transaction_manager.commit(transaction)
        self._record_history(database)
        return database

    def abort(self, transaction) -> None:
        """Abort an explicit transaction; the database is unchanged."""
        self.transaction_manager.abort(transaction)

    def run(self, body, retries: int = 3) -> Database:
        """Run ``body(transaction)`` under the session's isolation
        level, retrying on conflict up to ``retries`` times."""
        database = self.transaction_manager.run(body, retries)
        self._record_history(database)
        return database

    # -- durability ----------------------------------------------------------

    @property
    def durable(self):
        """The session's :class:`~repro.durability.DurableDatabase`,
        or None for a purely in-memory session."""
        return self._durable

    def checkpoint(self) -> None:
        """Force a checkpoint + log compaction (durable, sharded and
        cluster sessions checkpoint every shard)."""
        if self._durable is not None:
            self._durable.checkpoint()
        if self._coordinator is not None:
            self._coordinator.checkpoint()

    def close(self) -> None:
        """Flush the command log and release file handles.  In-memory
        sessions: a no-op."""
        if self._replica is not None:
            self._replica.close()
        if self._durable is not None:
            self._durable.close()
        if self._coordinator is not None:
            self._coordinator.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- sharding ------------------------------------------------------------

    @property
    def sharded(self):
        """The session's :class:`~repro.sharding.ShardedDatabase`, or
        None for unsharded sessions."""
        return self._sharded

    def rebalance(self, partitioner=None):
        """Sharded/cluster sessions: move identifiers to their
        partitioner-preferred shards; returns the
        :class:`~repro.sharding.RebalanceReport`."""
        if self._coordinator is None:
            from repro.errors import ShardingError

            raise ShardingError(
                "rebalance(): this session is not sharded (shards=N "
                "or cluster=ClusterConfig(...))"
            )
        return self._coordinator.rebalance(partitioner)

    def add_shard(self) -> int:
        """Sharded/cluster sessions: open one more shard and return its
        index."""
        if self._coordinator is None:
            from repro.errors import ShardingError

            raise ShardingError(
                "add_shard(): this session is not sharded (shards=N "
                "or cluster=ClusterConfig(...))"
            )
        return self._coordinator.add_shard()

    # -- clustering ----------------------------------------------------------

    @property
    def cluster(self):
        """The session's :class:`~repro.cluster.Cluster`, or None for
        non-cluster sessions."""
        return self._cluster

    def failover(self, shard: int, replica_index=None) -> None:
        """Cluster sessions: promote one of shard ``shard``'s replicas
        to be that shard's primary (see
        :meth:`repro.cluster.Cluster.failover`)."""
        if self._cluster is None:
            from repro.errors import ClusterError

            raise ClusterError(
                "failover(): this session is not clustered "
                "(cluster=ClusterConfig(...))"
            )
        self._cluster.failover(shard, replica_index)

    def add_replica(self, shard: int):
        """Cluster sessions: attach one more replica to shard
        ``shard``'s stream and return it."""
        if self._cluster is None:
            from repro.errors import ClusterError

            raise ClusterError(
                "add_replica(): this session is not clustered "
                "(cluster=ClusterConfig(...))"
            )
        return self._cluster.add_replica(shard)

    # -- replication ---------------------------------------------------------

    @property
    def replica(self):
        """The session's :class:`~repro.replication.Replica`, or None
        for primary/in-memory sessions."""
        return self._replica

    def catch_up(self) -> int:
        """Replica sessions: apply shipped records up to the primary's
        published tail, returning how many were applied.  Cluster
        sessions: drive every replica in the topology to its primary's
        tail.  Primary and in-memory sessions: a no-op returning 0."""
        if self._cluster is not None:
            return self._cluster.catch_up()
        if self._replica is None:
            return 0
        applied = self._replica.catch_up()
        if applied:
            self._record_history(self._replica.database)
        return applied

    def lag(self) -> int:
        """How many shipped records behind the primary this replica
        session is (0 for primary/in-memory sessions)."""
        return 0 if self._replica is None else self._replica.lag()

    def promote(self) -> Database:
        """Fail over: turn a replica session into a writable primary
        anchored at its last applied record.  Returns the database the
        new primary starts from."""
        if self._replica is None:
            from repro.errors import ReplicationError

            raise ReplicationError(
                "promote(): this session is not a replica"
            )
        self._durable = self._replica.promote()
        self._replica = None
        self._database = self._durable.database
        self._record_history(self._database)
        return self._database

    def _record_history(self, database: Database) -> None:
        self._database = database
        self._history.append(database)
        limit = self._history_limit
        if limit is not None and len(self._history) > limit:
            del self._history[: len(self._history) - limit]

    # -- queries ---------------------------------------------------------------

    def query(self, source: TypingUnion[str, Expression]) -> State:
        """Parse and evaluate an expression against the current database.
        Expressions are side-effect-free: the session's database is
        unchanged.

        Query text runs through the plan cache: parsed once (keyed on
        whitespace-normalized source, so formatting variants of one
        query share an entry), cost-optimized under current statistics,
        compiled, and re-planned only when the transaction number moves.
        Pre-built :class:`Expression` values skip the cache and evaluate
        directly.
        """
        if _obsv.enabled():
            _obsv.get().counter("lang.queries").inc()
        if isinstance(source, str):
            return self._evaluate_plan(self._cached_expression(source))
        return self._evaluate(source)

    def _evaluate(self, expression: Expression) -> State:
        """Evaluate a side-effect-free expression; replica sessions
        route through the replica so its staleness bound applies,
        sharded/cluster sessions through their scatter-gather routers
        (cluster reads land on replicas)."""
        coordinator = self._coordinator
        if coordinator is not None:
            return coordinator.evaluate(expression)
        if self._replica is not None:
            return self._replica.evaluate(expression)
        return expression.evaluate(self._database)

    def _evaluate_plan(self, plan: _CachedPlan) -> State:
        """Evaluate a cached plan, (re)optimizing and (re)compiling if
        the database has moved since it was last planned."""
        expression = self._planned_expression(plan)
        if self._coordinator is not None or self._replica is not None:
            # these modes evaluate through their own routers (scatter-
            # gather, staleness bounds); they reuse the optimized tree
            # but not the compiled single-database plan
            return self._evaluate(expression)
        if (
            plan.compiled is None
            or plan.compiled.expression is not expression
        ):
            plan.compiled = compile_expression(expression)
        return plan.compiled(self._database)

    def _planned_expression(self, plan: _CachedPlan) -> Expression:
        """The plan's optimized tree for the current transaction number.

        Plans are tagged with the transaction number they were planned
        at: once the database moves, statistics and the data dictionary
        may have shifted (a schema-dependent rewrite licensed by the old
        catalog could be wrong under the new one), so the plan is
        rebuilt.  Read-heavy workloads keep the number constant, which
        is exactly when caching pays.
        """
        if not self._optimize:
            return plan.expression
        txn = self.transaction_number
        if plan.optimized is None or plan.txn != txn:
            stats = self.statistics()
            rewriter = CostGuidedRewriter(
                catalog=self.catalog(), stats=stats
            )
            plan.optimized = rewriter.rewrite(plan.expression)
            plan.compiled = None
            plan.txn = txn
        return plan.optimized

    def _cached_expression(self, source: str) -> _CachedPlan:
        """The plan-cache entry for ``source`` (parsing on a miss).

        The key is the whitespace-normalized source, so ``π[k](ρ(r))``
        and the same query split across lines or double-spaced hit one
        entry instead of parsing, optimizing and compiling three times.
        """
        key = " ".join(source.split())
        cache = self._plan_cache
        plan = cache.get(key)
        if plan is not None:
            cache.move_to_end(key)
            self._plan_cache_hits += 1
            if _obsv.enabled():
                _obsv.get().counter("lang.plan_cache.hits").inc()
            return plan
        self._plan_cache_misses += 1
        if _obsv.enabled():
            _obsv.get().counter("lang.plan_cache.misses").inc()
        plan = _CachedPlan(parse_expression(source))
        if self._plan_cache_capacity > 0:
            cache[key] = plan
            if len(cache) > self._plan_cache_capacity:
                cache.popitem(last=False)
                self._plan_cache_evictions += 1
                if _obsv.enabled():
                    _obsv.get().counter("lang.plan_cache.evictions").inc()
        return plan

    def plan_cache_info(self) -> dict:
        """Occupancy and hit/miss accounting of the plan cache."""
        return {
            "capacity": self._plan_cache_capacity,
            "size": len(self._plan_cache),
            "hits": self._plan_cache_hits,
            "misses": self._plan_cache_misses,
            "evictions": self._plan_cache_evictions,
        }

    def statistics(self) -> Statistics:
        """Per-relation cardinality and version statistics collected
        from whatever is serving this session's reads."""
        if self._durable is not None:
            versioned = getattr(self._durable, "versioned", None)
            if versioned is not None:
                return collect_statistics(versioned)
        return collect_statistics(self.database)

    def explain(self, source: TypingUnion[str, Expression]) -> str:
        """The optimizer's story for a query: the plan as written and
        the plan as it would run, with estimated costs and the rewrites
        the cost gate accepted."""
        expression = (
            self._cached_expression(source).expression
            if isinstance(source, str)
            else source
        )
        stats = self.statistics()
        rewriter = CostGuidedRewriter(catalog=self.catalog(), stats=stats)
        optimized = rewriter.rewrite(expression)
        lines = [f"plan  (cost ≈ {rewriter.baseline_cost:.1f}):"]
        lines.extend(
            "  " + line
            for line in explain_plan(expression, stats).splitlines()
        )
        if optimized == expression:
            lines.append("optimized: no cost-reducing rewrite found")
        else:
            lines.append(
                f"optimized  (cost ≈ {rewriter.final_cost:.1f}):"
            )
            lines.extend(
                "  " + line
                for line in explain_plan(optimized, stats).splitlines()
            )
        for name, before, after, accepted in rewriter.trace:
            verdict = "kept" if accepted else "rejected"
            lines.append(
                f"  rewrite {name}: {before:.1f} -> {after:.1f} "
                f"({verdict})"
            )
        return "\n".join(lines)

    def current_state(self, identifier: str) -> State:
        """The named relation's most recent state, via ``ρ(I, now)``."""
        return self._evaluate(Rollback(identifier, NOW))

    # -- Quel integration ---------------------------------------------------------

    def catalog(self) -> dict:
        """Schemas of every relation that currently has a state —
        the data dictionary the Quel translators need."""
        from repro.core.expressions import is_empty_set

        database = self.database
        schemas = {}
        for identifier in database.state:
            relation = database.require(identifier)
            state = relation.current_state
            if not is_empty_set(state):
                schemas[identifier] = state.schema
        return schemas

    def quel(self, source: str):
        """Execute a Quel-style statement against the session.

        Update statements (``append``/``delete``/``replace``) change the
        database and return the new :class:`Database`; ``retrieve``
        returns the resulting state.  Temporal statements (``append ...
        valid``, ``terminate ... at``) are tried when the snapshot-Quel
        parser rejects the input.
        """
        from repro.errors import ParseError, TranslationError
        from repro.quel.parser import parse_statement
        from repro.quel.statements import Delete, Retrieve
        from repro.quel.temporal import (
            TemporalDelete,
            TemporalQuelTranslator,
            parse_temporal_statement,
        )
        from repro.quel.translate import QuelTranslator

        catalog = self.catalog()
        try:
            statement = parse_statement(source)
        except ParseError:
            # not plain Quel; must be a temporal statement
            # (append ... valid / terminate ... at)
            temporal = parse_temporal_statement(source)
            command = TemporalQuelTranslator(catalog).translate(temporal)
            self._apply(command)
            return self.database

        if isinstance(statement, Retrieve):
            if _obsv.enabled():
                _obsv.get().counter("lang.queries").inc()
            expression = QuelTranslator(catalog).translate_retrieve(
                statement
            )
            return self._evaluate(expression)

        # dispatch updates on the target relation's kind
        relation = self.database.lookup(statement.relation)
        if relation is None:
            raise TranslationError(
                f"relation {statement.relation!r} is not defined"
            )
        if relation.rtype.stores_valid_time:
            if isinstance(statement, Delete):
                command = TemporalQuelTranslator(catalog).translate(
                    TemporalDelete(statement.relation, statement.where)
                )
                self._apply(command)
                return self.database
            raise TranslationError(
                f"relation {statement.relation!r} stores valid time; "
                "use 'append ... valid <periods>' or "
                "'terminate ... at <chronon>'"
            )
        command = QuelTranslator(catalog).translate(statement)
        self._apply(command)
        return self.database

    def display(self, identifier: str, numeral=NOW) -> str:
        """Render the named relation's state at the given transaction time
        as an aligned text table."""
        from repro.core.expressions import is_empty_set

        state = self._evaluate(Rollback(identifier, numeral))
        if is_empty_set(state):
            return f"{identifier}\n(no recorded state)"
        return format_state(state, title=identifier)


def format_state(state: State, title: str = "") -> str:
    """Render a snapshot or historical state as an aligned text table."""
    if isinstance(state, HistoricalState):
        headers = list(state.schema.names) + ["valid"]
        rows = [
            [str(v) for v in t.value.values] + [_format_periods(t)]
            for t in state.tuples
        ]
    else:
        headers = list(state.schema.names)
        rows = [[str(v) for v in t.values] for t in state.tuples]
    rows.sort()
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows), 1)
        if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(v.ljust(w) for v, w in zip(row, widths))
        )
    if not rows:
        lines.append("(empty)")
    return "\n".join(lines)


def _format_periods(historical_tuple) -> str:
    return " + ".join(
        f"[{i.start}, {i.end!r})"
        for i in historical_tuple.valid_time.intervals
    )
