"""Interactive sessions over the language.

A :class:`Session` holds a current :class:`~repro.core.database.Database`
and incrementally executes commands against it.  Because the paper's
sequencing semantics is plain function composition
(``C[[C1, C2]] d = C[[C2]](C[[C1]] d)``), executing commands one at a time
against a session is observationally identical to evaluating the whole
prefix as one sentence starting from the empty database — a property the
test suite verifies.

The session also offers :meth:`Session.query`, which parses and evaluates a
side-effect-free expression (the "display the contents of a relation" use
the paper mentions as a command example), and :meth:`Session.display`,
which renders a relation's current state as an aligned text table.
"""

from __future__ import annotations

from typing import Union as TypingUnion

from repro.core.commands import Command
from repro.core.database import EMPTY_DATABASE, Database
from repro.core.expressions import Expression, Rollback
from repro.core.txn import NOW
from repro.historical.state import HistoricalState
from repro.lang.parser import parse_command, parse_expression, parse_sentence
from repro.obsv import registry as _obsv
from repro.snapshot.state import SnapshotState

__all__ = ["Session"]

State = TypingUnion[SnapshotState, HistoricalState]


class Session:
    """A mutable cursor over an immutable database value.

    The session itself is the only stateful object; each executed command
    replaces :attr:`database` with the new database value the command
    semantics denotes.  All past database values remain valid (and the
    session keeps the trail in :attr:`history` for inspection).
    """

    def __init__(
        self,
        durable_dir: "str | None" = None,
        *,
        fsync: str = "batch(64, 100)",
        checkpoint_every: int = 256,
    ) -> None:
        self._durable = None
        if durable_dir is not None:
            from repro.durability import DurableDatabase

            self._durable = DurableDatabase(
                durable_dir,
                fsync=fsync,
                checkpoint_every=checkpoint_every,
            )
            self._database: Database = self._durable.database
        else:
            self._database = EMPTY_DATABASE
        self._history: list[Database] = [self._database]

    @property
    def database(self) -> Database:
        """The current database value."""
        return self._database

    @property
    def history(self) -> tuple[Database, ...]:
        """Every database value the session has passed through, starting
        with the empty database."""
        return tuple(self._history)

    @property
    def transaction_number(self) -> int:
        """The current database's transaction number."""
        return self._database.transaction_number

    # -- execution -----------------------------------------------------------

    def execute(self, source: str) -> Database:
        """Parse and execute one or more ';'-separated commands; return the
        resulting database."""
        for command in parse_sentence(source):
            self._apply(command)
        return self._database

    def execute_command(self, command: TypingUnion[str, Command]) -> Database:
        """Execute a single command (source text or AST)."""
        if isinstance(command, str):
            command = parse_command(command)
        return self._apply(command)

    def _apply(self, command: Command) -> Database:
        if _obsv.enabled():
            _obsv.get().counter("lang.statements_executed").inc()
        if self._durable is not None:
            self._database = self._durable.execute(command)
        else:
            self._database = command.execute(self._database)
        self._history.append(self._database)
        return self._database

    # -- durability ----------------------------------------------------------

    @property
    def durable(self):
        """The session's :class:`~repro.durability.DurableDatabase`,
        or None for a purely in-memory session."""
        return self._durable

    def checkpoint(self) -> None:
        """Force a checkpoint + log compaction (durable sessions only)."""
        if self._durable is not None:
            self._durable.checkpoint()

    def close(self) -> None:
        """Flush the command log and release file handles.  In-memory
        sessions: a no-op."""
        if self._durable is not None:
            self._durable.close()

    # -- queries ---------------------------------------------------------------

    def query(self, source: TypingUnion[str, Expression]) -> State:
        """Parse and evaluate an expression against the current database.
        Expressions are side-effect-free: the session's database is
        unchanged."""
        if _obsv.enabled():
            _obsv.get().counter("lang.queries").inc()
        expression = (
            parse_expression(source) if isinstance(source, str) else source
        )
        return expression.evaluate(self._database)

    def current_state(self, identifier: str) -> State:
        """The named relation's most recent state, via ``ρ(I, now)``."""
        return Rollback(identifier, NOW).evaluate(self._database)

    # -- Quel integration ---------------------------------------------------------

    def catalog(self) -> dict:
        """Schemas of every relation that currently has a state —
        the data dictionary the Quel translators need."""
        from repro.core.expressions import is_empty_set

        schemas = {}
        for identifier in self._database.state:
            relation = self._database.require(identifier)
            state = relation.current_state
            if not is_empty_set(state):
                schemas[identifier] = state.schema
        return schemas

    def quel(self, source: str):
        """Execute a Quel-style statement against the session.

        Update statements (``append``/``delete``/``replace``) change the
        database and return the new :class:`Database`; ``retrieve``
        returns the resulting state.  Temporal statements (``append ...
        valid``, ``terminate ... at``) are tried when the snapshot-Quel
        parser rejects the input.
        """
        from repro.errors import ParseError, TranslationError
        from repro.quel.parser import parse_statement
        from repro.quel.statements import Delete, Retrieve
        from repro.quel.temporal import (
            TemporalDelete,
            TemporalQuelTranslator,
            parse_temporal_statement,
        )
        from repro.quel.translate import QuelTranslator

        catalog = self.catalog()
        try:
            statement = parse_statement(source)
        except ParseError:
            # not plain Quel; must be a temporal statement
            # (append ... valid / terminate ... at)
            temporal = parse_temporal_statement(source)
            command = TemporalQuelTranslator(catalog).translate(temporal)
            return self._apply(command)

        if isinstance(statement, Retrieve):
            if _obsv.enabled():
                _obsv.get().counter("lang.queries").inc()
            expression = QuelTranslator(catalog).translate_retrieve(
                statement
            )
            return expression.evaluate(self._database)

        # dispatch updates on the target relation's kind
        relation = self._database.lookup(statement.relation)
        if relation is None:
            raise TranslationError(
                f"relation {statement.relation!r} is not defined"
            )
        if relation.rtype.stores_valid_time:
            if isinstance(statement, Delete):
                command = TemporalQuelTranslator(catalog).translate(
                    TemporalDelete(statement.relation, statement.where)
                )
                return self._apply(command)
            raise TranslationError(
                f"relation {statement.relation!r} stores valid time; "
                "use 'append ... valid <periods>' or "
                "'terminate ... at <chronon>'"
            )
        command = QuelTranslator(catalog).translate(statement)
        return self._apply(command)

    def display(self, identifier: str, numeral=NOW) -> str:
        """Render the named relation's state at the given transaction time
        as an aligned text table."""
        from repro.core.expressions import is_empty_set

        state = Rollback(identifier, numeral).evaluate(self._database)
        if is_empty_set(state):
            return f"{identifier}\n(no recorded state)"
        return format_state(state, title=identifier)


def format_state(state: State, title: str = "") -> str:
    """Render a snapshot or historical state as an aligned text table."""
    if isinstance(state, HistoricalState):
        headers = list(state.schema.names) + ["valid"]
        rows = [
            [str(v) for v in t.value.values] + [_format_periods(t)]
            for t in state.tuples
        ]
    else:
        headers = list(state.schema.names)
        rows = [[str(v) for v in t.values] for t in state.tuples]
    rows.sort()
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows), 1)
        if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(v.ljust(w) for v, w in zip(row, widths))
        )
    if not rows:
        lines.append("(empty)")
    return "\n".join(lines)


def _format_periods(historical_tuple) -> str:
    return " + ".join(
        f"[{i.start}, {i.end!r})"
        for i in historical_tuple.valid_time.intervals
    )
