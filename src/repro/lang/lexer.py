"""The lexer: source text to a token stream."""

from __future__ import annotations

from repro.errors import LexError
from repro.lang.tokens import KEYWORDS, Token, TokenType

__all__ = ["tokenize"]

_SINGLE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    ":": TokenType.COLON,
    "@": TokenType.AT,
    "+": TokenType.PLUS,
    "=": TokenType.EQ,
}


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens, ending with an EOF token.

    Comments run from ``--`` to end of line.  Strings are double-quoted
    with ``\\"`` and ``\\\\`` escapes.
    """
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if source.startswith("--", i):
            newline = source.find("\n", i)
            i = n if newline == -1 else newline + 1
            continue
        if ch in _SINGLE_CHAR:
            tokens.append(Token(_SINGLE_CHAR[ch], ch, i))
            i += 1
            continue
        if ch == "!":
            if source.startswith("!=", i):
                tokens.append(Token(TokenType.NEQ, "!=", i))
                i += 2
                continue
            raise LexError(f"unexpected character {ch!r} at {i}", i)
        if ch == "<":
            if source.startswith("<=", i):
                tokens.append(Token(TokenType.LTE, "<=", i))
                i += 2
            else:
                tokens.append(Token(TokenType.LT, "<", i))
                i += 1
            continue
        if ch == ">":
            if source.startswith(">=", i):
                tokens.append(Token(TokenType.GTE, ">=", i))
                i += 2
            else:
                tokens.append(Token(TokenType.GT, ">", i))
                i += 1
            continue
        if ch == '"':
            text, i = _lex_string(source, i)
            tokens.append(Token(TokenType.STRING, text, i))
            continue
        if ch.isdigit() or (
            ch == "-" and i + 1 < n and source[i + 1].isdigit()
        ):
            start = i
            if ch == "-":
                i += 1
            while i < n and source[i].isdigit():
                i += 1
            tokens.append(Token(TokenType.INT, int(source[start:i]), start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            if word in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        raise LexError(f"unexpected character {ch!r} at position {i}", i)
    tokens.append(Token(TokenType.EOF, None, n))
    return tokens


def _lex_string(source: str, start: int) -> tuple[str, int]:
    """Lex a double-quoted string starting at ``start``; return (text,
    index just past the closing quote)."""
    out: list[str] = []
    i = start + 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\\":
            if i + 1 >= n:
                break
            escape = source[i + 1]
            if escape in ('"', "\\"):
                out.append(escape)
            elif escape == "n":
                out.append("\n")
            elif escape == "t":
                out.append("\t")
            else:
                raise LexError(
                    f"unknown string escape \\{escape} at {i}", i
                )
            i += 2
            continue
        if ch == '"':
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise LexError(f"unterminated string starting at {start}", start)
