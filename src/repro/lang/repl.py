"""An interactive read-eval-print loop over the language.

Input lines accumulate until they form a complete statement terminated by
``;``.  A statement is either a command (executed, changing the session's
database) or a bare expression (evaluated and rendered as a table).  Meta
commands start with a dot:

* ``.relations`` — list defined relations with type, history length, txn;
* ``.txn`` — show the current transaction number;
* ``.save <path>`` / ``.load <path>`` — persist/restore via JSON;
* ``.connect <host:port>`` / ``.disconnect`` — attach the shell to a
  running ``python -m repro serve`` server: statements are then sent
  over the wire (commands via ``execute``, expressions via ``query``)
  instead of the in-process session;
* ``.help`` — summary; ``.quit`` — leave.

Every meta command is also reachable with a ``:`` prefix (``:save``,
``:load``, ...), the spelling common in other interactive database
shells, so sessions survive restarts whichever habit the user brings.

The loop is written against explicit input/output streams so it is unit-
testable; ``python -m repro`` wires it to stdin/stdout.
"""

from __future__ import annotations

from typing import IO

from repro.errors import ReproError
from repro.core.expressions import is_empty_set
from repro.lang.parser import Parser
from repro.lang.lexer import tokenize
from repro.lang.session import Session, format_state
from repro.lang.tokens import TokenType

__all__ = ["Repl", "run_repl"]

_BANNER = (
    "repro — McKenzie & Snodgrass (1987) transaction-time algebra\n"
    'commands end with ";"; bare expressions are evaluated; .help for help\n'
)

_HELP = """statements:
  define_relation(<name>, snapshot|rollback|historical|temporal);
  modify_state(<name>, <expression>);
  <expression>;                    -- evaluate and print

expressions:
  state (a: string, b: integer) { ("x", 1), ... }
  rollback(<name>, <txn>|now)
  E union E | E minus E | E times E
  project [a, b] (E) | select [a = 1 and b < 2] (E)
  derive [<temporal predicate> ; <temporal expression>] (E)

meta (also with a ':' prefix, e.g. :save / :connect):
  .relations  .txn  .save <path>  .load <path>  .help  .quit
  .connect <host:port>  .disconnect    -- talk to a running server
"""


class Repl:
    """A line-oriented interpreter over one :class:`Session`."""

    def __init__(self, out: IO[str]) -> None:
        self.session = Session()
        self._out = out
        self._buffer: list[str] = []
        #: Statements that raised (script mode exits non-zero on any).
        self.error_count = 0
        #: The remote client while ``.connect``-ed, else None.
        self._client = None
        self._remote = ""

    @property
    def pending(self) -> bool:
        """True when buffered input awaits its terminating ';'."""
        return bool(self._buffer)

    @property
    def connected(self) -> bool:
        """True while the shell proxies statements to a server."""
        return self._client is not None

    # -- driving -----------------------------------------------------------

    def feed(self, line: str) -> bool:
        """Process one input line; returns False when the REPL should
        exit."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith((".", ":")):
            return self._meta(stripped)
        if not stripped:
            return True
        self._buffer.append(line)
        if stripped.endswith(";"):
            source = "\n".join(self._buffer)
            self._buffer = []
            self._run(source.rstrip().rstrip(";"))
        return True

    def _print(self, text: str = "") -> None:
        self._out.write(text + "\n")

    # -- statement handling -------------------------------------------------

    def _run(self, source: str) -> None:
        if not source.strip():
            return
        try:
            if self._client is not None:
                self._run_remote(source)
            elif self._looks_like_command(source):
                self.session.execute(source)
                self._print(
                    f"ok (txn {self.session.transaction_number})"
                )
            else:
                result = self.session.query(source)
                if is_empty_set(result):
                    self._print("∅ (no recorded state)")
                else:
                    self._print(format_state(result))
        except ReproError as error:
            self.error_count += 1
            self._print(f"error: {error}")

    def _run_remote(self, source: str) -> None:
        """Proxy one statement to the connected server."""
        if self._looks_like_command(source):
            txn = self._client.execute(source)
            self._print(f"ok (txn {txn})")
        else:
            # the server renders the relation (or the ∅ marker) itself
            self._print(self._client.query(source))

    @staticmethod
    def _looks_like_command(source: str) -> bool:
        head = source.lstrip()
        return head.startswith("define_relation") or head.startswith(
            "modify_state"
        )

    # -- meta commands -----------------------------------------------------------

    def _meta(self, line: str) -> bool:
        parts = line.split(None, 1)
        name = parts[0]
        if name.startswith(":"):
            name = "." + name[1:]
        argument = parts[1].strip() if len(parts) > 1 else ""
        if name == ".quit":
            return False
        if name == ".help":
            self._print(_HELP)
            return True
        if name == ".txn":
            if self._client is not None:
                try:
                    self._print(str(self._client.ping()))
                except ReproError as error:
                    self._print(f"error: {error}")
                return True
            self._print(str(self.session.transaction_number))
            return True
        if name == ".connect":
            return self._connect(argument)
        if name == ".disconnect":
            return self._disconnect()
        if name == ".relations":
            database = self.session.database
            if not len(database.state):
                self._print("(no relations)")
            for identifier in database.state:
                relation = database.require(identifier)
                self._print(
                    f"  {identifier}: {relation.rtype.value}, "
                    f"{relation.history_length} states at txns "
                    f"{list(relation.transaction_numbers)}"
                )
            return True
        if name == ".save":
            return self._save(argument)
        if name == ".load":
            return self._load(argument)
        self._print(f"unknown meta command {name!r}; try .help")
        return True

    def _connect(self, address: str) -> bool:
        """Attach the shell to a running server (``host:port``)."""
        if not address or ":" not in address:
            self._print("usage: .connect <host:port>")
            return True
        host, _, port_text = address.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            self._print(f"error: bad port {port_text!r}")
            return True
        from repro.server.client import ReproClient

        try:
            client = ReproClient(host, port, timeout=10.0)
            txn = client.ping()
        except (ReproError, OSError) as error:
            self._print(f"error: cannot connect to {address}: {error}")
            return True
        self._disconnect(quiet=True)
        self._client = client
        self._remote = address
        self._print(
            f"connected to {address} (txn {txn}); statements now run "
            "on the server, .disconnect returns to the local session"
        )
        return True

    def _disconnect(self, quiet: bool = False) -> bool:
        if self._client is not None:
            self._client.close()
            self._client = None
            self._remote = ""
            if not quiet:
                self._print("disconnected; back to the local session")
        elif not quiet:
            self._print("not connected")
        return True

    def _save(self, path: str) -> bool:
        if not path:
            self._print("usage: .save <path>")
            return True
        from repro.persistence import dumps

        try:
            with open(path, "w") as fp:
                fp.write(dumps(self.session.database, indent=2))
            self._print(f"saved to {path}")
        except OSError as error:
            self._print(f"error: {error}")
        return True

    def _load(self, path: str) -> bool:
        if not path:
            self._print("usage: .load <path>")
            return True
        from repro.persistence import loads

        try:
            with open(path) as fp:
                database = loads(fp.read())
        except (OSError, ReproError, ValueError) as error:
            self._print(f"error: {error}")
            return True
        # replace the session's database wholesale
        self.session._database = database
        self.session._history.append(database)
        self._print(
            f"loaded {path} (txn {database.transaction_number})"
        )
        return True


def run_repl(stdin: IO[str], stdout: IO[str]) -> None:
    """Run the REPL until EOF or ``.quit``."""
    stdout.write(_BANNER)
    repl = Repl(stdout)
    for line in stdin:
        if not repl.feed(line):
            break
