"""Multi-writer MVCC over the paper's version chains.

The paper's rollback relations *are* multi-version storage: every
``modify_state`` appends a ``(state, transaction number)`` pair and old
versions stay addressable forever (Section 3.2).  :class:`MVCCManager`
turns that structure into a true multi-writer concurrency-control layer:

* **Snapshot reads, lock-free.**  ``begin()`` captures the current
  immutable :class:`~repro.core.database.Database` value; every read of
  the transaction evaluates against that value directly off the version
  chains.  No lock, queue or validation structure is touched on the
  read path — read-only transactions never conflict and never abort.
* **First-committer-wins writes (snapshot isolation).**  At commit, a
  transaction aborts iff some relation it writes was also written by a
  transaction that committed after this one began.  The check is one
  dict probe per written relation against a relation → last-commit map
  — O(write set), independent of how many transactions are in flight
  (the serial :class:`~repro.concurrency.manager.TransactionManager`
  instead scans a commit log that grows with concurrency).
* **Snapshot-consistent apply.**  Staged ``modify_state`` expressions
  are evaluated against the transaction's *snapshot* (plus its own
  earlier writes) and the resulting states are installed into the
  current database at commit — the SI rule "reads come from the begin
  snapshot, writes land at commit".  First-committer-wins guarantees
  every written relation's chain is unchanged since the snapshot, so
  installing is a plain append with fresh transaction numbers.
* **Optional serializability (SSI).**  ``isolation="ssi"`` additionally
  tracks rw-antidependencies at relation granularity, in the style of
  Cahill et al.: a committing transaction that is the pivot of a
  dangerous structure (an incoming *and* an outgoing rw edge), or that
  completes a committed pivot's structure, aborts.  The tracking may
  abort conservatively (flags are kept per transaction, not per edge
  pair) but never admits a non-serializable history — the property the
  DSG isolation checker in :mod:`repro.workloads.histories` verifies
  adversarially rather than taking on faith.

Snapshot isolation famously admits *write skew* (disjoint writes under
overlapping reads); the checker classifies exactly those cycles as the
only ones an SI run may produce.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.errors import CommandError, ConcurrencyError
from repro.core.commands import (
    Command,
    ModifyState,
    Sequence as CommandSequence,
    sequence,
)
from repro.core.database import EMPTY_DATABASE, Database
from repro.core.expressions import Const
from repro.concurrency.transactions import Transaction, TransactionStatus
from repro.obsv import registry as _obsv

__all__ = ["MVCCManager", "ISOLATION_LEVELS"]

#: The isolation levels MVCCManager implements ("serial" is the
#: pre-existing TransactionManager and lives in repro.concurrency.manager).
ISOLATION_LEVELS = ("si", "ssi")


class _CommitRecord:
    """One committed transaction retained for SSI antidependency
    tracking (pruned once no live transaction can be concurrent)."""

    __slots__ = (
        "txn_id",
        "begin_txn",
        "commit_txn",
        "read_set",
        "write_set",
        "in_rw",
        "out_rw",
    )

    def __init__(
        self,
        txn_id: int,
        begin_txn: int,
        commit_txn: int,
        read_set: frozenset,
        write_set: frozenset,
        in_rw: bool,
        out_rw: bool,
    ) -> None:
        self.txn_id = txn_id
        self.begin_txn = begin_txn
        self.commit_txn = commit_txn
        self.read_set = read_set
        self.write_set = write_set
        #: Some concurrent transaction read a relation this one wrote.
        self.in_rw = in_rw
        #: This transaction read a relation a concurrent one wrote.
        self.out_rw = out_rw


class MVCCManager:
    """Multi-writer MVCC with first-committer-wins snapshot isolation
    and an optional serializable (SSI) mode.

    The surface mirrors :class:`TransactionManager` — ``begin`` /
    ``commit`` / ``abort`` / ``run`` over the same
    :class:`~repro.concurrency.transactions.Transaction` objects — so
    the two are drop-in interchangeable behind
    :class:`~repro.lang.session.Session` and the server store.

    ``first_committer_wins=False`` disables write-conflict detection.
    It exists solely so the DSG isolation checker can prove it *catches*
    the resulting lost updates (the mutation test the test suite runs);
    never disable it in real use.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        isolation: str = "si",
        *,
        first_committer_wins: bool = True,
    ) -> None:
        if isolation not in ISOLATION_LEVELS:
            raise ConcurrencyError(
                f"MVCCManager isolation must be one of "
                f"{ISOLATION_LEVELS}, got {isolation!r} (the serial "
                "level is TransactionManager)"
            )
        self._database = database if database is not None else EMPTY_DATABASE
        self._isolation = isolation
        self._first_committer_wins = first_committer_wins
        self._next_txn_id = 1
        #: relation identifier → database transaction number of the most
        #: recent committed write.  The whole first-committer-wins check:
        #: a writer conflicts iff one of these exceeds its begin point.
        #: Bounded by the number of relations, so never pruned.
        self._last_writer: dict[str, int] = {}
        #: txn_id → Transaction for every begun-but-unfinished
        #: transaction (the validation/visibility horizon).
        self._active: dict[int, Transaction] = {}
        #: SSI only: committed transactions still concurrent with some
        #: active transaction, with their rw-conflict flags.
        self._commit_log: deque[_CommitRecord] = deque()
        #: SSI only: rw flags of *active* transactions, marked by
        #: committing writers whose write set met their read set.
        self._active_flags: dict[int, list[bool]] = {}
        self._commits = 0
        self._aborts = 0
        self._conflicts = 0
        self._ssi_aborts = 0

    # -- state ------------------------------------------------------------------

    @property
    def database(self) -> Database:
        """The current committed database."""
        return self._database

    @property
    def isolation(self) -> str:
        """``"si"`` or ``"ssi"``."""
        return self._isolation

    @property
    def commit_count(self) -> int:
        return self._commits

    @property
    def abort_count(self) -> int:
        """Aborts of every kind (conflicts, SSI aborts, explicit)."""
        return self._aborts

    @property
    def conflict_count(self) -> int:
        """First-committer-wins write-conflict aborts."""
        return self._conflicts

    @property
    def ssi_abort_count(self) -> int:
        """Dangerous-structure aborts (SSI mode only)."""
        return self._ssi_aborts

    @property
    def outstanding_count(self) -> int:
        """Transactions begun but neither committed nor aborted."""
        return len(self._active)

    @property
    def validation_log_size(self) -> int:
        """Committed transactions retained for SSI antidependency
        tracking (always 0 in plain SI mode; bounded by the oldest
        outstanding snapshot otherwise)."""
        return len(self._commit_log)

    def snapshot_age(self) -> int:
        """How many transaction numbers the oldest active snapshot
        trails the current database (0 when idle)."""
        if not self._active:
            return 0
        oldest = min(t.begin_txn for t in self._active.values())
        return self._database.transaction_number - oldest

    # -- lifecycle ----------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction reading the current database value as its
        snapshot.  Nothing is locked; concurrent begins share structure."""
        transaction = Transaction(
            txn_id=self._next_txn_id,
            begin_txn=self._database.transaction_number,
            snapshot=self._database,
        )
        self._next_txn_id += 1
        self._active[transaction.txn_id] = transaction
        if self._isolation == "ssi":
            self._active_flags[transaction.txn_id] = [False, False]
        if _obsv.enabled():
            registry = _obsv.get()
            registry.counter("concurrency.mvcc.begins").inc()
            registry.gauge("concurrency.mvcc.active").set(len(self._active))
            registry.gauge("concurrency.mvcc.oldest_snapshot_age").set(
                self.snapshot_age()
            )
        return transaction

    def commit(self, transaction: Transaction) -> Database:
        """Validate under first-committer-wins (plus SSI dangerous
        structures when enabled) and atomically install the staged
        writes.  Raises :class:`ConcurrencyError` — after marking the
        transaction aborted — when validation fails."""
        if transaction.status is not TransactionStatus.ACTIVE:
            raise ConcurrencyError(
                f"transaction {transaction.txn_id} is "
                f"{transaction.status.value}"
            )
        self._check_write_conflicts(transaction)
        if self._isolation == "ssi":
            self._check_dangerous_structures(transaction)
        try:
            new_database = self._apply(transaction)
        except BaseException:
            # a command that fails at apply time must abort, not leave
            # the transaction pinned ACTIVE in the visibility horizon
            # (the same discipline TransactionManager.commit adopted)
            self.abort(transaction)
            raise
        commit_txn = new_database.transaction_number
        if self._isolation == "ssi":
            self._record_ssi_commit(transaction, commit_txn)
        for identifier in transaction.write_set:
            self._last_writer[identifier] = commit_txn
        self._database = new_database
        transaction.status = TransactionStatus.COMMITTED
        transaction.commit_txn = commit_txn
        self._commits += 1
        self._finish(transaction)
        if _obsv.enabled():
            registry = _obsv.get()
            registry.counter("concurrency.mvcc.commits").inc()
            registry.histogram("concurrency.mvcc.snapshot_age").observe(
                commit_txn - transaction.begin_txn
            )
        return new_database

    def abort(self, transaction: Transaction) -> None:
        """Abort without touching the database."""
        if transaction.status is not TransactionStatus.ACTIVE:
            return
        transaction.status = TransactionStatus.ABORTED
        self._aborts += 1
        self._finish(transaction)
        if _obsv.enabled():
            _obsv.get().counter("concurrency.mvcc.aborts").inc()

    def run(
        self, body: Callable[[Transaction], None], retries: int = 3
    ) -> Database:
        """Run ``body`` inside a transaction, retrying up to ``retries``
        times on a validation conflict.  A raising body aborts its
        transaction and propagates (never retried)."""
        last_error: Optional[ConcurrencyError] = None
        for attempt in range(retries + 1):
            if attempt and _obsv.enabled():
                _obsv.get().counter("concurrency.mvcc.retries").inc()
            transaction = self.begin()
            try:
                body(transaction)
            except BaseException:
                self.abort(transaction)
                raise
            try:
                return self.commit(transaction)
            except ConcurrencyError as error:
                last_error = error
        raise ConcurrencyError(
            f"transaction failed after {retries} retries: {last_error}"
        )

    # -- validation ----------------------------------------------------------------

    def _check_write_conflicts(self, transaction: Transaction) -> None:
        """First-committer-wins: abort if any written relation was also
        written by a transaction committed after this one began."""
        if not self._first_committer_wins:
            return
        begin = transaction.begin_txn
        for identifier in transaction.write_set:
            if self._last_writer.get(identifier, -1) > begin:
                self.abort(transaction)
                self._conflicts += 1
                if _obsv.enabled():
                    _obsv.get().counter("concurrency.mvcc.conflicts").inc()
                raise ConcurrencyError(
                    f"transaction {transaction.txn_id} aborted "
                    f"(first-committer-wins): relation {identifier!r} "
                    "was written by a transaction that committed after "
                    "this one began"
                )

    def _check_dangerous_structures(self, transaction: Transaction) -> None:
        """SSI: abort a committing transaction that would complete a
        dangerous structure (a pivot with both an incoming and an
        outgoing rw-antidependency).

        Relation-granularity version of Cahill et al.'s commit-time
        test: flags are maintained on active transactions (marked by
        committing writers) and on retained committed transactions, so
        a pivot is caught whether it is this transaction or an already
        committed one whose structure this commit would close.
        """
        reads = transaction.read_set
        writes = transaction.write_set
        flags = self._active_flags.get(transaction.txn_id, [False, False])
        has_in, has_out = flags
        begin = transaction.begin_txn
        for record in self._commit_log:
            if record.commit_txn <= begin:
                continue  # committed before this transaction began
            if record.write_set & reads:
                # T read a version record later overwrote: T --rw--> C.
                # C gains an incoming edge, so C is a complete pivot iff
                # it already has an outgoing one; T is the only
                # abortable party.
                has_out = True
                if record.out_rw:
                    self._ssi_abort(
                        transaction,
                        f"committing would make committed transaction "
                        f"{record.txn_id} a dangerous-structure pivot",
                    )
            if record.read_set & writes:
                # C read what T now overwrites: C --rw--> T.  C gains an
                # outgoing edge: pivot iff it already has an incoming.
                has_in = True
                if record.in_rw:
                    self._ssi_abort(
                        transaction,
                        f"committing would close committed transaction "
                        f"{record.txn_id}'s dangerous structure "
                        "(it has both rw-antidependency edges)",
                    )
        for other in self._active.values():
            if other.txn_id == transaction.txn_id:
                continue
            if other.read_set & writes:
                # an in-flight reader of something T writes: A --rw--> T
                has_in = True
            if other.write_set & reads:
                # T read what an in-flight transaction intends to write;
                # pessimistic (A may yet abort) but never unsound.
                has_out = True
        if has_in and has_out:
            self._ssi_abort(
                transaction,
                "it is the pivot of a dangerous structure (incoming and "
                "outgoing rw-antidependencies)",
            )
        flags[0] = has_in
        flags[1] = has_out

    def _ssi_abort(self, transaction: Transaction, why: str) -> None:
        self.abort(transaction)
        self._ssi_aborts += 1
        if _obsv.enabled():
            _obsv.get().counter("concurrency.mvcc.ssi_aborts").inc()
        raise ConcurrencyError(
            f"transaction {transaction.txn_id} aborted (ssi): {why}"
        )

    def _record_ssi_commit(
        self, transaction: Transaction, commit_txn: int
    ) -> None:
        """Retain the committed transaction for future antidependency
        checks and push rw flags onto whoever it conflicts with."""
        reads = transaction.read_set
        writes = transaction.write_set
        flags = self._active_flags.get(transaction.txn_id, [False, False])
        begin = transaction.begin_txn
        for record in self._commit_log:
            if record.commit_txn <= begin:
                continue
            if record.write_set & reads:
                record.in_rw = True  # T --rw--> C
            if record.read_set & writes:
                record.out_rw = True  # C --rw--> T
        for txn_id, other in self._active.items():
            if txn_id == transaction.txn_id:
                continue
            if other.read_set & writes:
                # A --rw--> T: the still-active reader gained an
                # outgoing edge it must account for at its own commit.
                self._active_flags[txn_id][1] = True
        self._commit_log.append(
            _CommitRecord(
                txn_id=transaction.txn_id,
                begin_txn=begin,
                commit_txn=commit_txn,
                read_set=reads,
                write_set=writes,
                in_rw=flags[0],
                out_rw=flags[1],
            )
        )

    # -- apply ---------------------------------------------------------------------

    def _apply(self, transaction: Transaction) -> Database:
        """Install the staged writes with snapshot-read semantics.

        Every ``modify_state`` expression is evaluated against the
        transaction's begin snapshot *plus its own earlier writes* (a
        transaction reads its own writes), and the resulting constant
        state is installed into the current database, picking up fresh
        commit transaction numbers.  First-committer-wins has already
        guaranteed no written chain moved since the snapshot, so the
        install cannot clobber a concurrent writer.
        """
        if not transaction.commands:
            return self._database
        effective = transaction.snapshot
        rewritten: list[Command] = []
        for command in _flatten(transaction.commands):
            if isinstance(command, ModifyState):
                if not effective.state.is_bound(command.identifier):
                    if command.strict:
                        raise CommandError(
                            f"modify_state: {command.identifier!r} is "
                            "not defined in this transaction's snapshot"
                        )
                    continue  # the paper's no-op, under snapshot reads
                # Execute against the effective snapshot (this resolves
                # untyped ∅ and type-checks the state), then freeze the
                # just-installed state into a constant for the install
                # pass against the current database.
                effective = command.execute(effective)
                installed = effective.state.require(
                    command.identifier
                ).current_state
                rewritten.append(
                    ModifyState(
                        command.identifier,
                        Const(installed),
                        strict=command.strict,
                    )
                )
            else:
                effective = command.execute(effective)
                rewritten.append(command)
        if not rewritten:
            return self._database
        return sequence(rewritten).execute(self._database)

    # -- internal ------------------------------------------------------------------

    def _finish(self, transaction: Transaction) -> None:
        self._active.pop(transaction.txn_id, None)
        self._active_flags.pop(transaction.txn_id, None)
        self._prune_commit_log()
        if _obsv.enabled():
            registry = _obsv.get()
            registry.gauge("concurrency.mvcc.active").set(len(self._active))
            registry.gauge("concurrency.mvcc.oldest_snapshot_age").set(
                self.snapshot_age()
            )

    def _prune_commit_log(self) -> None:
        """Drop committed records no live transaction can be concurrent
        with — the same horizon rule TransactionManager uses, applied on
        *every* exit path (commit and abort alike) so an aborting
        transaction never pins the log."""
        if not self._commit_log:
            return
        horizon = self._database.transaction_number
        if self._active:
            begin = min(t.begin_txn for t in self._active.values())
            if begin < horizon:
                horizon = begin
        log = self._commit_log
        while log and log[0].commit_txn <= horizon:
            log.popleft()


def _flatten(commands) -> list[Command]:
    """Expand staged Sequence nodes into the flat command list the
    snapshot-rewrite walks."""
    flat: list[Command] = []
    stack = list(reversed(list(commands)))
    while stack:
        command = stack.pop()
        if isinstance(command, CommandSequence):
            stack.append(command.second)
            stack.append(command.first)
        else:
            flat.append(command)
    return flat
