"""The transaction manager: optimistic timestamp-ordering validation.

Commit protocol (backward validation, in the style of the time-stamp
concurrency-control work the paper cites):

1. A transaction ``T`` reads against its begin-time snapshot.
2. At commit, ``T`` is validated against every transaction that committed
   after ``T`` began: if any of them wrote a relation ``T`` read, ``T``'s
   reads may be stale and ``T`` aborts (:class:`ConcurrencyError`).
3. A valid ``T``'s commands are applied atomically against the *current*
   database, which assigns them the next commit transaction number(s) —
   monotonically increasing, exactly the sequential-update semantics the
   paper requires implementations to preserve.

Note a subtlety the design exploits: although ``T`` *reads* its snapshot,
its staged commands are re-executed against the current database at commit,
so expressions like ``ρ(R, now) ∪ constant`` incorporate concurrent,
non-conflicting writes to *other* relations correctly.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.errors import ConcurrencyError
from repro.core.commands import sequence
from repro.core.database import EMPTY_DATABASE, Database
from repro.concurrency.transactions import Transaction, TransactionStatus
from repro.obsv import registry as _obsv

__all__ = ["TransactionManager"]


class TransactionManager:
    """Serializes concurrent transactions onto commit timestamps."""

    def __init__(self, database: Optional[Database] = None) -> None:
        self._database = database if database is not None else EMPTY_DATABASE
        self._next_txn_id = 1
        #: (commit database txn before, write set) of each committed
        #: transaction, used for backward validation.  Pruned after every
        #: commit/abort: an entry is only needed while some outstanding
        #: transaction began at or before its commit point, so a
        #: long-lived manager stays O(active transactions) instead of
        #: leaking one entry per commit.
        self._commit_log: deque[tuple[int, frozenset[str]]] = deque()
        #: txn_id → begin_txn of every begun-but-unfinished transaction
        #: (the validation horizon).  A transaction leaves on commit or
        #: abort; an abandoned ACTIVE transaction pins the log, which is
        #: the conservative, correct behaviour.
        self._outstanding: dict[int, int] = {}
        self._aborts = 0
        self._commits = 0

    # -- state ------------------------------------------------------------------

    @property
    def database(self) -> Database:
        """The current committed database."""
        return self._database

    @property
    def commit_count(self) -> int:
        """Number of committed transactions."""
        return self._commits

    @property
    def abort_count(self) -> int:
        """Number of aborted transactions (validation failures)."""
        return self._aborts

    @property
    def validation_log_size(self) -> int:
        """How many commit-log entries are currently retained for
        backward validation (bounded by outstanding transactions)."""
        return len(self._commit_log)

    @property
    def outstanding_count(self) -> int:
        """Transactions begun but neither committed nor aborted."""
        return len(self._outstanding)

    # -- lifecycle ----------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction reading a snapshot of the current
        database."""
        transaction = Transaction(
            txn_id=self._next_txn_id,
            begin_txn=self._database.transaction_number,
            snapshot=self._database,
        )
        self._next_txn_id += 1
        self._outstanding[transaction.txn_id] = transaction.begin_txn
        return transaction

    def commit(self, transaction: Transaction) -> Database:
        """Validate and atomically apply the transaction.

        Raises :class:`ConcurrencyError` (and marks the transaction
        aborted) when validation fails.  Returns the new database.
        """
        if transaction.status is not TransactionStatus.ACTIVE:
            raise ConcurrencyError(
                f"transaction {transaction.txn_id} is "
                f"{transaction.status.value}"
            )
        if _obsv.enabled():
            registry = _obsv.get()
            with registry.timer("concurrency.validate_seconds"):
                self._validate(transaction)
            try:
                with registry.timer("concurrency.commit_seconds"):
                    new_database = self._apply(transaction)
            except BaseException:
                # a command that fails at apply time (e.g. its expression
                # reads an unbound relation) must abort, not leave the
                # transaction pinned ACTIVE in the validation horizon
                self.abort(transaction)
                raise
        else:
            self._validate(transaction)
            try:
                new_database = self._apply(transaction)
            except BaseException:
                self.abort(transaction)
                raise
        if (
            transaction.write_set
            and new_database.transaction_number
            > self._database.transaction_number
        ):
            # only materialized writes can invalidate anyone's reads: an
            # empty write set never intersects, and a no-op apply (every
            # command skipped) leaves committed_at == the current txn
            # number, which the `< horizon` prune could never drop — the
            # entry would pin the validation log forever
            self._commit_log.append(
                (self._database.transaction_number, transaction.write_set)
            )
        self._database = new_database
        transaction.status = TransactionStatus.COMMITTED
        transaction.commit_txn = new_database.transaction_number
        self._commits += 1
        self._outstanding.pop(transaction.txn_id, None)
        self._prune_commit_log()
        if _obsv.enabled():
            _obsv.get().counter("concurrency.commits").inc()
        return new_database

    def abort(self, transaction: Transaction) -> None:
        """Abort without touching the database."""
        if transaction.status is TransactionStatus.ACTIVE:
            transaction.status = TransactionStatus.ABORTED
            self._outstanding.pop(transaction.txn_id, None)
            self._prune_commit_log()
            self._aborts += 1
            if _obsv.enabled():
                _obsv.get().counter("concurrency.aborts").inc()

    def run(
        self, body: Callable[[Transaction], None], retries: int = 3
    ) -> Database:
        """Convenience: run ``body`` inside a transaction, retrying up to
        ``retries`` times on validation failure.

        A raising ``body`` must not leak an ACTIVE transaction: the
        transaction is aborted (counted in :attr:`abort_count`) and the
        exception propagates.
        """
        last_error: Optional[ConcurrencyError] = None
        for attempt in range(retries + 1):
            if attempt and _obsv.enabled():
                _obsv.get().counter("concurrency.retries").inc()
            transaction = self.begin()
            try:
                body(transaction)
            except BaseException:
                self.abort(transaction)
                raise
            try:
                return self.commit(transaction)
            except ConcurrencyError as error:
                last_error = error
        raise ConcurrencyError(
            f"transaction failed after {retries} retries: {last_error}"
        )

    def _apply(self, transaction: Transaction) -> Database:
        """Re-execute the staged commands against the current database."""
        if transaction.commands:
            command = sequence(transaction.commands)
            return command.execute(self._database)
        return self._database

    def _prune_commit_log(self) -> None:
        """Drop validation entries no transaction can conflict with.

        Validation skips entries with ``committed_at < begin_txn``, so
        an entry older than every outstanding transaction's begin point
        — and older than any *future* begin point, which is at least the
        current transaction number — can never matter again.
        """
        horizon = self._database.transaction_number
        if self._outstanding:
            begin = min(self._outstanding.values())
            if begin < horizon:
                horizon = begin
        log = self._commit_log
        while log and log[0][0] < horizon:
            log.popleft()

    # -- validation ----------------------------------------------------------------

    def _validate(self, transaction: Transaction) -> None:
        reads = transaction.read_set
        if not reads:
            return
        for committed_at, writes in self._commit_log:
            if committed_at < transaction.begin_txn:
                continue  # committed before T began: T saw it
            conflict = reads & writes
            if conflict:
                self.abort(transaction)
                raise ConcurrencyError(
                    f"transaction {transaction.txn_id} aborted: read "
                    f"{sorted(conflict)} which a concurrent transaction "
                    "wrote after this transaction began"
                )
