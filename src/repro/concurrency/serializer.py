"""Deterministic interleaved execution and the serializability check.

The paper requires implementations that permit concurrency to preserve
"the semantics of sequential update with a monotonically increasing
transaction time".  :class:`InterleavedScheduler` simulates N clients whose
transactions interleave under a seeded schedule; the fundamental check
(experiment E10) is that the committed database equals
:func:`serial_execution` of the committed transactions in commit order.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

from repro.core.commands import Command, sequence
from repro.core.database import EMPTY_DATABASE, Database
from repro.errors import ConcurrencyError
from repro.concurrency.manager import TransactionManager
from repro.concurrency.transactions import Transaction

__all__ = ["ClientScript", "InterleavedScheduler", "serial_execution"]

#: A client's transaction body: receives the Transaction, stages commands.
TransactionBody = Callable[[Transaction], None]


class ClientScript:
    """A named client with a list of transaction bodies to run in order."""

    __slots__ = ("name", "bodies")

    def __init__(
        self, name: str, bodies: Sequence[TransactionBody]
    ) -> None:
        self.name = name
        self.bodies = list(bodies)

    def __repr__(self) -> str:
        return f"ClientScript({self.name}, {len(self.bodies)} txns)"


class InterleavedScheduler:
    """Runs client scripts with a seeded, randomly interleaved schedule.

    Each step picks a random client with remaining work.  A client's
    transaction is begun, its body staged, and then — crucially, to create
    real interleavings — its commit is *deferred* with probability
    ``overlap``: other clients may begin (and commit) in between, which is
    what exercises validation.
    """

    def __init__(
        self,
        clients: Sequence[ClientScript],
        seed: int = 0,
        overlap: float = 0.5,
        max_retries: int = 5,
        manager=None,
    ) -> None:
        self._clients = list(clients)
        self._rng = random.Random(seed)
        self._overlap = overlap
        self._max_retries = max_retries
        #: Any manager with the begin/commit/abort surface works — the
        #: serial TransactionManager by default, an MVCCManager when
        #: comparing isolation levels (bench_e20).
        self.manager = manager if manager is not None else TransactionManager()
        #: Commands of each committed transaction, in commit order.
        self.committed_scripts: list[list[Command]] = []

    def run(self) -> Database:
        """Execute every client's transactions to completion; return the
        final committed database."""
        # Work items: (client index, body index, retries left).
        pending: list[tuple[int, int, int]] = [
            (ci, bi, self._max_retries)
            for ci, client in enumerate(self._clients)
            for bi in range(len(client.bodies))
        ]
        # Keep per-client order: only the lowest unfinished body index of
        # each client is eligible.
        done: dict[int, int] = {ci: 0 for ci in range(len(self._clients))}
        in_flight: list[tuple[Transaction, int, int, int]] = []

        try:
            while pending or in_flight:
                # Decide whether to start a new transaction or commit one.
                can_start = [
                    item for item in pending if item[1] == done[item[0]]
                ]
                start_new = can_start and (
                    not in_flight or self._rng.random() < self._overlap
                )
                if start_new:
                    item = self._rng.choice(can_start)
                    pending.remove(item)
                    ci, bi, retries = item
                    transaction = self.manager.begin()
                    self._clients[ci].bodies[bi](transaction)
                    in_flight.append((transaction, ci, bi, retries))
                    continue
                # Commit a random in-flight transaction.
                index = self._rng.randrange(len(in_flight))
                transaction, ci, bi, retries = in_flight.pop(index)
                try:
                    self.manager.commit(transaction)
                except ConcurrencyError:
                    if retries <= 0:
                        raise
                    pending.append((ci, bi, retries - 1))
                    continue
                self.committed_scripts.append(list(transaction.commands))
                done[ci] = bi + 1
        finally:
            # A raising run (retries exhausted, or a failing body) must
            # not leave the other in-flight transactions ACTIVE: they
            # would pin the manager's validation horizon forever, so the
            # commit log could never be pruned again.
            for transaction, _, _, _ in in_flight:
                self.manager.abort(transaction)
        return self.manager.database


def serial_execution(
    committed_scripts: Sequence[Sequence[Command]],
    initial: Optional[Database] = None,
) -> Database:
    """Execute the committed transactions' command lists serially, in
    order, from the empty database — the sequential semantics against
    which the interleaved run is compared."""
    database = initial if initial is not None else EMPTY_DATABASE
    for script in committed_scripts:
        if script:
            database = sequence(list(script)).execute(database)
    return database
