"""Commit-timestamp transaction management.

The paper fixes the semantics of transaction time (Section 3.2): "a
transaction's time-stamp as represented by its transaction number is the
commit time for the transaction", modifications are logically sequential,
and "implementations may also permit concurrent transactions, again as
long as the semantics of sequential update with a monotonically increasing
transaction time is preserved".

This package provides that implementation layer:

* :class:`Transaction` — a client-visible unit of work: reads against a
  begin-time snapshot, staged commands, commit/abort;
* :class:`TransactionManager` — optimistic timestamp-ordering validation
  (backward validation against transactions that committed during this
  transaction's lifetime) and atomic commit with a monotonically
  increasing commit transaction number;
* :class:`InterleavedScheduler` — a deterministic simulator that interleaves
  many clients' transactions and checks the fundamental property: the
  committed database equals the serial execution of the committed
  transactions in commit order (experiment E10);
* :class:`MVCCManager` — true multi-writer MVCC over the paper's version
  chains: lock-free snapshot reads at the begin transaction number,
  first-committer-wins write-conflict detection (snapshot isolation), and
  an optional SSI mode that aborts rw-antidependency dangerous structures
  (experiment E20, verified by the DSG isolation checker in
  :mod:`repro.workloads.histories`).
"""

from repro.concurrency.transactions import Transaction, TransactionStatus
from repro.concurrency.manager import TransactionManager
from repro.concurrency.mvcc import ISOLATION_LEVELS, MVCCManager
from repro.concurrency.serializer import (
    ClientScript,
    InterleavedScheduler,
    serial_execution,
)

__all__ = [
    "Transaction",
    "TransactionStatus",
    "TransactionManager",
    "MVCCManager",
    "ISOLATION_LEVELS",
    "ClientScript",
    "InterleavedScheduler",
    "serial_execution",
]
