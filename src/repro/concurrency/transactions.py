"""Client-visible transactions."""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import ConcurrencyError
from repro.core.commands import Command, DefineRelation, ModifyState
from repro.core.commands import Sequence as CommandSequence
from repro.core.database import Database
from repro.core.expressions import Expression

__all__ = ["TransactionStatus", "Transaction"]


class TransactionStatus(enum.Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


def _written_identifiers(command: Command) -> frozenset[str]:
    if isinstance(command, (DefineRelation, ModifyState)):
        return frozenset({command.identifier})
    if isinstance(command, CommandSequence):
        return _written_identifiers(command.first) | _written_identifiers(
            command.second
        )
    return frozenset()


def _read_identifiers_of_expression(expression: Expression) -> frozenset[str]:
    from repro.core.expressions import Rollback

    if isinstance(expression, Rollback):
        found = frozenset({expression.identifier})
    else:
        found = frozenset()
    for child in expression.children():
        found |= _read_identifiers_of_expression(child)
    return found


def _read_identifiers(command: Command) -> frozenset[str]:
    if isinstance(command, ModifyState):
        return _read_identifiers_of_expression(command.expression)
    if isinstance(command, CommandSequence):
        return _read_identifiers(command.first) | _read_identifiers(
            command.second
        )
    return frozenset()


class Transaction:
    """A unit of work with snapshot reads and staged writes.

    A transaction reads against the database as of its *begin* time (a
    consistent snapshot — trivially consistent here because databases are
    immutable values) and stages commands.  Nothing touches the shared
    database until :meth:`TransactionManager.commit` validates and applies
    the staged commands atomically under the next commit timestamp.
    """

    __slots__ = (
        "txn_id",
        "begin_txn",
        "snapshot",
        "commands",
        "status",
        "commit_txn",
        "_explicit_reads",
    )

    def __init__(
        self, txn_id: int, begin_txn: int, snapshot: Database
    ) -> None:
        self.txn_id = txn_id
        #: The database transaction number when this transaction began.
        self.begin_txn = begin_txn
        #: The immutable database value this transaction reads.
        self.snapshot = snapshot
        self.commands: list[Command] = []
        self.status = TransactionStatus.ACTIVE
        #: The commit transaction number, set on commit.
        self.commit_txn: Optional[int] = None
        self._explicit_reads: set[str] = set()

    # -- client operations -------------------------------------------------------

    def read(self, expression: Expression):
        """Evaluate an expression against the begin-time snapshot,
        recording the relations it touched in the read set."""
        self._require_active()
        self._explicit_reads |= _read_identifiers_of_expression(expression)
        return expression.evaluate(self.snapshot)

    def stage(self, command: Command) -> None:
        """Add a command to the transaction's write script."""
        self._require_active()
        self.commands.append(command)

    # -- conflict sets ----------------------------------------------------------

    @property
    def read_set(self) -> frozenset[str]:
        """Identifiers read — explicitly or inside staged expressions."""
        reads = frozenset(self._explicit_reads)
        for command in self.commands:
            reads |= _read_identifiers(command)
        return reads

    @property
    def write_set(self) -> frozenset[str]:
        """Identifiers the staged commands write."""
        writes: frozenset[str] = frozenset()
        for command in self.commands:
            writes |= _written_identifiers(command)
        return writes

    # -- internal ------------------------------------------------------------------

    def _require_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise ConcurrencyError(
                f"transaction {self.txn_id} is {self.status.value}"
            )

    def __repr__(self) -> str:
        return (
            f"Transaction(id={self.txn_id}, status={self.status.value}, "
            f"begin={self.begin_txn}, commit={self.commit_txn})"
        )
