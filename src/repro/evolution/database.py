"""An evolving database: core semantics plus a scheme catalog.

:class:`EvolvingDatabase` layers scheme histories over the core
denotational semantics.  The underlying :class:`~repro.core.database
.Database` value evolves exactly as Sections 3 and 4 prescribe; the
catalog adds the TR87-003 operations — ``delete_relation`` and attribute-
level scheme changes — and enforces their transaction-time rules:

* updating or reading the *current* state of a deleted relation is an
  error, but rolling a deleted rollback/temporal relation back to a
  transaction at which it was alive still works (the past is never
  destroyed);
* scheme changes convert the current state to the new scheme in the same
  transaction; past states keep the scheme they were recorded under, and
  ``scheme_at`` recovers it.
"""

from __future__ import annotations

from typing import Any, Optional, Union as TypingUnion

from repro.errors import EvolutionError
from repro.core.commands import DefineRelation, ModifyState
from repro.core.database import EMPTY_DATABASE, Database
from repro.core.expressions import Const, Expression, Rollback, is_empty_set
from repro.core.relation import RelationType
from repro.core.txn import NOW, Numeral, is_now
from repro.evolution.schema_versions import SchemeHistory, SchemeVersion
from repro.historical.state import HistoricalState
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.attributes import Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

__all__ = ["EvolvingDatabase"]

State = TypingUnion[SnapshotState, HistoricalState]


class EvolvingDatabase:
    """The core database plus the scheme-evolution extension."""

    def __init__(self) -> None:
        self._database: Database = EMPTY_DATABASE
        self._catalog: dict[str, SchemeHistory] = {}

    @property
    def database(self) -> Database:
        """The underlying core database value."""
        return self._database

    @property
    def transaction_number(self) -> int:
        """The current transaction number."""
        return self._database.transaction_number

    # -- the core commands, scheme-aware -----------------------------------------

    def define_relation(
        self,
        identifier: str,
        rtype: TypingUnion[RelationType, str],
        schema: Schema,
    ) -> None:
        """``define_relation`` with a declared scheme.

        Unlike the core command (a silent no-op on bound identifiers),
        redefinition is an error here: the data dictionary must stay
        unambiguous.
        """
        if isinstance(rtype, str):
            rtype = RelationType.from_name(rtype)
        if identifier in self._catalog:
            raise EvolutionError(
                f"relation {identifier!r} is already defined"
            )
        self._database = DefineRelation(identifier, rtype).execute(
            self._database
        )
        self._catalog[identifier] = SchemeHistory(
            SchemeVersion(
                schema, rtype, True, self._database.transaction_number
            )
        )

    def modify_state(
        self, identifier: str, expression: Expression
    ) -> None:
        """``modify_state`` with scheme validation: the relation must be
        alive and the new state must match its current scheme."""
        history = self._require(identifier)
        if not history.current.alive:
            raise EvolutionError(
                f"relation {identifier!r} was deleted at transaction "
                f"{history.current.txn}; it cannot be modified"
            )
        new_state = expression.evaluate(self._database)
        if not is_empty_set(new_state) and (
            new_state.schema != history.current.schema
        ):
            raise EvolutionError(
                f"new state schema {new_state.schema.names} does not "
                f"match the current scheme "
                f"{history.current.schema.names} of {identifier!r}"
            )
        self._database = ModifyState(identifier, expression).execute(
            self._database
        )

    def delete_relation(self, identifier: str) -> None:
        """``delete_relation`` (TR87-003).

        Snapshot and historical relations are unbound outright — they
        carry no transaction-time history to preserve.  Rollback and
        temporal relations stay bound (their state sequences remain
        rollback-accessible) but are marked dead in the catalog; the
        deletion itself consumes a transaction number.
        """
        history = self._require(identifier)
        if not history.current.alive:
            raise EvolutionError(
                f"relation {identifier!r} is already deleted"
            )
        next_txn = self._database.transaction_number + 1
        if history.rtype.keeps_history:
            self._database = Database(self._database.state, next_txn)
        else:
            self._database = Database(
                self._database.state.unbind(identifier), next_txn
            )
        history.record(
            SchemeVersion(
                history.current.schema, history.rtype, False, next_txn
            )
        )

    # -- reads -------------------------------------------------------------------

    def rollback(self, identifier: str, numeral: Numeral = NOW):
        """``ρ(I, N)`` with aliveness rules: the probe transaction must be
        one at which the relation was alive (``now`` means the current
        transaction)."""
        history = self._require(identifier)
        probe = (
            self._database.transaction_number
            if is_now(numeral)
            else int(numeral)  # type: ignore[arg-type]
        )
        if not history.alive_at(probe):
            raise EvolutionError(
                f"relation {identifier!r} did not exist (or was deleted) "
                f"at transaction {probe}"
            )
        return Rollback(identifier, numeral).evaluate(self._database)

    def scheme_at(self, identifier: str, txn: int) -> Schema:
        """The scheme under which the relation's state at ``txn`` was
        recorded — a rollback operation on the data dictionary."""
        version = self._require(identifier).version_at(txn)
        if version is None:
            raise EvolutionError(
                f"relation {identifier!r} did not exist at transaction "
                f"{txn}"
            )
        return version.schema

    def current_scheme(self, identifier: str) -> Schema:
        """The relation's current scheme."""
        return self._require(identifier).current.schema

    def is_alive(self, identifier: str) -> bool:
        """True iff the relation exists and has not been deleted."""
        history = self._catalog.get(identifier)
        return history is not None and history.current.alive

    # -- scheme changes ------------------------------------------------------------

    def add_attribute(
        self, identifier: str, attribute: Attribute, default: Any
    ) -> None:
        """Extend the scheme with a new attribute; existing tuples in the
        current state take the ``default`` value."""
        history = self._require_alive(identifier)
        old_schema = history.current.schema
        if attribute.name in old_schema:
            raise EvolutionError(
                f"relation {identifier!r} already has an attribute "
                f"{attribute.name!r}"
            )
        new_schema = Schema(
            list(old_schema.attributes) + [attribute]
        )

        def convert_row(values: tuple) -> list:
            return list(values) + [default]

        self._install_converted(identifier, history, new_schema, convert_row)

    def drop_attribute(self, identifier: str, name: str) -> None:
        """Remove an attribute from the scheme; the current state is
        projected accordingly (dropping a key may merge tuples, per set
        semantics)."""
        history = self._require_alive(identifier)
        old_schema = history.current.schema
        if name not in old_schema:
            raise EvolutionError(
                f"relation {identifier!r} has no attribute {name!r}"
            )
        if old_schema.degree == 1:
            raise EvolutionError(
                "cannot drop the only attribute of a relation"
            )
        keep = [n for n in old_schema.names if n != name]
        new_schema = old_schema.project(keep)
        positions = [old_schema.position(n) for n in keep]

        def convert_row(values: tuple) -> list:
            return [values[i] for i in positions]

        self._install_converted(identifier, history, new_schema, convert_row)

    def rename_attribute(
        self, identifier: str, old_name: str, new_name: str
    ) -> None:
        """Rename an attribute; values are untouched."""
        history = self._require_alive(identifier)
        new_schema = history.current.schema.rename({old_name: new_name})

        def convert_row(values: tuple) -> list:
            return list(values)

        self._install_converted(identifier, history, new_schema, convert_row)

    # -- internal -------------------------------------------------------------------

    def _install_converted(
        self,
        identifier: str,
        history: SchemeHistory,
        new_schema: Schema,
        convert_row,
    ) -> None:
        """Convert the current state to the new scheme and install both
        the state and the scheme version in one transaction."""
        current = Rollback(identifier, NOW).evaluate(self._database)
        if is_empty_set(current):
            if history.rtype.stores_valid_time:
                new_state: State = HistoricalState.empty(new_schema)
            else:
                new_state = SnapshotState.empty(new_schema)
        elif isinstance(current, HistoricalState):
            new_state = HistoricalState(
                new_schema,
                [
                    HistoricalTuple(
                        convert_row(t.value.values),
                        t.valid_time,
                        schema=new_schema,
                    )
                    for t in current.tuples
                ],
            )
        else:
            new_state = SnapshotState(
                new_schema,
                [convert_row(t.values) for t in current.tuples],
            )
        self._database = ModifyState(
            identifier, Const(new_state)
        ).execute(self._database)
        history.record(
            SchemeVersion(
                new_schema,
                history.rtype,
                True,
                self._database.transaction_number,
            )
        )

    def _require(self, identifier: str) -> SchemeHistory:
        history = self._catalog.get(identifier)
        if history is None:
            raise EvolutionError(
                f"relation {identifier!r} is not defined"
            )
        return history

    def _require_alive(self, identifier: str) -> SchemeHistory:
        history = self._require(identifier)
        if not history.current.alive:
            raise EvolutionError(
                f"relation {identifier!r} was deleted and cannot be "
                "changed"
            )
        return history
