"""Scheme histories: the data dictionary as a rollback relation.

The scheme of a relation is itself transaction-time-varying information.  A
:class:`SchemeHistory` records a strictly increasing sequence of
:class:`SchemeVersion` entries; ``version_at(txn)`` interpolates exactly
like ``FINDSTATE`` does over relation states.
"""

from __future__ import annotations

import bisect
from typing import Optional

from repro.errors import EvolutionError
from repro.core.relation import RelationType
from repro.snapshot.schema import Schema

__all__ = ["SchemeVersion", "SchemeHistory"]


class SchemeVersion:
    """One version of a relation's scheme."""

    __slots__ = ("schema", "rtype", "alive", "txn")

    def __init__(
        self,
        schema: Schema,
        rtype: RelationType,
        alive: bool,
        txn: int,
    ) -> None:
        self.schema = schema
        self.rtype = rtype
        self.alive = alive
        self.txn = txn

    def __repr__(self) -> str:
        status = "alive" if self.alive else "deleted"
        return (
            f"SchemeVersion({self.schema.names}, {self.rtype.value}, "
            f"{status}, txn={self.txn})"
        )


class SchemeHistory:
    """The transaction-time-indexed sequence of a relation's schemes."""

    def __init__(self, first: SchemeVersion) -> None:
        self._versions: list[SchemeVersion] = [first]

    @property
    def versions(self) -> tuple[SchemeVersion, ...]:
        """All scheme versions, in transaction order."""
        return tuple(self._versions)

    @property
    def current(self) -> SchemeVersion:
        """The most recent scheme version."""
        return self._versions[-1]

    @property
    def rtype(self) -> RelationType:
        """The relation type (invariant across scheme versions)."""
        return self._versions[0].rtype

    def record(self, version: SchemeVersion) -> None:
        """Append a new scheme version; transaction numbers must be
        strictly increasing."""
        if version.txn <= self._versions[-1].txn:
            raise EvolutionError(
                f"scheme version transaction {version.txn} is not after "
                f"{self._versions[-1].txn}"
            )
        if version.rtype is not self.rtype:
            raise EvolutionError(
                "a relation's type cannot change across scheme versions"
            )
        self._versions.append(version)

    def version_at(self, txn: int) -> Optional[SchemeVersion]:
        """The scheme version current at ``txn`` (largest version
        transaction ≤ ``txn``), or None before the relation existed."""
        txns = [v.txn for v in self._versions]
        index = bisect.bisect_right(txns, txn)
        if index == 0:
            return None
        return self._versions[index - 1]

    def alive_at(self, txn: int) -> bool:
        """True iff the relation existed and was not deleted at ``txn``."""
        version = self.version_at(txn)
        return version is not None and version.alive
