"""Scheme evolution — the extension the paper defers to TR87-003.

Section 5 of the paper: "the scheme is associated solely with transaction
time, since it defines how reality is modeled by the database ...  changes
to the scheme are properly the province of transaction time.  Elsewhere we
provide extensions to the language presented here to accommodate scheme
evolution ...  We include a delete_relation command as part of those
extensions."

This package supplies those extensions over the core language:

* a per-relation *scheme history* — a sequence of (scheme, alive flag)
  versions indexed by transaction time, so ``scheme_at(I, txn)`` is a
  rollback operation on the data dictionary itself;
* ``delete_relation`` — snapshot/historical relations vanish; rollback/
  temporal relations stop accepting updates and stop answering ``ρ(I,
  now)``, but their *past* states remain rollback-accessible (transaction
  time is never destroyed);
* attribute-level scheme changes (``add_attribute``, ``drop_attribute``,
  ``rename_attribute``) that convert the current state to the new scheme
  in the same transaction, while past states keep the scheme they were
  recorded under.
"""

from repro.evolution.schema_versions import SchemeVersion, SchemeHistory
from repro.evolution.database import EvolvingDatabase

__all__ = ["SchemeVersion", "SchemeHistory", "EvolvingDatabase"]
