"""``python -m repro`` — the command-line entry, in three modes.

Following the classic CLI/eval/serve split of interactive database
shells:

* ``python -m repro`` (or ``python -m repro repl``) — the interactive
  REPL; ``.connect host:port`` switches it onto a running server;
* ``python -m repro eval FILE`` / ``python -m repro eval -c SOURCE`` —
  run a script of statements and exit (errors exit non-zero);
* ``python -m repro serve`` — the asyncio wire-protocol server, with
  the backing database (plain / ``--durable-dir`` / ``--shards`` /
  ``--cluster-shards`` × ``--cluster-replicas``) and the admission
  bounds on the command line.
"""

from __future__ import annotations

import argparse
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "McKenzie & Snodgrass (1987) transaction-time algebra: "
            "REPL, script evaluation, or wire-protocol server"
        ),
    )
    commands = parser.add_subparsers(dest="command")

    commands.add_parser("repl", help="interactive shell (the default)")

    evaluate = commands.add_parser(
        "eval", help="evaluate a statement script and exit"
    )
    evaluate.add_argument(
        "script",
        nargs="?",
        help="path of a statement script ('-' for stdin)",
    )
    evaluate.add_argument(
        "-c",
        dest="source",
        help="statements given inline instead of a file",
    )

    serve = commands.add_parser(
        "serve", help="run the asyncio wire-protocol server"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7077)
    serve.add_argument("--backlog", type=int, default=128)
    serve.add_argument(
        "--workers", type=int, default=4, help="worker pool size"
    )
    serve.add_argument(
        "--queue-high",
        type=int,
        default=64,
        help="admission queue high watermark (shed above this)",
    )
    serve.add_argument(
        "--queue-low",
        type=int,
        default=None,
        help="low watermark ending a shed episode (default: high/2)",
    )
    serve.add_argument(
        "--per-connection",
        type=int,
        default=16,
        help="max queued requests per connection",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline (queue wait + execution)",
    )
    serve.add_argument(
        "--durable-dir",
        default=None,
        help="serve a durable (WAL + checkpoint) database in this dir",
    )
    serve.add_argument(
        "--fsync",
        default="batch(64, 100)",
        help="WAL fsync policy: always | never | batch(N, ms)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve a sharded database with N shards",
    )
    serve.add_argument(
        "--cluster-shards",
        type=int,
        default=None,
        help="serve a cluster topology with N sharded primaries",
    )
    serve.add_argument(
        "--cluster-replicas",
        type=int,
        default=1,
        help="replicas behind each cluster primary (default 1)",
    )
    serve.add_argument(
        "--cluster-dir",
        default=None,
        help="directory backing the cluster's primaries, replicas and "
        "coordinator journal (enables --reopen)",
    )
    serve.add_argument(
        "--reopen",
        action="store_true",
        help="reopen a killed cluster from --cluster-dir instead of "
        "demanding empty stores",
    )
    serve.add_argument(
        "--supervise",
        action="store_true",
        help="run the cluster health supervisor (probe primaries, "
        "auto-failover, resync/backfill replicas)",
    )
    serve.add_argument(
        "--supervise-interval",
        type=float,
        default=0.25,
        help="seconds between supervisor probe ticks (default 0.25)",
    )
    serve.add_argument(
        "--debug-ops",
        action="store_true",
        help="honour debug requests (stall_ms) from load drivers",
    )
    serve.add_argument(
        "--isolation",
        choices=("serial", "si", "ssi"),
        default="serial",
        help="write-path isolation on the plain backing: serial "
        "(single-writer), si (snapshot isolation, first-committer-"
        "wins) or ssi (serializable snapshot isolation)",
    )
    return parser


def _run_eval(args: argparse.Namespace) -> int:
    """Evaluate statements from a file / stdin / -c and print results."""
    import io

    from repro.lang.repl import Repl

    if args.source is not None:
        source = args.source
    elif args.script in (None, "-"):
        source = sys.stdin.read()
    else:
        try:
            with open(args.script, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    repl = Repl(sys.stdout)
    for line in io.StringIO(source):
        repl.feed(line)
    # an unterminated trailing statement still runs (scripts need no
    # final newline-semicolon pair)
    repl.feed(";\n" if repl.pending else "\n")
    return 1 if repl.error_count else 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import ReproServer, ServerConfig

    cluster = None
    if args.cluster_shards is not None:
        from repro.cluster import ClusterConfig

        cluster = ClusterConfig(
            shards=args.cluster_shards,
            replicas_per_shard=args.cluster_replicas,
            directory=args.cluster_dir,
            reopen=args.reopen,
        )
    elif args.cluster_dir is not None or args.reopen or args.supervise:
        print(
            "error: --cluster-dir/--reopen/--supervise need "
            "--cluster-shards",
            file=sys.stderr,
        )
        return 2
    config = ServerConfig(
        host=args.host,
        port=args.port,
        backlog=args.backlog,
        workers=args.workers,
        queue_high=args.queue_high,
        queue_low=args.queue_low,
        per_connection=args.per_connection,
        deadline_ms=args.deadline_ms,
        durable_dir=args.durable_dir,
        fsync=args.fsync,
        shards=args.shards,
        cluster=cluster,
        supervise=args.supervise,
        supervise_interval=args.supervise_interval,
        debug_ops=args.debug_ops,
        isolation=args.isolation,
    )

    async def _main() -> None:
        server = ReproServer(config)
        await server.start()
        backing = (
            f"durable({config.durable_dir})"
            if config.durable_dir
            else f"sharded({config.shards})"
            if config.shards
            else (
                f"cluster({config.cluster.shards}x"
                f"{config.cluster.replicas_per_shard})"
            )
            if config.cluster
            else "in-memory"
        )
        if config.isolation != "serial":
            backing += f", {config.isolation}"
        print(
            f"repro server listening on {server.host}:{server.port} "
            f"({backing}, {config.workers} workers, "
            f"queue {server.admission.queue_low}"
            f"/{server.admission.queue_high})",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        finally:
            print("draining...", flush=True)
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "eval":
        return _run_eval(args)
    from repro.lang.repl import run_repl

    run_repl(sys.stdin, sys.stdout)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
