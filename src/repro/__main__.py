"""``python -m repro`` — the interactive REPL."""

import sys

from repro.lang.repl import run_repl

if __name__ == "__main__":
    run_repl(sys.stdin, sys.stdout)
