"""Assembled histories for the benchmark harness."""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.commands import Command, DefineRelation, ModifyState
from repro.core.expressions import Const
from repro.core.relation import RelationType
from repro.benzvi.bridge import OperationKind, TemporalOperation
from repro.historical.intervals import Interval
from repro.storage.backend import State, StorageBackend
from repro.storage.versioned_db import VersionedDatabase
from repro.workloads.streams import UpdateStream

__all__ = [
    "command_history",
    "populate_backends",
    "random_operation_stream",
]


def command_history(
    stream: UpdateStream,
    identifier: str = "r",
    rtype: Optional[RelationType] = None,
) -> list[Command]:
    """``define_relation`` followed by one ``modify_state`` per stream
    state — the command list whose sentence builds the history under the
    core semantics."""
    if rtype is None:
        rtype = (
            RelationType.TEMPORAL
            if stream.historical
            else RelationType.ROLLBACK
        )
    commands: list[Command] = [DefineRelation(identifier, rtype)]
    commands += [
        ModifyState(identifier, Const(state)) for state in stream.states()
    ]
    return commands


def populate_backends(
    backends: Sequence[StorageBackend],
    states: Sequence[State],
    identifier: str = "r",
    rtype: RelationType = RelationType.ROLLBACK,
) -> list[VersionedDatabase]:
    """Install the same state sequence into every backend; returns the
    wrapping :class:`VersionedDatabase` objects (one per backend)."""
    databases = [VersionedDatabase(backend) for backend in backends]
    for database in databases:
        database.define(identifier, rtype)
    for state in states:
        for database in databases:
            database.set_state(identifier, state)
    return databases


def random_operation_stream(
    length: int,
    fact_space: int = 50,
    horizon: int = 500,
    seed: int = 0,
) -> list[TemporalOperation]:
    """A seeded stream of insert/delete/modify operations over single-
    attribute facts, for the Ben-Zvi comparison (E9).

    Facts are integers in ``range(fact_space)``; an operation only deletes
    or modifies facts that are currently believed, so the stream is always
    applicable.
    """
    rng = random.Random(seed)
    alive: set[int] = set()
    operations: list[TemporalOperation] = []

    def random_interval() -> Interval:
        start = rng.randrange(horizon - 1)
        end = start + rng.randrange(1, max(2, horizon - start))
        return Interval(start, end)

    for _ in range(length):
        roll = rng.random()
        if alive and roll < 0.2:
            fact = rng.choice(sorted(alive))
            operations.append(
                TemporalOperation(OperationKind.DELETE, (fact,))
            )
            alive.discard(fact)
        elif alive and roll < 0.45:
            fact = rng.choice(sorted(alive))
            operations.append(
                TemporalOperation(
                    OperationKind.MODIFY, (fact,), random_interval()
                )
            )
        else:
            fact = rng.randrange(fact_space)
            operations.append(
                TemporalOperation(
                    OperationKind.INSERT, (fact,), random_interval()
                )
            )
            alive.add(fact)
    return operations
