"""Assembled histories for the benchmark harness, and the
property-based isolation checker (E20).

The second half of this module is the adversarial proof for the MVCC
layer (:mod:`repro.concurrency.mvcc`): it generates randomized
concurrent schedules (interleaved begin/read/write/commit/abort over
shared relations), runs them through any transaction manager, records
the *observed* history — which version every read saw, which version
every commit installed — and checks isolation by building Adya's Direct
Serialization Graph (DSG) and classifying its cycles:

* ``ww`` edges — version order: the writer of version ``k`` of a
  relation precedes the writer of version ``k+1``;
* ``wr`` edges — read dependency: the writer of the version a
  transaction observed precedes the reader;
* ``rw`` edges — antidependency: a transaction that observed version
  ``k`` precedes the writer of version ``k+1`` (it logically ran
  before the overwrite).

A serial or SSI run must produce an acyclic DSG.  A snapshot-isolation
run may produce cycles, but every one must contain **at least two** rw
antidependency edges — the write-skew shape — because first-committer-
wins forbids both G1 anomalies (cycles of ww/wr edges alone) and
lost-update cycles (exactly one rw edge).  The checker tests exactly
that, so a conflict-detection bug surfaces as a concrete illegal cycle
rather than a silently wrong database.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import ConcurrencyError, WorkloadError
from repro.core.commands import Command, DefineRelation, ModifyState
from repro.core.database import Database
from repro.core.expressions import Const, Rollback, Union
from repro.core.relation import RelationType
from repro.benzvi.bridge import OperationKind, TemporalOperation
from repro.historical.intervals import Interval
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.storage.backend import State, StorageBackend
from repro.storage.versioned_db import VersionedDatabase
from repro.workloads.streams import UpdateStream

__all__ = [
    "command_history",
    "populate_backends",
    "random_operation_stream",
    "ScheduleOp",
    "schedule_from_choices",
    "random_schedule",
    "run_schedule",
    "TxnRecord",
    "History",
    "DSG",
    "build_dsg",
    "check_history",
    "CheckResult",
    "SETUP",
]


def command_history(
    stream: UpdateStream,
    identifier: str = "r",
    rtype: Optional[RelationType] = None,
) -> list[Command]:
    """``define_relation`` followed by one ``modify_state`` per stream
    state — the command list whose sentence builds the history under the
    core semantics."""
    if rtype is None:
        rtype = (
            RelationType.TEMPORAL
            if stream.historical
            else RelationType.ROLLBACK
        )
    commands: list[Command] = [DefineRelation(identifier, rtype)]
    commands += [
        ModifyState(identifier, Const(state)) for state in stream.states()
    ]
    return commands


def populate_backends(
    backends: Sequence[StorageBackend],
    states: Sequence[State],
    identifier: str = "r",
    rtype: RelationType = RelationType.ROLLBACK,
) -> list[VersionedDatabase]:
    """Install the same state sequence into every backend; returns the
    wrapping :class:`VersionedDatabase` objects (one per backend)."""
    databases = [VersionedDatabase(backend) for backend in backends]
    for database in databases:
        database.define(identifier, rtype)
    for state in states:
        for database in databases:
            database.set_state(identifier, state)
    return databases


def random_operation_stream(
    length: int,
    fact_space: int = 50,
    horizon: int = 500,
    seed: int = 0,
) -> list[TemporalOperation]:
    """A seeded stream of insert/delete/modify operations over single-
    attribute facts, for the Ben-Zvi comparison (E9).

    Facts are integers in ``range(fact_space)``; an operation only deletes
    or modifies facts that are currently believed, so the stream is always
    applicable.
    """
    rng = random.Random(seed)
    alive: set[int] = set()
    operations: list[TemporalOperation] = []

    def random_interval() -> Interval:
        start = rng.randrange(horizon - 1)
        end = start + rng.randrange(1, max(2, horizon - start))
        return Interval(start, end)

    for _ in range(length):
        roll = rng.random()
        if alive and roll < 0.2:
            fact = rng.choice(sorted(alive))
            operations.append(
                TemporalOperation(OperationKind.DELETE, (fact,))
            )
            alive.discard(fact)
        elif alive and roll < 0.45:
            fact = rng.choice(sorted(alive))
            operations.append(
                TemporalOperation(
                    OperationKind.MODIFY, (fact,), random_interval()
                )
            )
        else:
            fact = rng.randrange(fact_space)
            operations.append(
                TemporalOperation(
                    OperationKind.INSERT, (fact,), random_interval()
                )
            )
            alive.add(fact)
    return operations


# ---------------------------------------------------------------------------
# Randomized concurrent schedules
# ---------------------------------------------------------------------------

#: DSG node standing for the setup transaction that installed the
#: initial version of every relation.
SETUP = -1

_OP_KINDS = ("read", "append", "write")


@dataclass(frozen=True)
class ScheduleOp:
    """One step of a concurrent schedule.

    ``kind`` is one of ``read`` (evaluate ``ρ(relation, now)`` against
    the transaction's snapshot), ``append`` (stage
    ``modify_state(relation, ρ(relation) ∪ const)`` — a read *and* a
    write of the relation), ``write`` (stage a blind
    ``modify_state(relation, const)``), ``commit`` or ``abort``.
    ``txn`` is the logical client index; the transaction begins
    implicitly at its first op.
    """

    kind: str
    txn: int
    relation: Optional[str] = None

    def __repr__(self) -> str:
        if self.relation is None:
            return f"t{self.txn}.{self.kind}"
        return f"t{self.txn}.{self.kind}({self.relation})"


def schedule_from_choices(
    choices: Sequence[int],
    txn_count: int,
    relations: Sequence[str],
) -> list[ScheduleOp]:
    """Decode a flat list of non-negative integers into a well-formed
    schedule — the deterministic mapping Hypothesis shrinks through.

    Choices are consumed in ``(client pick, action pick)`` pairs; every
    transaction still open when the choices run out is committed, so
    *every* integer list decodes to a schedule in which each of the
    ``txn_count`` clients finishes exactly once.  Because action code 0
    is commit, shrinking the integers toward zero shrinks the schedule
    toward trivial commit-only transactions — minimal failing schedules
    stay human-readable.
    """
    if txn_count < 1:
        raise WorkloadError("schedule needs at least one transaction")
    if not relations:
        raise WorkloadError("schedule needs at least one relation")
    ops: list[ScheduleOp] = []
    finished: set[int] = set()
    action_space = 2 + len(_OP_KINDS) * len(relations)
    pairs = (len(choices) // 2) * 2
    for at in range(0, pairs, 2):
        live = [t for t in range(txn_count) if t not in finished]
        if not live:
            break
        txn = live[choices[at] % len(live)]
        action = choices[at + 1] % action_space
        if action == 0:
            ops.append(ScheduleOp("commit", txn))
            finished.add(txn)
        elif action == 1:
            ops.append(ScheduleOp("abort", txn))
            finished.add(txn)
        else:
            code = action - 2
            relation = relations[code // len(_OP_KINDS)]
            ops.append(
                ScheduleOp(_OP_KINDS[code % len(_OP_KINDS)], txn, relation)
            )
    for txn in range(txn_count):
        if txn not in finished:
            ops.append(ScheduleOp("commit", txn))
    return ops


def random_schedule(
    seed: int,
    txn_count: int = 4,
    relations: Sequence[str] = ("A", "B", "C"),
    length: int = 24,
) -> list[ScheduleOp]:
    """A seeded random schedule of ``length`` interleaved steps."""
    rng = random.Random(seed)
    choices = [rng.randrange(1024) for _ in range(2 * length)]
    return schedule_from_choices(choices, txn_count, relations)


# ---------------------------------------------------------------------------
# Running a schedule and recording the observed history
# ---------------------------------------------------------------------------


@dataclass
class TxnRecord:
    """What one scheduled transaction actually did and observed."""

    client: int
    status: str = "open"  # open | committed | aborted
    begin_txn: Optional[int] = None
    commit_txn: Optional[int] = None
    #: relation → transaction stamp of the version this txn observed
    #: (snapshot reads: at most one observed version per relation).
    reads: dict[str, int] = field(default_factory=dict)
    #: relation → transaction stamp of the final version this txn
    #: installed at commit.
    writes: dict[str, int] = field(default_factory=dict)


@dataclass
class History:
    """The observed execution of one schedule."""

    isolation: str
    relations: tuple[str, ...]
    #: relation → transaction stamp of the setup-installed version.
    setup: dict[str, int]
    txns: list[TxnRecord]
    schedule: list[ScheduleOp]

    @property
    def committed(self) -> list[TxnRecord]:
        return [t for t in self.txns if t.status == "committed"]

    @property
    def aborted(self) -> list[TxnRecord]:
        return [t for t in self.txns if t.status == "aborted"]


_SCHEDULE_SCHEMA = Schema(["v"])


def _version_of(database: Database, relation: str) -> int:
    """The transaction stamp of the latest state of ``relation`` in the
    (snapshot) database — the version a read observes."""
    bound = database.state.lookup(relation)
    if bound is None:
        return 0
    stamps = bound.transaction_numbers
    return stamps[-1] if stamps else 0


def run_schedule(
    manager,
    schedule: Iterable[ScheduleOp],
    relations: Sequence[str],
) -> History:
    """Execute a schedule against any transaction manager (serial
    :class:`~repro.concurrency.manager.TransactionManager` or
    :class:`~repro.concurrency.mvcc.MVCCManager`) and record the
    observed history.

    A setup transaction first installs an initial version of every
    relation.  Commit failures (:class:`ConcurrencyError`) are recorded
    as aborts, never raised: conflict-detection behaviour is exactly
    what the checker wants to observe.
    """
    schedule = list(schedule)
    setup = manager.begin()
    for relation in relations:
        setup.stage(DefineRelation(relation, RelationType.ROLLBACK))
        setup.stage(
            ModifyState(
                relation,
                Const(SnapshotState(_SCHEDULE_SCHEMA, [("init",)])),
            )
        )
    database = manager.commit(setup)
    setup_versions = {r: _version_of(database, r) for r in relations}

    txn_count = max((op.txn for op in schedule), default=-1) + 1
    records = [TxnRecord(client=i) for i in range(txn_count)]
    live: dict[int, object] = {}

    def transaction_for(client: int):
        transaction = live.get(client)
        if transaction is None:
            transaction = manager.begin()
            live[client] = transaction
            records[client].begin_txn = transaction.begin_txn
        return transaction

    for op in schedule:
        record = records[op.txn]
        if record.status != "open":
            raise WorkloadError(
                f"malformed schedule: {op!r} after t{op.txn} finished"
            )
        transaction = transaction_for(op.txn)
        if op.kind == "read":
            transaction.read(Rollback(op.relation))
            record.reads.setdefault(
                op.relation, _version_of(transaction.snapshot, op.relation)
            )
        elif op.kind == "append":
            value = f"t{op.txn}.{len(transaction.commands)}"
            transaction.stage(
                ModifyState(
                    op.relation,
                    Union(
                        Rollback(op.relation),
                        Const(
                            SnapshotState(_SCHEDULE_SCHEMA, [(value,)])
                        ),
                    ),
                )
            )
            record.reads.setdefault(
                op.relation, _version_of(transaction.snapshot, op.relation)
            )
        elif op.kind == "write":
            value = f"t{op.txn}.{len(transaction.commands)}"
            transaction.stage(
                ModifyState(
                    op.relation,
                    Const(SnapshotState(_SCHEDULE_SCHEMA, [(value,)])),
                )
            )
        elif op.kind == "commit":
            live.pop(op.txn, None)
            try:
                database = manager.commit(transaction)
            except ConcurrencyError:
                record.status = "aborted"
            else:
                record.status = "committed"
                record.commit_txn = database.transaction_number
                for relation in transaction.write_set:
                    record.writes[relation] = _version_of(
                        database, relation
                    )
        elif op.kind == "abort":
            live.pop(op.txn, None)
            manager.abort(transaction)
            record.status = "aborted"
        else:
            raise WorkloadError(f"unknown schedule op kind {op.kind!r}")

    isolation = getattr(manager, "isolation", "serial")
    return History(
        isolation=isolation,
        relations=tuple(relations),
        setup=setup_versions,
        txns=records,
        schedule=schedule,
    )


# ---------------------------------------------------------------------------
# The Direct Serialization Graph and its cycle classification
# ---------------------------------------------------------------------------


@dataclass
class DSG:
    """Adya's Direct Serialization Graph over committed transactions.

    Nodes are indices into ``History.txns`` plus :data:`SETUP`; edges
    are ``(src, dst, kind)`` with kind ``ww``, ``wr`` or ``rw``.
    """

    nodes: list[int]
    edges: list[tuple[int, int, str]]
    #: Reads that observed a version no committed transaction (nor
    #: setup) installed — a G1-style anomaly in itself.
    phantom_reads: list[tuple[int, str, int]]

    def edges_of_kinds(self, kinds) -> dict[int, list[int]]:
        adjacency: dict[int, list[int]] = {n: [] for n in self.nodes}
        for src, dst, kind in self.edges:
            if kind in kinds:
                adjacency[src].append(dst)
        return adjacency


def build_dsg(history: History) -> DSG:
    """Build the DSG from the observed reads/writes of a history."""
    committed = [
        i for i, t in enumerate(history.txns) if t.status == "committed"
    ]
    nodes = [SETUP] + committed
    edges: set[tuple[int, int, str]] = set()
    phantom: list[tuple[int, str, int]] = []

    # Per relation: the installed version sequence, in stamp order
    # (stamps are commit transaction numbers, so stamp order is
    # installation order).
    for relation in history.relations:
        versions: list[tuple[int, int]] = []  # (stamp, writer node)
        setup_stamp = history.setup.get(relation, 0)
        versions.append((setup_stamp, SETUP))
        for i in committed:
            stamp = history.txns[i].writes.get(relation)
            if stamp is not None:
                versions.append((stamp, i))
        versions.sort()
        writer_of = {stamp: node for stamp, node in versions}
        next_writer: dict[int, int] = {}
        for (stamp, _), (_, later) in zip(versions, versions[1:]):
            next_writer[stamp] = later

        # ww: version order.
        for (_, earlier), (_, later) in zip(versions, versions[1:]):
            if earlier != later:
                edges.add((earlier, later, "ww"))

        # wr and rw: what each committed reader observed.
        for i in committed:
            observed = history.txns[i].reads.get(relation)
            if observed is None:
                continue
            writer = writer_of.get(observed)
            if writer is None:
                phantom.append((i, relation, observed))
                continue
            if writer != i:
                edges.add((writer, i, "wr"))
            overwriter = next_writer.get(observed)
            if overwriter is not None and overwriter != i:
                edges.add((i, overwriter, "rw"))

    return DSG(nodes=nodes, edges=sorted(edges), phantom_reads=phantom)


def _find_cycle(adjacency: dict[int, list[int]]) -> Optional[list[int]]:
    """One cycle in the directed graph, as a node list, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    parent: dict[int, int] = {}
    for root in adjacency:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(adjacency[root]))]
        color[root] = GRAY
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if color[succ] == WHITE:
                    color[succ] = GRAY
                    parent[succ] = node
                    stack.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if color[succ] == GRAY:
                    cycle = [succ, node]
                    walk = node
                    while walk != succ:
                        walk = parent[walk]
                        cycle.append(walk)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
        # exhausted this root's component
    return None


def _reachable(
    adjacency: dict[int, list[int]], start: int, goal: int
) -> bool:
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for succ in adjacency.get(node, ()):
            if succ == goal:
                return True
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return False


@dataclass
class CheckResult:
    """The isolation verdict for one history."""

    isolation: str
    ok: bool
    violations: list[str]
    #: True when the full DSG has a cycle that is *allowed* at this
    #: level — i.e. an SI run that exhibited write skew.
    write_skew: bool

    def __str__(self) -> str:
        status = "ok" if self.ok else "VIOLATION"
        skew = " (write skew observed)" if self.write_skew else ""
        detail = "; ".join(self.violations)
        return f"[{self.isolation}] {status}{skew} {detail}".rstrip()


def check_history(
    history: History, isolation: Optional[str] = None
) -> CheckResult:
    """Check a history against its isolation level's DSG contract.

    * every level: no read of a never-installed version, and no cycle
      among ``ww``/``wr`` edges alone (G1c);
    * ``si``: additionally, no cycle with exactly **one** ``rw`` edge
      (the lost-update shape first-committer-wins must prevent); cycles
      with two or more ``rw`` edges are the write-skew anomaly SI
      legitimately admits, and are reported via ``write_skew``;
    * ``serial`` / ``ssi``: no cycle of any kind.
    """
    level = isolation or history.isolation
    dsg = build_dsg(history)
    violations: list[str] = []

    for reader, relation, version in dsg.phantom_reads:
        violations.append(
            f"t{reader} read version {version} of {relation!r} which no "
            "committed transaction installed"
        )

    committed_adj = dsg.edges_of_kinds({"ww", "wr"})
    cycle = _find_cycle(committed_adj)
    if cycle is not None:
        violations.append(
            f"G1c: cycle of committed dependencies {cycle} (ww/wr edges "
            "only) — impossible under any isolation level here"
        )

    full_adj = dsg.edges_of_kinds({"ww", "wr", "rw"})
    full_cycle = _find_cycle(full_adj)
    write_skew = False

    if level in ("serial", "ssi"):
        if full_cycle is not None:
            violations.append(
                f"{level}: DSG cycle {full_cycle} — history is not "
                "serializable"
            )
    elif level == "si":
        for src, dst, kind in dsg.edges:
            if kind != "rw":
                continue
            if _reachable(committed_adj, dst, src):
                violations.append(
                    f"si: rw antidependency t{src}→t{dst} closed by "
                    "ww/wr path — a cycle with a single rw edge (lost "
                    "update), which first-committer-wins must prevent"
                )
        if full_cycle is not None and not violations:
            write_skew = True
    else:
        raise WorkloadError(f"unknown isolation level {level!r}")

    return CheckResult(
        isolation=level,
        ok=not violations,
        violations=violations,
        write_skew=write_skew,
    )
