"""Sentence-text workloads: what wire clients actually send.

The server speaks the language's concrete syntax, so a load workload is
a stream of *sentence strings*, not state objects.  A
:class:`SentenceWorkload` is a seeded, **picklable** recipe for one
client's schedule: relation definitions first, then a mixed stream of
reads (``rollback``/``project``/``select`` query text) and writes
(``modify_state`` with replace / append / delete recipes rendered
through the AST printer — the same printer/parser pair whose round-trip
the WAL codec already relies on).

Two properties make these drivable from many processes at once:

* **determinism** — :meth:`items` rebuilds the schedule from the seed on
  every call; a workload object carries no consumed-iterator state, so
  shipping it to a worker process (pickle) or reconstructing it from
  ``(seed, parameters)`` replays the identical schedule.  A failing run
  is reproduced by one integer.
* **namespacing** — every relation name is prefixed with the workload's
  ``namespace``.  Clients with distinct namespaces touch disjoint
  relations, so each client's query results are fully determined by its
  *own* schedule regardless of how the server interleaves other
  clients' writes — the property the differential oracle leans on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.generators import StateGenerator, default_schema

__all__ = ["SentenceWorkload", "EXECUTE", "QUERY"]

#: Item kinds: the request op the sentence should be sent with.
EXECUTE = "execute"
QUERY = "query"


@dataclass
class SentenceWorkload:
    """A seeded recipe for one client's sentence schedule."""

    seed: int = 0
    namespace: str = "w"
    relations: int = 1
    length: int = 50
    read_fraction: float = 0.7
    cardinality: int = 6
    key_space: int = 50
    schema_width: int = 2
    _cache: "List[Tuple[str, str]] | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.relations < 1:
            raise WorkloadError(
                f"relations must be ≥ 1, got {self.relations}"
            )
        if self.length < 1:
            raise WorkloadError(f"length must be ≥ 1, got {self.length}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError(
                f"read_fraction must be in [0, 1], got "
                f"{self.read_fraction}"
            )

    def relation(self, index: int) -> str:
        return f"{self.namespace}_r{index}"

    def items(self) -> "List[Tuple[str, str]]":
        """The schedule: ``(kind, source)`` pairs, defines first.

        Rebuilt deterministically from the seed on every call (then
        memoized), so equality of two workloads' parameters implies
        equality of their schedules.
        """
        if self._cache is not None:
            return self._cache
        from repro.core.expressions import Const
        from repro.lang.ast_printer import format_expression

        rng = random.Random(self.seed)
        generator = StateGenerator(
            default_schema(self.schema_width),
            seed=self.seed ^ 0x53ED,
            key_space=self.key_space,
        )
        items: "List[Tuple[str, str]]" = []
        for index in range(self.relations):
            items.append(
                (EXECUTE, f"define_relation({self.relation(index)}, rollback)")
            )
            # every relation gets one initial state so reads before the
            # first random write still see a recorded state
            literal = format_expression(
                Const(generator.snapshot_state(self.cardinality))
            )
            items.append(
                (EXECUTE, f"modify_state({self.relation(index)}, {literal})")
            )
        for _ in range(self.length):
            name = self.relation(rng.randrange(self.relations))
            if rng.random() < self.read_fraction:
                items.append((QUERY, self._read_sentence(rng, name)))
            else:
                items.append(
                    (EXECUTE, self._write_sentence(rng, generator, name))
                )
        self._cache = items
        return items

    def __iter__(self) -> "Iterator[Tuple[str, str]]":
        return iter(self.items())

    def __len__(self) -> int:
        return self.items().__len__()

    # -- sentence recipes ----------------------------------------------------

    def _read_sentence(self, rng: random.Random, name: str) -> str:
        shape = rng.randrange(3)
        if shape == 0:
            return f"rollback({name}, now)"
        if shape == 1:
            return f"project [key] (rollback({name}, now))"
        bound = rng.randrange(1, self.key_space)
        return f"select [key < {bound}] (rollback({name}, now))"

    def _write_sentence(
        self, rng: random.Random, generator: StateGenerator, name: str
    ) -> str:
        from repro.core.expressions import Const
        from repro.lang.ast_printer import format_expression

        literal = format_expression(
            Const(generator.snapshot_state(max(1, self.cardinality // 2)))
        )
        shape = rng.randrange(3)
        if shape == 0:  # replace the whole state
            return f"modify_state({name}, {literal})"
        if shape == 1:  # append
            return (
                f"modify_state({name}, "
                f"(rollback({name}, now) union {literal}))"
            )
        # delete by predicate
        bound = rng.randrange(1, self.key_space)
        return (
            f"modify_state({name}, "
            f"select [key >= {bound}] (rollback({name}, now)))"
        )

    def __getstate__(self) -> dict:
        # ship the recipe, never the memoized schedule
        state = {
            "seed": self.seed,
            "namespace": self.namespace,
            "relations": self.relations,
            "length": self.length,
            "read_fraction": self.read_fraction,
            "cardinality": self.cardinality,
            "key_space": self.key_space,
            "schema_width": self.schema_width,
        }
        return state

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)
