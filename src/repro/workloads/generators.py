"""Random state generators (seeded, deterministic)."""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import WorkloadError
from repro.historical.chronons import FOREVER
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.attributes import INTEGER, STRING, Attribute
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

__all__ = [
    "default_schema",
    "StateGenerator",
    "random_snapshot_state",
    "random_historical_state",
]


def default_schema(width: int = 3) -> Schema:
    """A simple ``(key: integer, a1: string, a2: string, ...)`` schema."""
    if width < 1:
        raise WorkloadError(f"schema width must be ≥ 1, got {width}")
    attributes = [Attribute("key", INTEGER)]
    attributes += [
        Attribute(f"a{i}", STRING) for i in range(1, width)
    ]
    return Schema(attributes)


class StateGenerator:
    """Seeded generator of snapshot and historical states.

    ``key_space`` bounds the key attribute's values, so churned streams
    revisit keys (producing genuine replaces, not only inserts).

    Generators are **picklable and seed-reconstructible**: the multi-
    process load driver ships generator configs to worker processes, so
    pickling captures the construction parameters *plus* the RNG's
    current state — an unpickled generator continues the exact sequence
    of the original, and :meth:`config`/:meth:`from_config` rebuild a
    fresh generator at its initial state from plain data.  Failure
    reports can therefore always name one ``seed`` that replays the
    workload (the ``REPRO_TEST_SEED`` discipline, extended to drivers).
    """

    _WORDS = (
        "alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
        "golf", "hotel", "india", "juliet", "kilo", "lima",
    )

    def __init__(
        self,
        schema: Optional[Schema] = None,
        seed: int = 0,
        key_space: int = 10_000,
        horizon: int = 1_000,
    ) -> None:
        self.schema = schema if schema is not None else default_schema()
        #: The seed this generator started from (reconstruction handle).
        self.seed = seed
        self._rng = random.Random(seed)
        self.key_space = key_space
        #: The latest chronon used for bounded valid-time intervals.
        self.horizon = horizon

    # -- reconstruction ------------------------------------------------------

    def config(self) -> dict:
        """Plain-data construction parameters: ``from_config(config())``
        is a fresh generator at this one's *initial* state."""
        return {
            "schema_width": len(self.schema.attributes),
            "seed": self.seed,
            "key_space": self.key_space,
            "horizon": self.horizon,
        }

    @classmethod
    def from_config(cls, config: dict) -> "StateGenerator":
        return cls(
            default_schema(config.get("schema_width", 3)),
            seed=config.get("seed", 0),
            key_space=config.get("key_space", 10_000),
            horizon=config.get("horizon", 1_000),
        )

    def spawn(self, index: int) -> "StateGenerator":
        """A sibling generator with a seed derived from this one's —
        how a driver gives each of N workers independent but
        reproducible randomness (worker ``i`` of seed ``s`` always
        draws the same stream)."""
        derived = (self.seed * 1_000_003 + index * 7_919 + 1) % (2**31)
        return StateGenerator(
            self.schema,
            seed=derived,
            key_space=self.key_space,
            horizon=self.horizon,
        )

    def __getstate__(self) -> dict:
        # pickle by construction parameters + RNG state, never by
        # __dict__, so the format survives attribute renames and the
        # unpickled generator *continues* the original's sequence
        return {
            "config": self.config(),
            "rng_state": self._rng.getstate(),
        }

    def __setstate__(self, state: dict) -> None:
        rebuilt = StateGenerator.from_config(state["config"])
        self.schema = rebuilt.schema
        self.seed = rebuilt.seed
        self.key_space = rebuilt.key_space
        self.horizon = rebuilt.horizon
        self._rng = rebuilt._rng
        self._rng.setstate(
            tuple(
                tuple(part) if isinstance(part, list) else part
                for part in state["rng_state"]
            )
        )

    # -- rows ---------------------------------------------------------------

    def random_row(self) -> list:
        """One random row matching the schema."""
        row: list = []
        for attribute in self.schema.attributes:
            if attribute.name == "key":
                row.append(self._rng.randrange(self.key_space))
            elif attribute.domain == INTEGER:
                row.append(self._rng.randrange(1_000_000))
            else:
                row.append(
                    f"{self._rng.choice(self._WORDS)}-"
                    f"{self._rng.randrange(10_000)}"
                )
        return row

    def random_periods(self, max_runs: int = 3) -> PeriodSet:
        """A random non-empty period set with up to ``max_runs`` runs."""
        runs = []
        cursor = self._rng.randrange(self.horizon // 2)
        for _ in range(self._rng.randint(1, max_runs)):
            start = cursor + self._rng.randrange(1, 20)
            length = self._rng.randrange(1, 50)
            runs.append((start, start + length))
            cursor = start + length
        if self._rng.random() < 0.15:
            runs.append((cursor + self._rng.randrange(1, 20), FOREVER))
        return PeriodSet(runs)

    # -- states --------------------------------------------------------------

    def snapshot_state(self, cardinality: int) -> SnapshotState:
        """A random snapshot state with (up to) the given cardinality —
        duplicate random rows collapse under set semantics."""
        return SnapshotState(
            self.schema, [self.random_row() for _ in range(cardinality)]
        )

    def historical_state(self, cardinality: int) -> HistoricalState:
        """A random historical state with (up to) the given number of
        distinct facts."""
        tuples = [
            HistoricalTuple(
                self.random_row(), self.random_periods(), schema=self.schema
            )
            for _ in range(cardinality)
        ]
        return HistoricalState(self.schema, tuples)


def random_snapshot_state(
    cardinality: int, seed: int = 0, schema: Optional[Schema] = None
) -> SnapshotState:
    """One-shot convenience wrapper over :class:`StateGenerator`."""
    return StateGenerator(schema, seed).snapshot_state(cardinality)


def random_historical_state(
    cardinality: int, seed: int = 0, schema: Optional[Schema] = None
) -> HistoricalState:
    """One-shot convenience wrapper over :class:`StateGenerator`."""
    return StateGenerator(schema, seed).historical_state(cardinality)
