"""Update streams: per-transaction state sequences with controlled churn.

The central workload of experiments E5–E7: a relation starts at a given
cardinality, then each transaction replaces a ``churn`` fraction of its
tuples (half removed, half replaced by fresh tuples, plus optional net
growth).  ``churn`` near 0 models a slowly changing dimension — the case
where the paper's full-copy semantics is most wasteful; ``churn`` near 1
models full rewrites — the case where deltas degenerate to full copies.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Union

from repro.errors import WorkloadError
from repro.historical.state import HistoricalState
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.state import SnapshotState
from repro.workloads.generators import StateGenerator

__all__ = ["UpdateStream", "churn_stream"]

State = Union[SnapshotState, HistoricalState]


class UpdateStream:
    """A seeded, replayable sequence of states for one relation."""

    def __init__(
        self,
        length: int,
        cardinality: int = 100,
        churn: float = 0.1,
        growth: int = 0,
        historical: bool = False,
        seed: int = 0,
        generator: Optional[StateGenerator] = None,
    ) -> None:
        if length < 1:
            raise WorkloadError(f"stream length must be ≥ 1, got {length}")
        if not 0.0 <= churn <= 1.0:
            raise WorkloadError(f"churn must be in [0, 1], got {churn}")
        if cardinality < 1:
            raise WorkloadError(
                f"cardinality must be ≥ 1, got {cardinality}"
            )
        self.length = length
        self.cardinality = cardinality
        self.churn = churn
        self.growth = growth
        self.historical = historical
        self.seed = seed
        self._generator = (
            generator
            if generator is not None
            else StateGenerator(seed=seed)
        )

    @property
    def schema(self):
        """The schema every state in the stream shares."""
        return self._generator.schema

    def states(self) -> Iterator[State]:
        """Yield the stream's states in transaction order."""
        rng = random.Random(self.seed ^ 0x5EED)
        gen = self._generator
        if self.historical:
            current = list(gen.historical_state(self.cardinality).tuples)
        else:
            current = list(gen.snapshot_state(self.cardinality).tuples)

        for step in range(self.length):
            if step > 0:
                changes = max(1, int(len(current) * self.churn))
                removals = min(changes // 2, max(0, len(current) - 1))
                for _ in range(removals):
                    current.pop(rng.randrange(len(current)))
                additions = changes - removals + self.growth
                for _ in range(additions):
                    current.append(self._fresh_atom(gen))
            yield self._as_state(current)

    def _fresh_atom(self, gen: StateGenerator):
        if self.historical:
            return HistoricalTuple(
                gen.random_row(), gen.random_periods(), schema=gen.schema
            )
        from repro.snapshot.tuples import SnapshotTuple

        return SnapshotTuple(gen.schema, gen.random_row())

    def _as_state(self, atoms) -> State:
        if self.historical:
            return HistoricalState(self._generator.schema, atoms)
        return SnapshotState(self._generator.schema, list(atoms))


def churn_stream(
    length: int,
    cardinality: int = 100,
    churn: float = 0.1,
    seed: int = 0,
    historical: bool = False,
) -> list[State]:
    """Materialize an :class:`UpdateStream` as a list of states."""
    return list(
        UpdateStream(
            length,
            cardinality=cardinality,
            churn=churn,
            historical=historical,
            seed=seed,
        ).states()
    )
