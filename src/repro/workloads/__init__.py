"""Synthetic workload generation for the benchmark harness.

The paper has no evaluation workloads (it is a formal paper), so the
benchmarks run on parameterized synthetic histories (DESIGN.md Section 3,
substitution rule).  Everything is seeded and deterministic:

* :mod:`repro.workloads.generators` — random snapshot and historical
  states over configurable schemas;
* :mod:`repro.workloads.streams` — *update streams*: sequences of states
  for one relation with a controlled churn rate (the fraction of tuples
  that change per transaction), the main knob of experiments E5–E7;
* :mod:`repro.workloads.histories` — assembled histories: command lists
  for the core semantics, pre-populated backends, and
  :class:`~repro.benzvi.bridge.TemporalOperation` streams for the Ben-Zvi
  comparison.
"""

from repro.workloads.generators import (
    StateGenerator,
    default_schema,
    random_historical_state,
    random_snapshot_state,
)
from repro.workloads.streams import UpdateStream, churn_stream
from repro.workloads.histories import (
    command_history,
    populate_backends,
    random_operation_stream,
)

__all__ = [
    "StateGenerator",
    "default_schema",
    "random_snapshot_state",
    "random_historical_state",
    "UpdateStream",
    "churn_stream",
    "command_history",
    "populate_backends",
    "random_operation_stream",
]
