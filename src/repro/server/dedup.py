"""Bounded server-side dedup: exactly-once executes across retries.

A client that loses its connection mid-write cannot tell whether the
sentence landed — the paper's transaction-time model makes the *store*
append-only, but the *wire* still loses acks.  The fix is the classic
one: the client stamps every execute with a session token and a
monotonically increasing sequence number, and the server remembers the
reply it sent for each ``(session, seq)``.  A retransmission replays
the cached reply instead of applying the sentence a second time.

Both bounds are hard:

* at most ``max_sessions`` sessions, evicted least-recently-used;
* at most ``max_replies`` cached replies per session, evicted lowest
  sequence number first (the seq a well-behaved client is least likely
  to retransmit).

Eviction never risks a double-apply.  The table tracks each session's
highest recorded seq, so a retransmitted seq whose cached reply was
already evicted is classified ``stale`` — the server answers it with a
typed error and does **not** re-execute.  The window bound therefore
trades *retry lifetime* for memory, never correctness.  (An evicted
*session* forgets its ``last_seq`` too; that is safe for the intended
client, which never reuses a seq it saw any reply for, and is the
standard memory/at-most-once trade every bounded dedup table makes.)
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.obsv import registry as _obsv

__all__ = ["DedupTable"]

#: lookup() verdicts.
HIT = "hit"
MISS = "miss"
STALE = "stale"


class _SessionWindow:
    __slots__ = ("replies", "last_seq")

    def __init__(self) -> None:
        self.replies: "OrderedDict[int, dict]" = OrderedDict()
        self.last_seq = 0


class DedupTable:
    """The bounded ``(session, seq) -> cached reply`` map."""

    __slots__ = (
        "_sessions",
        "_max_sessions",
        "_max_replies",
        "hits",
        "misses",
        "stale_refused",
        "sessions_evicted",
        "replies_evicted",
    )

    def __init__(
        self, max_sessions: int = 1024, max_replies: int = 32
    ) -> None:
        if max_sessions < 1 or max_replies < 1:
            raise ValueError(
                "dedup bounds must be >= 1, got "
                f"max_sessions={max_sessions}, max_replies={max_replies}"
            )
        self._sessions: "OrderedDict[str, _SessionWindow]" = OrderedDict()
        self._max_sessions = max_sessions
        self._max_replies = max_replies
        self.hits = 0
        self.misses = 0
        self.stale_refused = 0
        self.sessions_evicted = 0
        self.replies_evicted = 0

    # -- the protocol ---------------------------------------------------------

    def lookup(
        self, token: str, seq: int, *, count_miss: bool = True
    ) -> Tuple[str, Optional[dict]]:
        """Classify a ``(session, seq)``: ``("hit", reply)`` for a
        cached retransmission, ``("stale", None)`` for a seq that was
        recorded but whose reply left the window, ``("miss", None)``
        for a first sighting.

        ``count_miss=False`` suppresses the miss counter — the server
        checks twice per request (admission fast path, then again just
        before executing) and only the first check should count.
        """
        window = self._sessions.get(token)
        if window is None:
            if count_miss:
                self.misses += 1
            return MISS, None
        self._sessions.move_to_end(token)
        reply = window.replies.get(seq)
        if reply is not None:
            self.hits += 1
            if _obsv.enabled():
                _obsv.get().counter("server.dedup.hits").inc()
            return HIT, reply
        if seq <= window.last_seq:
            self.stale_refused += 1
            if _obsv.enabled():
                _obsv.get().counter("server.dedup.stale").inc()
            return STALE, None
        if count_miss:
            self.misses += 1
        return MISS, None

    def record(self, token: str, seq: int, reply: dict) -> None:
        """Cache the definitive reply for ``(token, seq)``.  Idempotent
        per seq: a concurrent duplicate that raced past the lookup
        keeps the first recorded reply."""
        window = self._sessions.get(token)
        if window is None:
            while len(self._sessions) >= self._max_sessions:
                self._sessions.popitem(last=False)
                self.sessions_evicted += 1
            window = self._sessions[token] = _SessionWindow()
        else:
            self._sessions.move_to_end(token)
        if seq in window.replies:
            return
        window.replies[seq] = dict(reply)
        if seq > window.last_seq:
            window.last_seq = seq
        while len(window.replies) > self._max_replies:
            window.replies.popitem(last=False)
            self.replies_evicted += 1

    # -- introspection --------------------------------------------------------

    @property
    def sessions(self) -> int:
        return len(self._sessions)

    @property
    def replies(self) -> int:
        return sum(
            len(window.replies) for window in self._sessions.values()
        )

    def snapshot(self) -> dict:
        """The ``server.dedup.*`` rows for ``metrics_snapshot()``."""
        return {
            "server.dedup.sessions": self.sessions,
            "server.dedup.replies": self.replies,
            "server.dedup.hits": self.hits,
            "server.dedup.misses": self.misses,
            "server.dedup.stale_refused": self.stale_refused,
            "server.dedup.sessions_evicted": self.sessions_evicted,
            "server.dedup.replies_evicted": self.replies_evicted,
        }

    def __repr__(self) -> str:
        return (
            f"DedupTable(sessions={self.sessions}/{self._max_sessions}, "
            f"replies={self.replies}, hits={self.hits}, "
            f"stale_refused={self.stale_refused})"
        )
