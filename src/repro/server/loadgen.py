"""The multi-process load driver: real sockets, hundreds of clients.

Layout: the parent process owns (or points at) a running server;
``processes`` child processes are spawned (the *spawn* start method, so
every shipped config proves its picklability), and each child runs
``clients_per_process`` :class:`AsyncReproClient` coroutines on one
event loop.  Aggregate concurrency = processes × clients_per_process
genuinely concurrent connections — the "heavy traffic" the roadmap asks
for, measured over real socket round-trips against the full stack.

Every client replays a :class:`~repro.workloads.sentences.SentenceWorkload`
whose seed derives from the driver seed and the client's (process,
client) coordinates, and whose relation namespace is unique to the
client.  Namespacing makes each client's query results a pure function
of its own schedule, so the driver can assert **zero divergence**: it
records a digest of every query response, and
:meth:`DriverReport.verify` replays each schedule against an in-process
:class:`Session` oracle and compares byte-for-byte (via the digests).
Transaction numbers are checked for per-connection monotonicity instead
of equality — the global commit order under concurrency is real
nondeterminism, the *contents* of each relation are not.

Shed requests (``queue_full``) are retried with capped exponential
backoff — under saturation the driver backs off rather than diverging
from the oracle — and every failure message carries the driver seed, so
any run reproduces from one integer (the ``REPRO_TEST_SEED``
discipline, extended across the process boundary).
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import (
    ConnectionClosedError,
    DeadlineExceededError,
    QueueFullError,
    ReproError,
    ServerError,
)
from repro.server.admission import percentile
from repro.server.client import AsyncReproClient
from repro.workloads.sentences import EXECUTE, QUERY, SentenceWorkload

__all__ = [
    "DriverConfig",
    "DriverReport",
    "ClientRecord",
    "run_driver",
    "drive_clients",
    "client_workload",
    "oracle_digests",
]


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


@dataclass
class DriverConfig:
    """Everything a child process needs; plain data, hence picklable."""

    host: str = "127.0.0.1"
    port: int = 0
    processes: int = 2
    clients_per_process: int = 8
    #: Random sentences per client beyond the define/seed prelude.
    requests_per_client: int = 20
    read_fraction: float = 0.7
    seed: int = 0
    relations: int = 1
    cardinality: int = 6
    #: Debug stall attached to every query (needs server debug_ops).
    stall_ms: Optional[float] = None
    deadline_ms: Optional[float] = None
    #: Retries for shed requests (capped exponential backoff).
    shed_retries: int = 8
    shed_backoff_s: float = 0.01

    @property
    def total_clients(self) -> int:
        return self.processes * self.clients_per_process

    def client_seed(self, process_index: int, client_index: int) -> int:
        return (
            self.seed * 2_654_435_761
            + process_index * 40_503
            + client_index
        ) % (2**31)


def client_workload(
    config: DriverConfig, process_index: int, client_index: int
) -> SentenceWorkload:
    """The (deterministic) schedule of one client."""
    return SentenceWorkload(
        seed=config.client_seed(process_index, client_index),
        namespace=f"p{process_index}c{client_index}",
        relations=config.relations,
        length=config.requests_per_client,
        read_fraction=config.read_fraction,
        cardinality=config.cardinality,
    )


@dataclass
class ClientRecord:
    """One client's observed run."""

    process_index: int
    client_index: int
    query_digests: List[str] = field(default_factory=list)
    latencies_s: List[float] = field(default_factory=list)
    shed_events: int = 0
    killed: int = 0
    errors: List[str] = field(default_factory=list)
    txns: List[int] = field(default_factory=list)


@dataclass
class DriverReport:
    """The merged result of every client in every process."""

    config: DriverConfig
    clients: List[ClientRecord]
    wall_seconds: float

    @property
    def requests(self) -> int:
        return sum(
            len(c.query_digests) + len(c.txns) for c in self.clients
        )

    @property
    def shed_events(self) -> int:
        return sum(c.shed_events for c in self.clients)

    @property
    def killed(self) -> int:
        return sum(c.killed for c in self.clients)

    @property
    def errors(self) -> List[str]:
        return [error for c in self.clients for error in c.errors]

    @property
    def throughput(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0

    def latency_percentiles_ms(self) -> dict:
        merged = [s for c in self.clients for s in c.latencies_s]
        return {
            "p50": percentile(merged, 0.50) * 1e3,
            "p99": percentile(merged, 0.99) * 1e3,
        }

    def verify(self) -> List[str]:
        """Replay every client's schedule on an in-process Session
        oracle; returns divergence messages (empty = byte-identical).
        Every message names the driver seed for reproduction."""
        divergences: List[str] = []
        for record in self.clients:
            workload = client_workload(
                self.config, record.process_index, record.client_index
            )
            expected, texts = oracle_digests(workload)
            if record.errors:
                divergences.append(
                    f"client p{record.process_index}"
                    f"c{record.client_index} saw errors "
                    f"{record.errors[:3]} "
                    f"(reproduce with seed={self.config.seed})"
                )
                continue
            if record.txns != sorted(record.txns):
                divergences.append(
                    f"client p{record.process_index}"
                    f"c{record.client_index}: transaction numbers not "
                    f"monotonic: {record.txns} "
                    f"(reproduce with seed={self.config.seed})"
                )
            if record.query_digests != expected:
                index = next(
                    (
                        i
                        for i, (got, want) in enumerate(
                            zip(record.query_digests, expected)
                        )
                        if got != want
                    ),
                    min(len(record.query_digests), len(expected)),
                )
                want_text = (
                    texts[index] if index < len(texts) else "<missing>"
                )
                divergences.append(
                    f"client p{record.process_index}"
                    f"c{record.client_index} diverged at query #{index}: "
                    f"oracle said\n{want_text}\n"
                    f"(reproduce with seed={self.config.seed})"
                )
        return divergences


def oracle_digests(
    workload: SentenceWorkload,
) -> "tuple[List[str], List[str]]":
    """What a correct server must answer for one client's schedule:
    the in-process Session oracle's printed relations (digests + texts)."""
    from repro.lang.session import Session
    from repro.server.store import render_state

    session = Session()
    digests: List[str] = []
    texts: List[str] = []
    for kind, source in workload.items():
        if kind == EXECUTE:
            session.execute(source)
        else:
            text = render_state(session.query(source))
            texts.append(text)
            digests.append(_digest(text))
    return digests, texts


# -- the client coroutine ----------------------------------------------------


async def _run_client(
    config: DriverConfig, process_index: int, client_index: int
) -> ClientRecord:
    record = ClientRecord(process_index, client_index)
    workload = client_workload(config, process_index, client_index)
    client = AsyncReproClient(config.host, config.port)
    try:
        await client.connect()
        for kind, source in workload.items():
            await _issue(config, client, record, kind, source)
    except ReproError as error:
        record.errors.append(f"{type(error).__name__}: {error}")
    finally:
        await client.close()
    return record


async def _issue(
    config: DriverConfig,
    client: AsyncReproClient,
    record: ClientRecord,
    kind: str,
    source: str,
) -> None:
    backoff = config.shed_backoff_s
    for attempt in range(config.shed_retries + 1):
        started = time.perf_counter()
        try:
            if kind == EXECUTE:
                txn = await client.execute(
                    source, deadline_ms=config.deadline_ms
                )
                record.txns.append(txn)
            else:
                text = await client.query(
                    source,
                    deadline_ms=config.deadline_ms,
                    stall_ms=config.stall_ms,
                )
                record.query_digests.append(_digest(text))
            record.latencies_s.append(time.perf_counter() - started)
            return
        except QueueFullError:
            record.shed_events += 1
            if attempt >= config.shed_retries:
                record.errors.append(
                    f"request shed {attempt + 1} times, giving up: "
                    f"{source[:60]!r}"
                )
                return
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2, 0.5)
        except DeadlineExceededError:
            record.killed += 1
            return
        except ConnectionClosedError as error:
            record.errors.append(f"connection closed: {error}")
            raise


async def _run_process_clients(
    config: DriverConfig, process_index: int
) -> List[ClientRecord]:
    return list(
        await asyncio.gather(
            *(
                _run_client(config, process_index, client_index)
                for client_index in range(config.clients_per_process)
            )
        )
    )


def drive_clients(
    config: DriverConfig, process_index: int = 0
) -> List[ClientRecord]:
    """Run one process-worth of concurrent clients on this thread —
    the in-process entry benchmarks use to measure without fork costs."""
    return asyncio.run(_run_process_clients(config, process_index))


def _process_entry(
    args: "tuple[DriverConfig, int]",
) -> List[ClientRecord]:
    config, process_index = args
    return drive_clients(config, process_index)


def run_driver(config: DriverConfig) -> DriverReport:
    """Run the full multi-process drive and merge the reports.

    Uses the *spawn* start method deliberately: child processes receive
    the config by pickle, proving the whole driver configuration is
    shippable (the satellite requirement) and keeping the behaviour
    identical across platforms.
    """
    if config.processes < 1:
        raise ServerError(
            f"processes must be ≥ 1, got {config.processes}"
        )
    started = time.perf_counter()
    if config.processes == 1:
        batches = [_process_entry((config, 0))]
    else:
        context = multiprocessing.get_context("spawn")
        with context.Pool(config.processes) as pool:
            batches = pool.map(
                _process_entry,
                [(config, index) for index in range(config.processes)],
            )
    wall = time.perf_counter() - started
    clients = [record for batch in batches for record in batch]
    return DriverReport(config=config, clients=clients, wall_seconds=wall)


def driver_seed_from_env(default: int = 0) -> int:
    """The driver run seed: ``REPRO_TEST_SEED`` when set (the suite's
    run-seed discipline), else ``default``."""
    value = os.environ.get("REPRO_TEST_SEED")
    return int(value) if value else default
