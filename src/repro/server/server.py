"""The asyncio TCP server: wire protocol × admission control × store.

Request lifecycle::

    client ──frame──▶ connection handler ──try_admit──▶ request queue
                           │        ╲ shed: queue_full / shutting_down
                           │
    worker pool (N tasks) ◀┘  pop → deadline check → execute → respond
                               ╲ expired in queue: deadline
                               ╲ wait_for timeout:  deadline (killed)
                               ╲ dead connection:   orphaned (slot freed)

Admission keeps the queue bounded (watermark hysteresis, per-connection
budgets — :mod:`repro.server.admission`); the worker pool bounds
execution concurrency.  Execution itself is cooperative: a worker runs
the (synchronous, CPU-bound) query under ``asyncio.wait_for``, so the
kill fires at the next await point — immediately for requests stalled on
simulated I/O (``stall_ms``, the debug hook load tests use to model slow
queries) and before execution for requests whose deadline already
expired while queued.

Shutdown drains: the listener closes first, admitted requests finish
(bounded by ``drain_timeout``), workers are then cancelled and the
store is closed.  A client that disconnects mid-request costs nothing
but an ``orphaned`` count: its queued requests release their admission
slots without executing, and a failing response write marks the
connection dead rather than killing the worker.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    ClusterDegradedError,
    ProtocolError,
    ReproError,
    ServerError,
)
from repro.obsv import registry as _obsv
from repro.server import protocol
from repro.server.admission import AdmissionController
from repro.server.dedup import DedupTable
from repro.server.store import ServerStore, SessionView

__all__ = ["ServerConfig", "ReproServer", "ThreadedServer", "serve_in_thread"]


@dataclass
class ServerConfig:
    """Everything a server needs; flat and picklable so drivers can ship
    it to child processes."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; ReproServer.port reports the bind
    backlog: int = 128
    workers: int = 4
    #: Admission bounds (see AdmissionController).
    queue_high: int = 64
    queue_low: Optional[int] = None
    per_connection: int = 16
    #: Default per-request deadline; None = no deadline unless the
    #: request carries one.
    deadline_ms: Optional[float] = None
    max_frame: int = protocol.MAX_FRAME_BYTES
    #: Honour the ``stall_ms`` debug op (load tests / benchmarks only).
    debug_ops: bool = False
    #: Seconds stop() waits for admitted requests before cancelling.
    drain_timeout: float = 5.0
    # -- backing (all five Session modes compose here) ----------------
    durable_dir: Optional[str] = None
    fsync: str = "batch(64, 100)"
    checkpoint_every: int = 256
    shards: Optional[int] = None
    replica_of: Optional[str] = field(default=None, repr=False)
    #: A :class:`~repro.cluster.ClusterConfig` (sharded primaries ×
    #: replica sets); mutually exclusive with the three legacy backings.
    cluster: Optional[object] = field(default=None, repr=False)
    #: Write-path isolation on the plain backing: "serial" (the
    #: single-writer TransactionManager), "si" or "ssi" (multi-writer
    #: MVCC, see repro.concurrency.mvcc).
    isolation: str = "serial"
    #: Exactly-once dedup window bounds (see repro.server.dedup).
    dedup_sessions: int = 1024
    dedup_replies: int = 32
    #: Run a ClusterSupervisor on the event loop (cluster backing only):
    #: probe/heal every ``supervise_interval`` seconds, declaring a
    #: primary dead after ``supervise_failures`` consecutive failures.
    supervise: bool = False
    supervise_interval: float = 0.25
    supervise_failures: int = 3

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServerError(f"workers must be ≥ 1, got {self.workers}")
        if self.supervise and self.cluster is None:
            raise ServerError(
                "supervise=True needs a cluster backing "
                "(cluster=ClusterConfig(...))"
            )


class _Connection:
    """Per-connection state: identity, liveness, write lock, read view."""

    __slots__ = ("id", "writer", "alive", "view", "send_lock")

    _ids = itertools.count(1)

    def __init__(self, writer: asyncio.StreamWriter, view: SessionView) -> None:
        self.id = next(self._ids)
        self.writer = writer
        self.alive = True
        self.view = view
        self.send_lock = asyncio.Lock()


@dataclass
class _Request:
    """One admitted request waiting in / moving through the queue."""

    connection: _Connection
    message: dict
    admitted_at: float
    deadline: Optional[float]  # absolute perf_counter seconds


class ReproServer:
    """One listening socket over one :class:`ServerStore`."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.store = ServerStore(
            durable_dir=config.durable_dir,
            fsync=config.fsync,
            checkpoint_every=config.checkpoint_every,
            shards=config.shards,
            replica_of=config.replica_of,
            cluster=config.cluster,
            isolation=config.isolation,
        )
        self.admission = AdmissionController(
            queue_high=config.queue_high,
            queue_low=config.queue_low,
            per_connection=config.per_connection,
        )
        self.dedup = DedupTable(
            max_sessions=config.dedup_sessions,
            max_replies=config.dedup_replies,
        )
        self.supervisor = None
        self.supervisor_ticks = 0
        self._supervisor_task: Optional[asyncio.Task] = None
        self._queue: "asyncio.Queue[_Request]" = asyncio.Queue()
        self._server: Optional[asyncio.base_events.Server] = None
        self._workers: list[asyncio.Task] = []
        self._connections: set[_Connection] = set()
        self._draining = False
        self.connections_opened = 0
        self.connections_closed = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The actual bound port (meaningful after start())."""
        if self._server is None:
            raise ServerError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            backlog=self.config.backlog,
        )
        self._workers = [
            asyncio.ensure_future(self._worker())
            for _ in range(self.config.workers)
        ]
        if self.config.supervise and self.store.cluster is not None:
            from repro.cluster.supervisor import ClusterSupervisor

            self.supervisor = ClusterSupervisor(
                self.store.cluster,
                probe_interval=self.config.supervise_interval,
                failure_threshold=self.config.supervise_failures,
            )
            self._supervisor_task = asyncio.ensure_future(
                self._supervise()
            )

    async def _supervise(self) -> None:
        """Tick the supervisor on the event loop: probes and repairs
        serialize with writes, so a failover never races an execute."""
        assert self.supervisor is not None
        while True:
            await asyncio.sleep(self.config.supervise_interval)
            try:
                self.supervisor.tick()
            except Exception:  # pragma: no cover - defensive
                pass
            self.supervisor_ticks += 1

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: close the listener, drain admitted
        requests, cancel workers, close connections and the store."""
        self._draining = True
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
            await asyncio.gather(
                self._supervisor_task, return_exceptions=True
            )
            self._supervisor_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            try:
                await asyncio.wait_for(
                    self._queue.join(), self.config.drain_timeout
                )
            except asyncio.TimeoutError:
                pass
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        for connection in list(self._connections):
            connection.alive = False
            connection.writer.close()
        self._connections.clear()
        self.store.close()

    # -- connection handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer, self.store.view())
        self._connections.add(connection)
        self.connections_opened += 1
        if _obsv.enabled():
            _obsv.get().counter("server.connections_opened").inc()
        decoder = protocol.FrameDecoder(self.config.max_frame)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                try:
                    payloads = list(decoder.feed(chunk))
                    messages = [
                        protocol.validate_request(
                            protocol.decode_message(payload)
                        )
                        for payload in payloads
                    ]
                except ProtocolError as error:
                    # framing is unrecoverable: report and hang up
                    await self._send(
                        connection,
                        protocol.response(
                            None,
                            protocol.STATUS_ERROR,
                            error=str(error),
                            error_type="ProtocolError",
                        ),
                    )
                    break
                for message in messages:
                    await self._admit(connection, message)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            connection.alive = False
            self._connections.discard(connection)
            self.connections_closed += 1
            if _obsv.enabled():
                _obsv.get().counter("server.connections_closed").inc()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _admit(self, connection: _Connection, message: dict) -> None:
        request_id = message.get("id")
        op = message["op"]
        # control ops answer inline — no queue, and they keep working
        # while draining so operators can watch the drain
        if op == protocol.OP_PING:
            await self._send(
                connection,
                protocol.response(
                    request_id,
                    protocol.STATUS_OK,
                    txn=self.store.transaction_number,
                ),
            )
            return
        if op == protocol.OP_METRICS:
            await self._send(
                connection,
                protocol.response(
                    request_id,
                    protocol.STATUS_OK,
                    metrics=self.metrics_snapshot(),
                ),
            )
            return
        if self._draining:
            await self._send(
                connection,
                protocol.response(
                    request_id,
                    protocol.STATUS_SHUTDOWN,
                    error="server is draining",
                ),
            )
            return
        if op == protocol.OP_EXECUTE:
            token = message.get("session")
            if token is not None:
                # exactly-once fast path: a retransmission of a request
                # we already answered replays the cached reply without
                # taking a queue slot
                verdict, cached = self.dedup.lookup(
                    token, message["seq"]
                )
                if verdict == "hit":
                    assert cached is not None
                    await self._send(
                        connection,
                        dict(cached, id=request_id, replayed=True),
                    )
                    return
                if verdict == "stale":
                    await self._send(
                        connection,
                        protocol.response(
                            request_id,
                            protocol.STATUS_ERROR,
                            error=(
                                f"seq {message['seq']} already executed "
                                "but its cached reply left the dedup "
                                "window; refusing to re-apply"
                            ),
                            error_type="ServerError",
                        ),
                    )
                    return
            if self.store.fully_degraded:
                # every shard is shedding writes: answer here instead
                # of queueing work guaranteed to fail
                self.admission.shed_degraded()
                await self._send(
                    connection,
                    protocol.response(
                        request_id,
                        protocol.STATUS_DEGRADED,
                        error=(
                            "every shard is degraded (no live "
                            "primaries); writes are shed until the "
                            "supervisor repairs the cluster"
                        ),
                        error_type="ClusterDegradedError",
                    ),
                )
                return
        reason = self.admission.try_admit(connection.id)
        if reason is not None:
            await self._send(
                connection,
                protocol.response(
                    request_id,
                    protocol.STATUS_QUEUE_FULL,
                    error=f"request shed: {reason}",
                ),
            )
            return
        admitted_at = time.perf_counter()
        deadline_ms = message.get("deadline_ms", self.config.deadline_ms)
        deadline = (
            admitted_at + deadline_ms / 1e3
            if deadline_ms is not None
            else None
        )
        self._queue.put_nowait(
            _Request(connection, message, admitted_at, deadline)
        )

    # -- workers --------------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            try:
                request = await self._queue.get()
            except asyncio.CancelledError:
                return
            try:
                await self._process(request)
            except asyncio.CancelledError:
                return
            except Exception:  # pragma: no cover - defensive
                pass
            finally:
                self._queue.task_done()

    async def _process(self, request: _Request) -> None:
        connection = request.connection
        request_id = request.message.get("id")
        if not connection.alive:
            # the client hung up while this request was queued: release
            # the admission slot without occupying a worker
            self.admission.finish(
                connection.id,
                admitted_at=request.admitted_at,
                executed=False,
                outcome="orphaned",
            )
            return
        now = time.perf_counter()
        if request.deadline is not None and now >= request.deadline:
            self.admission.finish(
                connection.id,
                admitted_at=request.admitted_at,
                executed=False,
                outcome="expired",
            )
            await self._send(
                connection,
                protocol.response(
                    request_id,
                    protocol.STATUS_DEADLINE,
                    error="deadline expired while queued",
                ),
            )
            return
        self.admission.start()
        outcome = "completed"
        try:
            remaining = (
                request.deadline - now
                if request.deadline is not None
                else None
            )
            reply = await asyncio.wait_for(
                self._perform(request), remaining
            )
        except asyncio.TimeoutError:
            outcome = "killed"
            reply = protocol.response(
                request_id,
                protocol.STATUS_DEADLINE,
                error="deadline expired mid-execution; query killed",
            )
        except ClusterDegradedError as error:
            # before the ReproError arm: a shard with no live primary
            # shed the write — transient, retryable, never cached
            outcome = "degraded"
            reply = protocol.response(
                request_id,
                protocol.STATUS_DEGRADED,
                error=str(error),
                error_type=type(error).__name__,
            )
        except ReproError as error:
            outcome = "error"
            reply = protocol.response(
                request_id,
                protocol.STATUS_ERROR,
                error=str(error),
                error_type=type(error).__name__,
            )
        except Exception as error:  # pragma: no cover - defensive
            outcome = "error"
            reply = protocol.response(
                request_id,
                protocol.STATUS_ERROR,
                error=f"internal server error: {error}",
                error_type="ServerError",
            )
        self.admission.finish(
            connection.id,
            admitted_at=request.admitted_at,
            executed=True,
            outcome=outcome,
        )
        await self._send(connection, reply)

    async def _perform(self, request: _Request) -> dict:
        message = request.message
        request_id = message.get("id")
        if self.config.debug_ops:
            stall_ms = message.get("stall_ms")
            if stall_ms:
                # simulated I/O: the cancellable await that wait_for
                # kills on deadline, and that lets workers overlap
                await asyncio.sleep(stall_ms / 1e3)
        op = message["op"]
        source = message.get("source", "")
        if op == protocol.OP_QUERY:
            return protocol.response(
                request_id,
                protocol.STATUS_OK,
                result=request.connection.view.query(source),
            )
        if op == protocol.OP_EXECUTE:
            token = message.get("session")
            seq = message.get("seq")
            if token is not None:
                # check again at the last moment: the original may have
                # been queued behind this retransmission.  No await
                # separates this lookup from execute-and-record, so the
                # pair is atomic under the event loop.
                verdict, cached = self.dedup.lookup(
                    token, seq, count_miss=False
                )
                if verdict == "hit":
                    assert cached is not None
                    return dict(cached, id=request_id, replayed=True)
                if verdict == "stale":
                    raise ServerError(
                        f"seq {seq} already executed but its cached "
                        "reply left the dedup window; refusing to "
                        "re-apply"
                    )
            try:
                txn = self.store.execute(source)
            except ClusterDegradedError:
                raise  # transient: retryable, never recorded
            except ReproError as error:
                if token is not None:
                    # the sentence executed and failed deterministically:
                    # that verdict is definitive, so retransmissions
                    # must replay it rather than run the sentence again
                    self.dedup.record(
                        token,
                        seq,
                        protocol.response(
                            request_id,
                            protocol.STATUS_ERROR,
                            error=str(error),
                            error_type=type(error).__name__,
                        ),
                    )
                raise
            reply = protocol.response(
                request_id, protocol.STATUS_OK, txn=txn
            )
            if token is not None:
                self.dedup.record(token, seq, reply)
            return reply
        if op == protocol.OP_EXPLAIN:
            return protocol.response(
                request_id,
                protocol.STATUS_OK,
                result=request.connection.view.explain(source),
            )
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    async def _send(self, connection: _Connection, message: dict) -> None:
        """Write one response; a failing write marks the connection dead
        instead of propagating into the worker."""
        if not connection.alive:
            return
        try:
            data = protocol.encode_message(message, self.config.max_frame)
        except ProtocolError as error:
            # result too large for one frame: degrade to an error reply
            data = protocol.encode_message(
                protocol.response(
                    message.get("id"),
                    protocol.STATUS_ERROR,
                    error=str(error),
                    error_type="ProtocolError",
                ),
                self.config.max_frame,
            )
        async with connection.send_lock:
            try:
                connection.writer.write(data)
                await connection.writer.drain()
            except (ConnectionError, OSError):
                connection.alive = False

    # -- observation -----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """The full ``server.*`` surface (always available, independent
        of the process-wide obsv switch)."""
        snapshot = self.admission.snapshot()
        snapshot["server.connections_open"] = len(self._connections)
        snapshot["server.connections_opened"] = self.connections_opened
        snapshot["server.connections_closed"] = self.connections_closed
        snapshot["server.transaction_number"] = (
            self.store.transaction_number
        )
        snapshot["server.workers"] = self.config.workers
        snapshot["server.isolation"] = self.store.isolation
        snapshot["server.draining"] = int(self._draining)
        snapshot.update(self.dedup.snapshot())
        snapshot["server.degraded_shards"] = len(
            self.store.degraded_shards
        )
        snapshot["server.supervisor_ticks"] = self.supervisor_ticks
        return snapshot


# -- running a server from synchronous code -----------------------------------


class ThreadedServer:
    """A server running its own event loop in a daemon thread — the
    shape tests, benchmarks and the load driver's parent process use."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.server: Optional[ReproServer] = None
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.server is None:
            raise ServerError("server failed to start within 30s")

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            server = ReproServer(self.config)
            self._loop.run_until_complete(server.start())
            self.server = server
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        assert self.server is not None
        return self._on_loop(lambda: self.server.port)

    def metrics(self) -> dict:
        assert self.server is not None
        return self._on_loop(self.server.metrics_snapshot)

    def _on_loop(self, fn):
        """Evaluate ``fn()`` on the server's event loop thread, so the
        caller never races the single-threaded server state."""
        future = asyncio.run_coroutine_threadsafe(_call(fn), self._loop)
        return future.result(timeout=10)

    def stop(self, drain: bool = True) -> None:
        if self.server is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(drain=drain), self._loop
            )
            try:
                future.result(timeout=30)
            finally:
                self._loop.call_soon_threadsafe(self._loop.stop)
                self._thread.join(timeout=30)

    def __enter__(self) -> "ThreadedServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


async def _call(fn):
    return fn()


def serve_in_thread(config: Optional[ServerConfig] = None) -> ThreadedServer:
    """Start a server on a background thread; returns the handle."""
    return ThreadedServer(config if config is not None else ServerConfig())
