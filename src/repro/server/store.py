"""The server's shared backing database and per-connection views.

One process serves one database.  The :class:`ServerStore` owns it, in
any of the five composable backings the in-process :class:`Session`
already supports — plain in-memory, ``durable_dir`` (WAL + checkpoints),
``shards=N`` (coordinator over N durable shard stores), ``replica_of``
(read-only follower), or ``cluster=ClusterConfig(...)`` (sharded
primaries × replica sets with per-shard failover) — so the network
front-end adds a wire, not a sixth storage engine.

**Writes** are serialized.  On the plain backing they run through the
existing :class:`~repro.concurrency.manager.TransactionManager` path
(``run`` stages the sentence's commands and commits atomically, and its
abort-on-raise discipline guarantees a failing sentence never leaks an
ACTIVE transaction — the same fix PR 1 made in-process, now load-bearing
at the network boundary).  Durable, sharded and replica backings write
through the authoritative session, whose execute path is already the
serialized WAL/coordinator commit path.  Either way the asyncio server
executes at most one write at a time, so the two paths agree with the
sequential-sentence semantics the paper mandates.

**Reads** never touch the write path.  Each connection gets its own
:class:`SessionView` — a private plain :class:`Session` re-anchored at
the store's current immutable database value per request — so every
connection carries its *own* plan cache (parse once, optimize once,
compile once per query text) while all views share the process-wide
versioned state cache.  Sharded and replica backings route reads through
the authoritative session instead (scatter-gather and bounded-staleness
logic live there).
"""

from __future__ import annotations

from typing import Optional

from repro.core.database import Database
from repro.errors import ReproError
from repro.lang.parser import parse_sentence
from repro.lang.session import Session, format_state

__all__ = ["ServerStore", "SessionView", "render_state"]


def render_state(state) -> str:
    """The canonical printed form of a query result — shared by the
    server, the REPL and the differential oracle, so "byte-identical to
    the in-process session" is comparing like with like."""
    from repro.core.expressions import is_empty_set

    if is_empty_set(state):
        return "∅ (no recorded state)"
    return format_state(state)


class ServerStore:
    """The one shared backing database behind a server."""

    def __init__(
        self,
        *,
        durable_dir: Optional[str] = None,
        fsync: str = "batch(64, 100)",
        checkpoint_every: int = 256,
        shards: Optional[int] = None,
        replica_of=None,
        cluster=None,
        isolation: str = "serial",
    ) -> None:
        plain = (
            durable_dir is None
            and shards is None
            and replica_of is None
            and cluster is None
        )
        if isolation not in ("serial", "si", "ssi"):
            raise ValueError(
                f"isolation must be 'serial', 'si' or 'ssi', got "
                f"{isolation!r}"
            )
        if isolation != "serial" and not plain:
            raise ValueError(
                "isolation='si'/'ssi' applies to the plain in-memory "
                "backing; durable/sharded/replica/cluster backings "
                "serialize writes through their own commit path"
            )
        self._session = Session(
            durable_dir,
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            shards=shards,
            replica_of=replica_of,
            cluster=cluster,
        )
        self._shared_reads = (
            shards is not None
            or replica_of is not None
            or cluster is not None
        )
        self._replica = replica_of is not None
        self._isolation = isolation
        self._manager = None
        if plain:
            if isolation == "serial":
                from repro.concurrency.manager import TransactionManager

                self._manager = TransactionManager(self._session.database)
            else:
                from repro.concurrency.mvcc import MVCCManager

                self._manager = MVCCManager(
                    self._session.database, isolation
                )

    # -- state ---------------------------------------------------------------

    @property
    def session(self) -> Session:
        """The authoritative session over the backing database."""
        return self._session

    @property
    def manager(self):
        """The plain backing's transaction manager — a serial
        :class:`TransactionManager` or, under ``isolation='si'/'ssi'``,
        an :class:`~repro.concurrency.mvcc.MVCCManager` (None for
        durable/sharded/replica backings, whose own execute path is the
        serialized commit path)."""
        return self._manager

    @property
    def isolation(self) -> str:
        """The write path's isolation level."""
        return self._isolation

    @property
    def transaction_number(self) -> int:
        return self._session.transaction_number

    @property
    def cluster(self):
        """The backing :class:`~repro.cluster.Cluster`, or None."""
        return self._session.cluster

    @property
    def degraded_shards(self) -> "tuple[int, ...]":
        """Shards currently refusing writes (cluster backing only)."""
        cluster = self.cluster
        if cluster is None:
            return ()
        return cluster.degraded_shards

    @property
    def fully_degraded(self) -> bool:
        """True when *every* shard of a cluster backing is degraded —
        the server then sheds writes at admission instead of queueing
        work that is guaranteed to fail."""
        cluster = self.cluster
        if cluster is None:
            return False
        return (
            cluster.shard_count > 0
            and len(cluster.degraded_shards) == cluster.shard_count
        )

    def current_database(self) -> Database:
        """The immutable database value reads anchor to."""
        return self._session.database

    # -- writes --------------------------------------------------------------

    def execute(self, source: str) -> int:
        """Execute one sentence; returns the resulting transaction
        number.  Raises (without partial effect on the plain backing)
        when the sentence is invalid."""
        if self._manager is not None:
            commands = parse_sentence(source)

            def body(txn) -> None:
                for command in commands:
                    txn.stage(command)

            database = self._manager.run(body)
            # keep the authoritative session's trail in step
            self._session._record_history(database)
            return database.transaction_number
        self._session.execute(source)
        return self._session.transaction_number

    # -- reads ---------------------------------------------------------------

    def view(self) -> "SessionView":
        """A fresh per-connection read view."""
        return SessionView(self)

    def catch_up(self) -> int:
        """Replica backing: apply shipped records before a read (the
        serve-fresh policy); other backings: no-op."""
        if self._replica:
            return self._session.catch_up()
        return 0

    def close(self) -> None:
        self._session.close()


class SessionView:
    """One connection's read view: a private plan cache over the shared
    backing.

    Value-backed stores (plain / durable) re-anchor a private plain
    :class:`Session` at the store's current database value per request —
    concurrent reads then share nothing mutable but the (thread-safe by
    event-loop serialization) state cache.  Sharded and replica stores
    delegate to the authoritative session, which owns the scatter-gather
    router / staleness bound.
    """

    __slots__ = ("_store", "_session")

    def __init__(self, store: ServerStore) -> None:
        self._store = store
        self._session = None if store._shared_reads else Session()

    def _reader(self) -> Session:
        if self._session is None:
            self._store.catch_up()
            return self._store.session
        # re-anchor the private session at the current shared value;
        # Session re-plans cached queries when the txn number moves
        self._session._database = self._store.current_database()
        return self._session

    def query(self, source: str) -> str:
        """Evaluate an expression and return its printed relation."""
        return render_state(self._reader().query(source))

    def explain(self, source: str) -> str:
        """The optimizer's story for a query against the current value."""
        return self._reader().explain(source)

    def plan_cache_info(self) -> dict:
        return self._reader().plan_cache_info()


def ensure_no_leaked_transactions(store: ServerStore) -> None:
    """Assert helper used by tests: the plain backing's manager has no
    begun-but-unfinished transaction (the disconnect regression)."""
    manager = store.manager
    if manager is not None and manager.outstanding_count:
        raise ReproError(
            f"{manager.outstanding_count} ACTIVE transaction(s) leaked"
        )
