"""The wire protocol: CRC-framed, length-prefixed JSON messages.

The server and its clients exchange *frames* with exactly the physical
discipline of the durability WAL (:mod:`repro.durability.wal`) — if a
record format survives crashes on disk, it survives TCP segmentation on
the wire::

    ┌──────────────┬──────────────┬─────────────────────┐
    │ length (u32) │ crc32 (u32)  │ payload (length B)  │
    └──────────────┴──────────────┴─────────────────────┘

little-endian, CRC over the payload bytes.  Unlike the WAL there is no
repair-by-truncation: a stream that fails its CRC (or announces a frame
longer than :data:`MAX_FRAME_BYTES`) has lost byte alignment for every
subsequent frame, so framing errors raise :class:`ProtocolError` and the
detecting peer closes the connection.

One frame carries one JSON *message*.  Requests::

    {"id": 7, "op": "query",   "source": "rollback(r, now)"}
    {"id": 8, "op": "execute", "source": "modify_state(r, ...)"}
    {"id": 9, "op": "ping"}          # also: metrics, explain

plus optional ``deadline_ms`` (admission-to-completion budget) and
``stall_ms`` (a debug-only simulated I/O stall, honoured only when the
server runs with ``debug_ops=True``; load tests use it to model slow
queries deterministically).  Responses echo the request ``id`` with a
``status``:

* ``ok`` — ``result`` (printed relation / explain text), ``txn``
  (execute/ping), or ``metrics``;
* ``error`` — the request executed and failed: ``error`` +
  ``error_type`` (the server-side exception class name);
* ``queue_full`` — shed by admission control; retry with backoff;
* ``deadline`` — the deadline expired in queue or mid-execution;
* ``shutting_down`` — the server is draining;
* ``degraded`` — a shard backing the write has no live primary, so the
  write was shed with a typed error instead of hanging; reads keep
  serving and a retry succeeds once the supervisor repairs the shard.

Execute requests may additionally carry a ``session`` token (an opaque
client-chosen string) and a ``seq`` number (monotonically increasing
per session, starting at 1).  Together they make retries *exactly
once*: the server remembers the reply it sent for each ``(session,
seq)`` in a bounded dedup window and replays the cached reply — marked
``"replayed": true`` — for a retransmission instead of applying the
sentence a second time.  A retransmitted seq whose cached reply has
already been evicted from the window is answered with ``error`` and is
**never** re-executed, so the window bound trades retry lifetime for
memory without ever risking a double-apply.

Responses are matched to requests by ``id``; the protocol permits
pipelining, but a worker pool may complete two in-flight requests from
one connection in either order, so clients that need ordered effects
wait for each response before sending the next request (both bundled
clients do).
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Iterator, Optional

from repro.errors import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "HEADER_BYTES",
    "encode_frame",
    "decode_frame",
    "FrameDecoder",
    "encode_message",
    "decode_message",
    "request",
    "response",
    "validate_request",
    "OPS",
    "OP_QUERY",
    "OP_EXECUTE",
    "OP_EXPLAIN",
    "OP_PING",
    "OP_METRICS",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_QUEUE_FULL",
    "STATUS_DEADLINE",
    "STATUS_SHUTDOWN",
    "STATUS_DEGRADED",
]

_HEADER = struct.Struct("<II")

#: Bytes of the frame header (length + crc32).
HEADER_BYTES = _HEADER.size

#: Default ceiling on one frame's payload.  Large enough for any printed
#: relation the test workloads produce, small enough that a corrupted
#: length field cannot make a peer buffer gigabytes.
MAX_FRAME_BYTES = 4 * 1024 * 1024

OP_QUERY = "query"
OP_EXECUTE = "execute"
OP_EXPLAIN = "explain"
OP_PING = "ping"
OP_METRICS = "metrics"

OPS = frozenset({OP_QUERY, OP_EXECUTE, OP_EXPLAIN, OP_PING, OP_METRICS})

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_QUEUE_FULL = "queue_full"
STATUS_DEADLINE = "deadline"
STATUS_SHUTDOWN = "shutting_down"
STATUS_DEGRADED = "degraded"


# -- framing ----------------------------------------------------------------


def encode_frame(
    payload: bytes, max_frame: int = MAX_FRAME_BYTES
) -> bytes:
    """One frame: header + payload."""
    if len(payload) > max_frame:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame limit"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frame(
    data: bytes, max_frame: int = MAX_FRAME_BYTES
) -> bytes:
    """Decode exactly one complete frame (header + full payload)."""
    frames = list(FrameDecoder(max_frame).feed(data))
    if len(frames) != 1:
        raise ProtocolError(
            f"expected exactly one complete frame, got {len(frames)}"
        )
    return frames[0]


class FrameDecoder:
    """Incremental frame decoder: feed arbitrary byte chunks, get back
    complete payloads.  TCP gives no message boundaries, so the decoder
    buffers partial frames across :meth:`feed` calls."""

    __slots__ = ("_buffer", "_max_frame")

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max_frame = max_frame

    def feed(self, data: bytes) -> Iterator[bytes]:
        """Consume ``data``; yield each payload completed by it.

        Raises :class:`ProtocolError` on an oversized announced length
        or a CRC mismatch — the stream is then unusable (alignment is
        lost) and the caller should close the connection.
        """
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return
            length, crc = _HEADER.unpack_from(self._buffer)
            if length > self._max_frame:
                raise ProtocolError(
                    f"announced frame length {length} exceeds the "
                    f"{self._max_frame}-byte frame limit"
                )
            end = HEADER_BYTES + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[HEADER_BYTES:end])
            if zlib.crc32(payload) != crc:
                raise ProtocolError(
                    f"frame CRC mismatch over {length} payload bytes"
                )
            del self._buffer[:end]
            yield payload

    @property
    def pending(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)


# -- messages ---------------------------------------------------------------


def encode_message(
    message: dict, max_frame: int = MAX_FRAME_BYTES
) -> bytes:
    """A message as one frame (compact, key-sorted JSON payload)."""
    payload = json.dumps(
        message, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    return encode_frame(payload, max_frame)


def decode_message(payload: bytes) -> dict:
    """The JSON object carried by one frame payload."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"malformed message payload: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got "
            f"{type(message).__name__}"
        )
    return message


def request(
    request_id: int,
    op: str,
    source: Optional[str] = None,
    *,
    deadline_ms: Optional[float] = None,
    stall_ms: Optional[float] = None,
    session: Optional[str] = None,
    seq: Optional[int] = None,
) -> dict:
    """A well-formed request message."""
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {sorted(OPS)}")
    if (session is None) != (seq is None):
        raise ProtocolError(
            "session and seq travel together: both or neither"
        )
    message: dict[str, Any] = {"id": request_id, "op": op}
    if source is not None:
        message["source"] = source
    if deadline_ms is not None:
        message["deadline_ms"] = deadline_ms
    if stall_ms is not None:
        message["stall_ms"] = stall_ms
    if session is not None:
        message["session"] = session
        message["seq"] = seq
    return message


def response(request_id: Any, status: str, **fields: Any) -> dict:
    """A response message echoing the request id."""
    message: dict[str, Any] = {"id": request_id, "status": status}
    message.update(fields)
    return message


def validate_request(message: dict) -> dict:
    """Check an inbound request's shape; returns it for chaining."""
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {sorted(OPS)}"
        )
    if op in (OP_QUERY, OP_EXECUTE, OP_EXPLAIN):
        if not isinstance(message.get("source"), str):
            raise ProtocolError(f"op {op!r} requires a string 'source'")
    if "id" not in message:
        raise ProtocolError("request is missing its 'id'")
    session = message.get("session")
    seq = message.get("seq")
    if (session is None) != (seq is None):
        raise ProtocolError(
            "session and seq travel together: both or neither"
        )
    if session is not None:
        if not isinstance(session, str) or not session:
            raise ProtocolError("session must be a non-empty string")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
            raise ProtocolError("seq must be an integer >= 1")
    return message
