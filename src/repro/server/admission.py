"""Admission control: the server's bounded front door.

The server must *shed* load it cannot serve rather than queue it without
bound (memory) or serve it arbitrarily late (latency).  The controller
implements the classic watermark discipline:

* a **global queue bound** with high/low watermarks and hysteresis:
  once depth reaches ``queue_high`` the server enters a *shedding*
  state and rejects new requests (``queue_full``) until the workers
  drain the queue below ``queue_low`` — the gap prevents flapping at
  the boundary;
* a **per-connection budget** (``per_connection``): one aggressive
  client cannot occupy the whole queue;
* **deadline accounting**: every admitted request carries an
  admission-time stamp; a request whose deadline expires while queued
  is killed without executing, and the server kills (cancels) requests
  whose deadline expires mid-execution.

The controller is the single bookkeeping point for the ``server.*``
metrics surface.  It keeps its own counters — the ``metrics`` op must
answer even when the process-wide obsv registry is disabled — and
mirrors every event into :mod:`repro.obsv` when that is enabled.  All
methods run on the server's event loop, so plain integers suffice; no
locks.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obsv import registry as _obsv

__all__ = ["AdmissionController", "percentile"]


def percentile(values: "list[float]", q: float) -> float:
    """The ``q``-quantile (0 ≤ q ≤ 1) of ``values`` by the
    nearest-rank method; 0.0 for an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class AdmissionController:
    """Bounded-queue admission with watermark hysteresis.

    ``try_admit`` answers with ``None`` (admitted) or a shed reason
    string; the server turns reasons into ``queue_full`` responses.
    """

    #: How many completed-request latencies the p50/p99 window retains.
    LATENCY_WINDOW = 2048

    def __init__(
        self,
        *,
        queue_high: int,
        queue_low: Optional[int] = None,
        per_connection: int = 16,
    ) -> None:
        from repro.errors import ServerError

        if queue_high < 1:
            raise ServerError(
                f"queue_high must be ≥ 1, got {queue_high}"
            )
        if queue_low is None:
            queue_low = max(1, queue_high // 2)
        if not 0 < queue_low <= queue_high:
            raise ServerError(
                f"need 0 < queue_low ≤ queue_high, got "
                f"queue_low={queue_low}, queue_high={queue_high}"
            )
        if per_connection < 1:
            raise ServerError(
                f"per_connection must be ≥ 1, got {per_connection}"
            )
        self.queue_high = queue_high
        self.queue_low = queue_low
        self.per_connection = per_connection
        #: Requests admitted but not yet finished (queued + executing).
        self.depth = 0
        #: Requests currently executing in a worker.
        self.inflight = 0
        self._per_conn: dict[int, int] = {}
        self._shedding = False
        # counters (the server.* surface)
        self.accepted = 0
        self.shed = 0
        self.killed = 0
        self.expired_in_queue = 0
        self.completed = 0
        self.errors = 0
        self.orphaned = 0
        self.degraded = 0
        self.degraded_shed = 0
        self._latencies: list[float] = []
        self._latency_cursor = 0

    # -- admission ----------------------------------------------------------

    def try_admit(self, connection_id: int) -> Optional[str]:
        """Admit a request from ``connection_id`` or return the shed
        reason (``"saturated"`` / ``"connection budget"``)."""
        if self._shedding:
            if self.depth > self.queue_low:
                self._count_shed()
                return "saturated"
            self._shedding = False  # drained below the low watermark
        elif self.depth >= self.queue_high:
            self._shedding = True
            self._count_shed()
            return "saturated"
        if self._per_conn.get(connection_id, 0) >= self.per_connection:
            self._count_shed()
            return "connection budget"
        self.depth += 1
        self._per_conn[connection_id] = (
            self._per_conn.get(connection_id, 0) + 1
        )
        self.accepted += 1
        if _obsv.enabled():
            registry = _obsv.get()
            registry.counter("server.accepted").inc()
            registry.gauge("server.queue_depth").set(self.depth)
        return None

    def _count_shed(self) -> None:
        self.shed += 1
        if _obsv.enabled():
            _obsv.get().counter("server.shed").inc()

    # -- lifecycle of an admitted request ------------------------------------

    def start(self) -> None:
        """A worker began executing an admitted request."""
        self.inflight += 1
        if _obsv.enabled():
            _obsv.get().gauge("server.inflight").set(self.inflight)

    def finish(
        self,
        connection_id: int,
        *,
        admitted_at: float,
        executed: bool,
        outcome: str,
    ) -> None:
        """An admitted request left the system.

        ``outcome`` is one of ``completed`` / ``error`` / ``killed`` /
        ``expired`` / ``orphaned`` / ``degraded``; ``executed`` says
        whether a worker slot was occupied (and must be released).
        """
        self.depth -= 1
        remaining = self._per_conn.get(connection_id, 0) - 1
        if remaining > 0:
            self._per_conn[connection_id] = remaining
        else:
            self._per_conn.pop(connection_id, None)
        if executed:
            self.inflight -= 1
        if outcome == "completed":
            self.completed += 1
            self._observe_latency(time.perf_counter() - admitted_at)
        elif outcome == "error":
            self.errors += 1
            self._observe_latency(time.perf_counter() - admitted_at)
        elif outcome == "killed":
            self.killed += 1
        elif outcome == "expired":
            self.expired_in_queue += 1
        elif outcome == "orphaned":
            self.orphaned += 1
        elif outcome == "degraded":
            self.degraded += 1
        if self._shedding and self.depth <= self.queue_low:
            self._shedding = False
        if _obsv.enabled():
            registry = _obsv.get()
            registry.counter(f"server.{outcome}").inc()
            registry.gauge("server.queue_depth").set(self.depth)
            registry.gauge("server.inflight").set(self.inflight)

    def _observe_latency(self, seconds: float) -> None:
        if len(self._latencies) < self.LATENCY_WINDOW:
            self._latencies.append(seconds)
        else:
            self._latencies[self._latency_cursor] = seconds
            self._latency_cursor = (
                self._latency_cursor + 1
            ) % self.LATENCY_WINDOW
        if _obsv.enabled():
            _obsv.get().histogram("server.request_seconds").observe(
                seconds
            )

    def shed_degraded(self) -> None:
        """A write was refused at admission because every shard is
        degraded — no queue slot was taken."""
        self.degraded_shed += 1
        if _obsv.enabled():
            _obsv.get().counter("server.degraded_shed").inc()

    # -- inspection -----------------------------------------------------------

    @property
    def shedding(self) -> bool:
        """True while the high watermark has been hit and the queue has
        not yet drained below the low watermark."""
        return self._shedding

    def snapshot(self) -> dict:
        """The ``server.*`` metrics surface as plain data (served by the
        ``metrics`` op regardless of the obsv switch)."""
        return {
            "server.accepted": self.accepted,
            "server.shed": self.shed,
            "server.killed": self.killed,
            "server.expired_in_queue": self.expired_in_queue,
            "server.completed": self.completed,
            "server.errors": self.errors,
            "server.orphaned": self.orphaned,
            "server.degraded": self.degraded,
            "server.degraded_shed": self.degraded_shed,
            "server.queue_depth": self.depth,
            "server.inflight": self.inflight,
            "server.shedding": int(self._shedding),
            "server.latency_p50_ms": percentile(self._latencies, 0.50)
            * 1e3,
            "server.latency_p99_ms": percentile(self._latencies, 0.99)
            * 1e3,
        }
