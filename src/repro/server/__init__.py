"""``repro.server`` — the wire-protocol database server.

The network front-end over everything below it: the same length-
prefixed, CRC-framed codec discipline as the durability WAL
(:mod:`repro.server.protocol`), admission control with watermark
queues, per-connection budgets, deadlines and load-shedding
(:mod:`repro.server.admission`), one shared backing database in any of
the four Session modes with per-connection read views
(:mod:`repro.server.store`), the asyncio server itself
(:mod:`repro.server.server`), blocking and asyncio clients
(:mod:`repro.server.client`), and the multi-process load driver with
its in-process differential oracle (:mod:`repro.server.loadgen`).

Quick start::

    from repro.server import ServerConfig, serve_in_thread, ReproClient

    with serve_in_thread(ServerConfig(port=0)) as handle:
        with ReproClient(handle.host, handle.port) as client:
            client.execute("define_relation(r, rollback)")
            client.execute('modify_state(r, state (k: integer) {(1)})')
            print(client.query("rollback(r, now)"))
"""

from repro.server.admission import AdmissionController, percentile
from repro.server.client import (
    RETRYABLE_ERRORS,
    AsyncReproClient,
    AsyncRetryingClient,
    ReproClient,
    RetryingClient,
    connect,
)
from repro.server.dedup import DedupTable
from repro.server.loadgen import (
    DriverConfig,
    DriverReport,
    drive_clients,
    run_driver,
)
from repro.server.protocol import (
    FrameDecoder,
    decode_message,
    encode_message,
)
from repro.server.server import (
    ReproServer,
    ServerConfig,
    ThreadedServer,
    serve_in_thread,
)
from repro.server.store import ServerStore, SessionView

__all__ = [
    "AdmissionController",
    "AsyncReproClient",
    "AsyncRetryingClient",
    "DedupTable",
    "DriverConfig",
    "DriverReport",
    "FrameDecoder",
    "RETRYABLE_ERRORS",
    "ReproClient",
    "ReproServer",
    "RetryingClient",
    "ServerConfig",
    "ServerStore",
    "SessionView",
    "ThreadedServer",
    "connect",
    "decode_message",
    "drive_clients",
    "encode_message",
    "percentile",
    "run_driver",
    "serve_in_thread",
]
