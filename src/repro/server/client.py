"""Clients for the wire protocol: blocking sockets and asyncio streams.

Both clients speak strict request/response on one connection (send,
await the matching reply) — the protocol permits pipelining, but the
server's worker pool does not promise cross-request ordering, so the
clients keep effects ordered the simple way.  Server-side failure
statuses surface as the typed exceptions from :mod:`repro.errors`:

=================  =========================================
response status    raised
=================  =========================================
``queue_full``     :class:`QueueFullError` (retry with backoff)
``deadline``       :class:`DeadlineExceededError`
``shutting_down``  :class:`ServerShutdownError`
``error``          :class:`RemoteError` (``.remote_type`` holds the
                   server-side exception class name)
=================  =========================================

A connection that closes mid-response raises
:class:`ConnectionClosedError`.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Optional

from repro.errors import (
    ConnectionClosedError,
    DeadlineExceededError,
    ProtocolError,
    QueueFullError,
    RemoteError,
    ServerShutdownError,
)
from repro.server import protocol

__all__ = ["ReproClient", "AsyncReproClient", "raise_for_status"]


def raise_for_status(reply: dict) -> dict:
    """Map a non-``ok`` response onto its typed exception; return the
    reply unchanged when it is ``ok``."""
    status = reply.get("status")
    if status == protocol.STATUS_OK:
        return reply
    error = reply.get("error", "request failed")
    if status == protocol.STATUS_QUEUE_FULL:
        raise QueueFullError(error)
    if status == protocol.STATUS_DEADLINE:
        raise DeadlineExceededError(error)
    if status == protocol.STATUS_SHUTDOWN:
        raise ServerShutdownError(error)
    if status == protocol.STATUS_ERROR:
        raise RemoteError(
            error, remote_type=reply.get("error_type", "ReproError")
        )
    raise ProtocolError(f"unknown response status {status!r}")


class _RequestMixin:
    """The op surface both clients share; subclasses provide
    ``_request(message) -> reply``."""

    _next_id: int

    def _message(
        self,
        op: str,
        source: Optional[str] = None,
        *,
        deadline_ms: Optional[float] = None,
        stall_ms: Optional[float] = None,
    ) -> dict:
        self._next_id += 1
        return protocol.request(
            self._next_id,
            op,
            source,
            deadline_ms=deadline_ms,
            stall_ms=stall_ms,
        )


class ReproClient(_RequestMixin):
    """A blocking, socket-per-instance client."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: Optional[float] = 30.0,
        max_frame: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        self._socket = socket.create_connection((host, port), timeout)
        self._decoder = protocol.FrameDecoder(max_frame)
        self._max_frame = max_frame
        self._pending: list[bytes] = []
        self._next_id = 0

    # -- plumbing -------------------------------------------------------------

    def _request(self, message: dict) -> dict:
        self._socket.sendall(
            protocol.encode_message(message, self._max_frame)
        )
        return raise_for_status(self._read_reply())

    def _read_reply(self) -> dict:
        while not self._pending:
            try:
                chunk = self._socket.recv(65536)
            except OSError as error:
                raise ConnectionClosedError(
                    f"connection lost awaiting a response: {error}"
                ) from error
            if not chunk:
                raise ConnectionClosedError(
                    "server closed the connection before responding"
                )
            self._pending.extend(self._decoder.feed(chunk))
        return protocol.decode_message(self._pending.pop(0))

    # -- ops ------------------------------------------------------------------

    def query(
        self,
        source: str,
        *,
        deadline_ms: Optional[float] = None,
        stall_ms: Optional[float] = None,
    ) -> str:
        """Evaluate an expression; returns the printed relation."""
        reply = self._request(
            self._message(
                protocol.OP_QUERY,
                source,
                deadline_ms=deadline_ms,
                stall_ms=stall_ms,
            )
        )
        return reply["result"]

    def execute(
        self, source: str, *, deadline_ms: Optional[float] = None
    ) -> int:
        """Execute a sentence; returns the new transaction number."""
        reply = self._request(
            self._message(
                protocol.OP_EXECUTE, source, deadline_ms=deadline_ms
            )
        )
        return reply["txn"]

    def explain(self, source: str) -> str:
        reply = self._request(self._message(protocol.OP_EXPLAIN, source))
        return reply["result"]

    def ping(self) -> int:
        """Round-trip; returns the server's transaction number."""
        reply = self._request(self._message(protocol.OP_PING))
        return reply["txn"]

    def metrics(self) -> dict:
        """The server's ``server.*`` metrics snapshot."""
        reply = self._request(self._message(protocol.OP_METRICS))
        return reply["metrics"]

    def close(self) -> None:
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncReproClient(_RequestMixin):
    """The same surface over asyncio streams; hundreds of these share
    one event loop in the load driver."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        self._host = host
        self._port = port
        self._max_frame = max_frame
        self._decoder = protocol.FrameDecoder(max_frame)
        self._pending: list[bytes] = []
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_id = 0

    async def connect(self) -> "AsyncReproClient":
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        return self

    async def _request(self, message: dict) -> dict:
        if self._writer is None:
            raise ConnectionClosedError("client is not connected")
        self._writer.write(
            protocol.encode_message(message, self._max_frame)
        )
        try:
            await self._writer.drain()
        except (ConnectionError, OSError) as error:
            raise ConnectionClosedError(
                f"connection lost sending a request: {error}"
            ) from error
        return raise_for_status(await self._read_reply())

    async def _read_reply(self) -> dict:
        assert self._reader is not None
        while not self._pending:
            try:
                chunk = await self._reader.read(65536)
            except (ConnectionError, OSError) as error:
                raise ConnectionClosedError(
                    f"connection lost awaiting a response: {error}"
                ) from error
            if not chunk:
                raise ConnectionClosedError(
                    "server closed the connection before responding"
                )
            self._pending.extend(self._decoder.feed(chunk))
        return protocol.decode_message(self._pending.pop(0))

    # -- ops ------------------------------------------------------------------

    async def query(
        self,
        source: str,
        *,
        deadline_ms: Optional[float] = None,
        stall_ms: Optional[float] = None,
    ) -> str:
        reply = await self._request(
            self._message(
                protocol.OP_QUERY,
                source,
                deadline_ms=deadline_ms,
                stall_ms=stall_ms,
            )
        )
        return reply["result"]

    async def execute(
        self, source: str, *, deadline_ms: Optional[float] = None
    ) -> int:
        reply = await self._request(
            self._message(
                protocol.OP_EXECUTE, source, deadline_ms=deadline_ms
            )
        )
        return reply["txn"]

    async def explain(self, source: str) -> str:
        reply = await self._request(
            self._message(protocol.OP_EXPLAIN, source)
        )
        return reply["result"]

    async def ping(self) -> int:
        reply = await self._request(self._message(protocol.OP_PING))
        return reply["txn"]

    async def metrics(self) -> dict:
        reply = await self._request(self._message(protocol.OP_METRICS))
        return reply["metrics"]

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncReproClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


def connect(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    timeout: Optional[float] = 30.0,
) -> ReproClient:
    """Convenience: a connected blocking client."""
    return ReproClient(host, port, timeout=timeout)
