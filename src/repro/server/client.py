"""Clients for the wire protocol: blocking sockets and asyncio streams.

Both clients speak strict request/response on one connection (send,
await the matching reply) — the protocol permits pipelining, but the
server's worker pool does not promise cross-request ordering, so the
clients keep effects ordered the simple way.  Server-side failure
statuses surface as the typed exceptions from :mod:`repro.errors`:

=================  =========================================
response status    raised
=================  =========================================
``queue_full``     :class:`QueueFullError` (retry with backoff)
``deadline``       :class:`DeadlineExceededError`
``shutting_down``  :class:`ServerShutdownError`
``degraded``       :class:`ClusterDegradedError` (a shard has no live
                   primary; retry once the supervisor repairs it)
``error``          :class:`RemoteError` (``.remote_type`` holds the
                   server-side exception class name)
=================  =========================================

A connection that closes mid-response (or mid-request — a broken pipe
while sending) raises :class:`ConnectionClosedError`.

:class:`RetryingClient` / :class:`AsyncRetryingClient` wrap the base
clients with reconnect-and-retry under a
:class:`~repro.replication.retry.RetryPolicy`.  Every ``execute``
carries the wrapper's session token and a per-request sequence number,
so a retry after a mid-write connection loss is *exactly once*: if the
original sentence landed, the server's dedup table replays the cached
reply instead of applying it again.
"""

from __future__ import annotations

import asyncio
import os
import socket
from typing import Callable, Optional

from repro.errors import (
    ClusterDegradedError,
    ConnectionClosedError,
    DeadlineExceededError,
    ProtocolError,
    QueueFullError,
    RemoteError,
    RetryExhaustedError,
    ServerShutdownError,
)
from repro.replication.retry import RetryPolicy
from repro.server import protocol

__all__ = [
    "ReproClient",
    "AsyncReproClient",
    "RetryingClient",
    "AsyncRetryingClient",
    "RETRYABLE_ERRORS",
    "raise_for_status",
]

#: What the retrying wrappers retry: saturation, lost connections,
#: draining servers, and shards awaiting repair.  Everything else —
#: deadline expiry (the work may have run), remote evaluation errors —
#: surfaces immediately.
RETRYABLE_ERRORS = (
    QueueFullError,
    ConnectionClosedError,
    ServerShutdownError,
    ClusterDegradedError,
)


def raise_for_status(reply: dict) -> dict:
    """Map a non-``ok`` response onto its typed exception; return the
    reply unchanged when it is ``ok``."""
    status = reply.get("status")
    if status == protocol.STATUS_OK:
        return reply
    error = reply.get("error", "request failed")
    if status == protocol.STATUS_QUEUE_FULL:
        raise QueueFullError(error)
    if status == protocol.STATUS_DEADLINE:
        raise DeadlineExceededError(error)
    if status == protocol.STATUS_SHUTDOWN:
        raise ServerShutdownError(error)
    if status == protocol.STATUS_DEGRADED:
        raise ClusterDegradedError(error)
    if status == protocol.STATUS_ERROR:
        raise RemoteError(
            error, remote_type=reply.get("error_type", "ReproError")
        )
    raise ProtocolError(f"unknown response status {status!r}")


class _RequestMixin:
    """The op surface both clients share; subclasses provide
    ``_request(message) -> reply``."""

    _next_id: int

    def _message(
        self,
        op: str,
        source: Optional[str] = None,
        *,
        deadline_ms: Optional[float] = None,
        stall_ms: Optional[float] = None,
        session: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> dict:
        self._next_id += 1
        return protocol.request(
            self._next_id,
            op,
            source,
            deadline_ms=deadline_ms,
            stall_ms=stall_ms,
            session=session,
            seq=seq,
        )


class ReproClient(_RequestMixin):
    """A blocking, socket-per-instance client."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: Optional[float] = 30.0,
        max_frame: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        self._socket = socket.create_connection((host, port), timeout)
        self._decoder = protocol.FrameDecoder(max_frame)
        self._max_frame = max_frame
        self._pending: list[bytes] = []
        self._next_id = 0

    # -- plumbing -------------------------------------------------------------

    def _request(self, message: dict) -> dict:
        try:
            self._socket.sendall(
                protocol.encode_message(message, self._max_frame)
            )
        except OSError as error:
            raise ConnectionClosedError(
                f"connection lost sending a request: {error}"
            ) from error
        while True:
            reply = self._read_reply()
            if reply.get("id") == message["id"]:
                return raise_for_status(reply)
            # A reply for an earlier id: a duplicated request frame (a
            # retransmission the network relayed twice) produced an
            # extra response.  Discard it and keep reading.

    def _read_reply(self) -> dict:
        while not self._pending:
            try:
                chunk = self._socket.recv(65536)
            except OSError as error:
                raise ConnectionClosedError(
                    f"connection lost awaiting a response: {error}"
                ) from error
            if not chunk:
                raise ConnectionClosedError(
                    "server closed the connection before responding"
                )
            self._pending.extend(self._decoder.feed(chunk))
        return protocol.decode_message(self._pending.pop(0))

    # -- ops ------------------------------------------------------------------

    def query(
        self,
        source: str,
        *,
        deadline_ms: Optional[float] = None,
        stall_ms: Optional[float] = None,
    ) -> str:
        """Evaluate an expression; returns the printed relation."""
        reply = self._request(
            self._message(
                protocol.OP_QUERY,
                source,
                deadline_ms=deadline_ms,
                stall_ms=stall_ms,
            )
        )
        return reply["result"]

    def execute(
        self,
        source: str,
        *,
        deadline_ms: Optional[float] = None,
        session: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> int:
        """Execute a sentence; returns the new transaction number.

        ``session``/``seq`` opt into the server's exactly-once dedup
        window (see :mod:`repro.server.protocol`); the retrying
        wrappers stamp them automatically."""
        reply = self._request(
            self._message(
                protocol.OP_EXECUTE,
                source,
                deadline_ms=deadline_ms,
                session=session,
                seq=seq,
            )
        )
        return reply["txn"]

    def explain(self, source: str) -> str:
        reply = self._request(self._message(protocol.OP_EXPLAIN, source))
        return reply["result"]

    def ping(self) -> int:
        """Round-trip; returns the server's transaction number."""
        reply = self._request(self._message(protocol.OP_PING))
        return reply["txn"]

    def metrics(self) -> dict:
        """The server's ``server.*`` metrics snapshot."""
        reply = self._request(self._message(protocol.OP_METRICS))
        return reply["metrics"]

    def close(self) -> None:
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncReproClient(_RequestMixin):
    """The same surface over asyncio streams; hundreds of these share
    one event loop in the load driver."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        self._host = host
        self._port = port
        self._max_frame = max_frame
        self._decoder = protocol.FrameDecoder(max_frame)
        self._pending: list[bytes] = []
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_id = 0

    async def connect(self) -> "AsyncReproClient":
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        return self

    async def _request(self, message: dict) -> dict:
        if self._writer is None:
            raise ConnectionClosedError("client is not connected")
        try:
            self._writer.write(
                protocol.encode_message(message, self._max_frame)
            )
            await self._writer.drain()
        except (ConnectionError, OSError) as error:
            raise ConnectionClosedError(
                f"connection lost sending a request: {error}"
            ) from error
        while True:
            reply = await self._read_reply()
            if reply.get("id") == message["id"]:
                return raise_for_status(reply)
            # Extra reply from a duplicated request frame — discard.

    async def _read_reply(self) -> dict:
        assert self._reader is not None
        while not self._pending:
            try:
                chunk = await self._reader.read(65536)
            except (ConnectionError, OSError) as error:
                raise ConnectionClosedError(
                    f"connection lost awaiting a response: {error}"
                ) from error
            if not chunk:
                raise ConnectionClosedError(
                    "server closed the connection before responding"
                )
            self._pending.extend(self._decoder.feed(chunk))
        return protocol.decode_message(self._pending.pop(0))

    # -- ops ------------------------------------------------------------------

    async def query(
        self,
        source: str,
        *,
        deadline_ms: Optional[float] = None,
        stall_ms: Optional[float] = None,
    ) -> str:
        reply = await self._request(
            self._message(
                protocol.OP_QUERY,
                source,
                deadline_ms=deadline_ms,
                stall_ms=stall_ms,
            )
        )
        return reply["result"]

    async def execute(
        self,
        source: str,
        *,
        deadline_ms: Optional[float] = None,
        session: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> int:
        reply = await self._request(
            self._message(
                protocol.OP_EXECUTE,
                source,
                deadline_ms=deadline_ms,
                session=session,
                seq=seq,
            )
        )
        return reply["txn"]

    async def explain(self, source: str) -> str:
        reply = await self._request(
            self._message(protocol.OP_EXPLAIN, source)
        )
        return reply["result"]

    async def ping(self) -> int:
        reply = await self._request(self._message(protocol.OP_PING))
        return reply["txn"]

    async def metrics(self) -> dict:
        reply = await self._request(self._message(protocol.OP_METRICS))
        return reply["metrics"]

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncReproClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


class RetryingClient:
    """A blocking client that reconnects and retries under a
    :class:`RetryPolicy`, with exactly-once executes.

    Each instance owns a session token (random by default, injectable
    for tests) and stamps every ``execute`` with the next sequence
    number.  The seq is fixed *before* the first attempt, so every
    retry retransmits the same ``(session, seq)`` and the server's
    dedup table guarantees the sentence applies at most once; the retry
    loop guarantees it applies at least once or raises
    :class:`~repro.errors.RetryExhaustedError`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[float] = 30.0,
        max_frame: int = protocol.MAX_FRAME_BYTES,
        session_token: Optional[str] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._max_frame = max_frame
        self._retry = retry if retry is not None else RetryPolicy()
        self._session = session_token or os.urandom(12).hex()
        self._seq = 0
        self._client: Optional[ReproClient] = None

    @property
    def session_token(self) -> str:
        return self._session

    @property
    def last_seq(self) -> int:
        """The sequence number of the most recent execute."""
        return self._seq

    # -- plumbing -------------------------------------------------------------

    def _connected(self) -> ReproClient:
        if self._client is None:
            try:
                self._client = ReproClient(
                    self._host,
                    self._port,
                    timeout=self._timeout,
                    max_frame=self._max_frame,
                )
            except OSError as error:
                raise ConnectionClosedError(
                    f"cannot reach {self._host}:{self._port}: {error}"
                ) from error
        return self._client

    def _drop(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def _call(self, op: Callable[[ReproClient], object], describe: str):
        def attempt():
            try:
                return op(self._connected())
            except (ConnectionClosedError, ServerShutdownError):
                # Reconnect next attempt; a draining server's successor
                # needs a fresh connection anyway.
                self._drop()
                raise

        return self._retry.run(
            attempt, retry_on=RETRYABLE_ERRORS, describe=describe
        )

    # -- ops ------------------------------------------------------------------

    def query(
        self,
        source: str,
        *,
        deadline_ms: Optional[float] = None,
        stall_ms: Optional[float] = None,
    ) -> str:
        return self._call(
            lambda client: client.query(
                source, deadline_ms=deadline_ms, stall_ms=stall_ms
            ),
            describe=f"query {source!r}",
        )

    def execute(
        self, source: str, *, deadline_ms: Optional[float] = None
    ) -> int:
        self._seq += 1
        seq = self._seq
        return self._call(
            lambda client: client.execute(
                source,
                deadline_ms=deadline_ms,
                session=self._session,
                seq=seq,
            ),
            describe=f"execute seq {seq}",
        )

    def explain(self, source: str) -> str:
        return self._call(
            lambda client: client.explain(source),
            describe=f"explain {source!r}",
        )

    def ping(self) -> int:
        return self._call(lambda client: client.ping(), describe="ping")

    def metrics(self) -> dict:
        return self._call(
            lambda client: client.metrics(), describe="metrics"
        )

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "RetryingClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncRetryingClient:
    """:class:`RetryingClient` semantics over asyncio streams.

    :meth:`RetryPolicy.run` sleeps synchronously, so the retry loop is
    reimplemented here over :meth:`RetryPolicy.delays` with
    ``asyncio.sleep`` — same attempt budget, deadline, and exhaustion
    behaviour."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        retry: Optional[RetryPolicy] = None,
        max_frame: int = protocol.MAX_FRAME_BYTES,
        session_token: Optional[str] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._max_frame = max_frame
        self._retry = retry if retry is not None else RetryPolicy()
        self._session = session_token or os.urandom(12).hex()
        self._seq = 0
        self._client: Optional[AsyncReproClient] = None

    @property
    def session_token(self) -> str:
        return self._session

    @property
    def last_seq(self) -> int:
        return self._seq

    # -- plumbing -------------------------------------------------------------

    async def _connected(self) -> AsyncReproClient:
        if self._client is None:
            client = AsyncReproClient(
                self._host, self._port, max_frame=self._max_frame
            )
            try:
                await client.connect()
            except OSError as error:
                raise ConnectionClosedError(
                    f"cannot reach {self._host}:{self._port}: {error}"
                ) from error
            self._client = client
        return self._client

    async def _drop(self) -> None:
        if self._client is not None:
            client, self._client = self._client, None
            await client.close()

    async def _call(self, op, describe: str):
        policy = self._retry
        start = policy._clock()
        delays = policy.delays()
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                client = await self._connected()
                return await op(client)
            except RETRYABLE_ERRORS as error:
                if isinstance(
                    error, (ConnectionClosedError, ServerShutdownError)
                ):
                    await self._drop()
                last_error = error
                if attempt == policy.max_attempts:
                    break
                delay = next(delays)
                if (
                    policy.deadline is not None
                    and policy._clock() - start + delay > policy.deadline
                ):
                    break
                if delay > 0:
                    await asyncio.sleep(delay)
        elapsed = policy._clock() - start
        raise RetryExhaustedError(
            f"{describe} failed after {attempt} attempt(s) in "
            f"{elapsed:.3f}s: {last_error}",
            attempts=attempt,
            elapsed=elapsed,
        ) from last_error

    # -- ops ------------------------------------------------------------------

    async def query(
        self,
        source: str,
        *,
        deadline_ms: Optional[float] = None,
        stall_ms: Optional[float] = None,
    ) -> str:
        return await self._call(
            lambda client: client.query(
                source, deadline_ms=deadline_ms, stall_ms=stall_ms
            ),
            describe=f"query {source!r}",
        )

    async def execute(
        self, source: str, *, deadline_ms: Optional[float] = None
    ) -> int:
        self._seq += 1
        seq = self._seq
        return await self._call(
            lambda client: client.execute(
                source,
                deadline_ms=deadline_ms,
                session=self._session,
                seq=seq,
            ),
            describe=f"execute seq {seq}",
        )

    async def explain(self, source: str) -> str:
        return await self._call(
            lambda client: client.explain(source),
            describe=f"explain {source!r}",
        )

    async def ping(self) -> int:
        return await self._call(
            lambda client: client.ping(), describe="ping"
        )

    async def metrics(self) -> dict:
        return await self._call(
            lambda client: client.metrics(), describe="metrics"
        )

    async def close(self) -> None:
        await self._drop()

    async def __aenter__(self) -> "AsyncRetryingClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


def connect(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    timeout: Optional[float] = 30.0,
) -> ReproClient:
    """Convenience: a connected blocking client."""
    return ReproClient(host, port, timeout=timeout)
