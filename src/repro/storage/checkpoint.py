"""The checkpointed-delta backend.

Forward deltas with a full state snapshot (*checkpoint*) every
``checkpoint_interval`` versions.  ``state_at`` replays at most
``checkpoint_interval − 1`` deltas from the nearest checkpoint at or before
the target, bounding read latency while keeping space close to the pure
delta design.  The interval is the knob experiment E6 sweeps to show the
space/latency trade-off curve.
"""

from __future__ import annotations

import bisect
from typing import Optional

from repro.errors import StorageError
from repro.core.relation import RelationType
from repro.core.txn import TransactionNumber
from repro.snapshot.schema import Schema
from repro.storage.backend import (
    State,
    StorageBackend,
    atoms_of,
    state_from_atoms,
    state_kind,
)

__all__ = ["CheckpointDeltaBackend"]


class _Version:
    """One physical version record: either a checkpoint (full atom set)
    or a forward delta from the previous version."""

    __slots__ = ("checkpoint", "added", "removed")

    def __init__(
        self,
        checkpoint: Optional[frozenset],
        added: frozenset = frozenset(),
        removed: frozenset = frozenset(),
    ) -> None:
        self.checkpoint = checkpoint
        self.added = added
        self.removed = removed

    @property
    def is_checkpoint(self) -> bool:
        return self.checkpoint is not None

    def atom_count(self) -> int:
        if self.checkpoint is not None:
            return len(self.checkpoint)
        return len(self.added) + len(self.removed)


class _CheckpointRelation:
    __slots__ = (
        "rtype",
        "txns",
        "versions",
        "schema",
        "kind",
        "latest",
        "latest_state",
    )

    def __init__(self, rtype: RelationType) -> None:
        self.rtype = rtype
        self.txns: list[TransactionNumber] = []
        self.versions: list[_Version] = []
        self.schema: Optional[Schema] = None
        self.kind: str = "snapshot"
        self.latest: frozenset = frozenset()
        #: The most recently installed state — the O(1) answer for any
        #: probe at or after the newest transaction.
        self.latest_state: Optional[State] = None


class CheckpointDeltaBackend(StorageBackend):
    """Forward deltas with periodic full checkpoints."""

    name = "checkpoint-delta"

    def __init__(
        self, checkpoint_interval: int = 16, **read_options
    ) -> None:
        super().__init__(**read_options)
        if checkpoint_interval < 1:
            raise StorageError(
                f"checkpoint interval must be ≥ 1, got "
                f"{checkpoint_interval}"
            )
        self.checkpoint_interval = checkpoint_interval
        self._relations: dict[str, _CheckpointRelation] = {}

    # -- write path -----------------------------------------------------------

    def create(self, identifier: str, rtype: RelationType) -> None:
        if identifier in self._relations:
            raise StorageError(f"relation {identifier!r} already exists")
        self._relations[identifier] = _CheckpointRelation(rtype)

    def clear(self) -> None:
        self._relations.clear()
        self._clear_cache()

    def install(
        self, identifier: str, state: State, txn: TransactionNumber
    ) -> None:
        relation = self._require(identifier)
        if relation.txns and txn <= relation.txns[-1]:
            raise StorageError(
                f"non-increasing transaction number {txn} for "
                f"{identifier!r}"
            )
        new_atoms = atoms_of(state)
        if not relation.rtype.keeps_history:
            relation.txns = [txn]
            relation.versions = [_Version(new_atoms)]
        else:
            due_checkpoint = (
                len(relation.versions) % self.checkpoint_interval == 0
            )
            if due_checkpoint:
                relation.versions.append(_Version(new_atoms))
            else:
                relation.versions.append(
                    _Version(
                        None,
                        added=new_atoms - relation.latest,
                        removed=relation.latest - new_atoms,
                    )
                )
            relation.txns.append(txn)
        relation.latest = new_atoms
        relation.latest_state = state
        relation.schema = state.schema
        relation.kind = state_kind(state)
        self._cache_invalidate(identifier)
        self._note_install(len(new_atoms))

    # -- read path ----------------------------------------------------------

    def state_at(
        self, identifier: str, txn: TransactionNumber
    ) -> Optional[State]:
        relation = self._require(identifier)
        index = bisect.bisect_right(relation.txns, txn)
        if index == 0:
            self._note_state_at(replay_length=0)
            return None
        target = index - 1
        if (
            self._hot_reads
            and target == len(relation.txns) - 1
            and relation.latest_state is not None
        ):
            self._note_state_at(hot=True)
            return relation.latest_state
        cached = self._cache_get(identifier, target)
        if cached is not None:
            self._note_state_at()
            return cached
        # Find the nearest checkpoint at or before the target version.
        base_index = target
        while not relation.versions[base_index].is_checkpoint:
            base_index -= 1
        atoms = set(relation.versions[base_index].checkpoint)  # type: ignore[arg-type]
        for version in relation.versions[base_index + 1 : target + 1]:
            atoms -= version.removed
            atoms |= version.added
        self._note_state_at(
            replay_length=target - base_index,
            checkpoint_hit=base_index == target,
        )
        assert relation.schema is not None
        state = state_from_atoms(relation.schema, relation.kind, atoms)
        self._cache_put(identifier, target, state)
        return state

    def type_of(self, identifier: str) -> RelationType:
        return self._require(identifier).rtype

    def identifiers(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def has(self, identifier: str) -> bool:
        return identifier in self._relations

    def transaction_numbers(
        self, identifier: str
    ) -> tuple[TransactionNumber, ...]:
        return tuple(self._require(identifier).txns)

    def latest_txn(
        self, identifier: str
    ) -> Optional[TransactionNumber]:
        txns = self._require(identifier).txns
        return txns[-1] if txns else None

    def version_count(self, identifier: str) -> int:
        return len(self._require(identifier).txns)

    # -- accounting ------------------------------------------------------------

    def stored_atoms(self) -> int:
        return sum(
            version.atom_count()
            for relation in self._relations.values()
            for version in relation.versions
        )

    def stored_versions(self) -> int:
        return sum(
            len(relation.versions)
            for relation in self._relations.values()
        )

    # -- internal -----------------------------------------------------------------

    def _require(self, identifier: str) -> _CheckpointRelation:
        relation = self._relations.get(identifier)
        if relation is None:
            self._check_unknown(identifier, self._relations)
        return relation  # type: ignore[return-value]
