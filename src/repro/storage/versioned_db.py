"""Executing the paper's commands against a physical backend.

:class:`VersionedDatabase` is the bridge between the *logical* language
(commands and expressions from :mod:`repro.core`) and a *physical*
:class:`~repro.storage.backend.StorageBackend`.  It maintains the global
transaction counter and interprets ``define_relation`` / ``modify_state``
exactly as the denotational semantics prescribes, but persists relation
states through the backend instead of the in-memory ``RELATION`` value.

Correctness claim (the paper's Section 5): a physical implementation is
correct iff it is observation-equivalent to the simple semantics.
:func:`backends_agree` operationalizes the check, and the test suite plus
experiment E7 run it for every backend over randomized update streams.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import CommandError, RelationTypeError, StorageError
from repro.core.commands import Command, DefineRelation, ModifyState
from repro.core.commands import Sequence as CommandSequence
from repro.core.expressions import (
    EMPTY_SET,
    Expression,
    evaluate_memoized,
    is_empty_set,
)
from repro.obsv import registry as _obsv
from repro.core.relation import EMPTY_STATE, RelationType
from repro.core.txn import TransactionNumber
from repro.historical.state import HistoricalState
from repro.snapshot.state import SnapshotState
from repro.storage.backend import State, StorageBackend

__all__ = ["VersionedDatabase", "backends_agree"]


class _BackendRelationView:
    """The slice of the ``Relation`` interface expressions need, served
    from a backend."""

    __slots__ = ("_backend", "_identifier")

    def __init__(self, backend: StorageBackend, identifier: str) -> None:
        self._backend = backend
        self._identifier = identifier

    @property
    def rtype(self) -> RelationType:
        return self._backend.type_of(self._identifier)

    def find_state(self, txn: TransactionNumber):
        state = self._backend.state_at(self._identifier, txn)
        return EMPTY_STATE if state is None else state

    @property
    def history_length(self) -> int:
        # ``version_count`` is an O(1) length read; materializing the
        # transaction-number tuple here made every expression-evaluation
        # read pay O(history).
        return self._backend.version_count(self._identifier)

    @property
    def current_state(self):
        txn = self._backend.latest_txn(self._identifier)
        if txn is None:
            return EMPTY_STATE
        return self._backend.state_at(self._identifier, txn)


class _BackendDatabaseView:
    """The slice of the ``Database`` interface expressions need."""

    __slots__ = ("_backend", "_txn")

    def __init__(self, backend: StorageBackend, txn: TransactionNumber) -> None:
        self._backend = backend
        self._txn = txn

    @property
    def transaction_number(self) -> TransactionNumber:
        return self._txn

    def lookup(self, identifier: str) -> Optional[_BackendRelationView]:
        # ``has`` is an O(1) membership probe; ``identifiers()`` would
        # rebuild a sorted tuple on every expression-evaluation lookup.
        if not self._backend.has(identifier):
            return None
        return _BackendRelationView(self._backend, identifier)

    def require(self, identifier: str) -> _BackendRelationView:
        view = self.lookup(identifier)
        if view is None:
            from repro.errors import UnknownRelationError

            raise UnknownRelationError(
                f"identifier {identifier!r} is unbound in this "
                "versioned database"
            )
        return view


class VersionedDatabase:
    """A database whose relation states live in a storage backend.

    >>> vdb = VersionedDatabase(FullCopyBackend())        # doctest: +SKIP
    >>> vdb.execute(DefineRelation('r', 'rollback'))      # doctest: +SKIP
    """

    def __init__(self, backend: StorageBackend) -> None:
        self._backend = backend
        self._txn: TransactionNumber = 0

    @property
    def backend(self) -> StorageBackend:
        """The underlying physical backend."""
        return self._backend

    @property
    def transaction_number(self) -> TransactionNumber:
        """The most recent transaction number."""
        return self._txn

    # -- command execution ------------------------------------------------------

    def execute(self, command: Command) -> None:
        """Execute a command with the paper's semantics, persisting
        through the backend.

        Mirrors :meth:`repro.core.commands.Command.execute` exactly —
        including the ``strict`` escape hatch (raise instead of the
        paper's silent no-op) and ``memoize`` (evaluate the update
        expression with common-subexpression elimination) — so that the
        physical path stays observation-equivalent to the pure
        semantics, flags included.
        """
        if isinstance(command, CommandSequence):
            self.execute(command.first)
            self.execute(command.second)
            return
        if _obsv.enabled():
            _obsv.get().counter("versioned_db.commands_executed").inc()
        if isinstance(command, DefineRelation):
            if self._backend.has(command.identifier):
                if command.strict:
                    raise CommandError(
                        f"define_relation: {command.identifier!r} is "
                        "already defined"
                    )
                return  # paper semantics: no-op on a bound identifier
            self._backend.create(command.identifier, command.rtype)
            self._txn += 1
            return
        if isinstance(command, ModifyState):
            if not self._backend.has(command.identifier):
                if command.strict:
                    raise CommandError(
                        f"modify_state: {command.identifier!r} is not "
                        "defined"
                    )
                return  # paper semantics: no-op on an unbound identifier
            if command.memoize:
                state = self.evaluate_memoized(command.expression)
            else:
                state = self.evaluate(command.expression)
            self.set_state(command.identifier, state)
            return
        raise CommandError(f"cannot execute command {command!r}")

    def execute_all(self, commands: Iterable[Command]) -> None:
        """Execute commands in order."""
        for command in commands:
            self.execute(command)

    # -- direct write path (used by workload streams) ------------------------------

    def define(
        self,
        identifier: str,
        rtype: RelationType | str,
        *,
        strict: bool = False,
    ) -> None:
        """``define_relation`` without going through a Command object.

        Matches the ``DefineRelation`` command path exactly: redefining a
        bound identifier is the paper's silent no-op (no transaction
        number consumed, original type retained) unless ``strict=True``,
        which raises :class:`CommandError` — the same escape hatch the
        command carries.
        """
        if isinstance(rtype, str):
            rtype = RelationType.from_name(rtype)
        if self._backend.has(identifier):
            if strict:
                raise CommandError(
                    f"define: {identifier!r} is already defined"
                )
            return  # paper semantics: no-op on a bound identifier
        self._backend.create(identifier, rtype)
        self._txn += 1

    def set_state(self, identifier: str, state) -> None:
        """Install an explicit new state (the ``modify_state`` write path
        once the expression has been evaluated)."""
        rtype = self._backend.type_of(identifier)
        state = self._resolve_empty(identifier, state)
        self._check_kind(rtype, state)
        self._txn += 1
        self._backend.install(identifier, state, self._txn)

    # -- read path ----------------------------------------------------------------

    def evaluate(self, expression: Expression):
        """Evaluate an algebraic expression against the current contents
        (the semantic function **E** over the backend)."""
        return expression.evaluate(
            _BackendDatabaseView(self._backend, self._txn)  # type: ignore[arg-type]
        )

    def evaluate_memoized(self, expression: Expression):
        """**E** over the backend with common-subexpression elimination
        (the ``ModifyState.memoize`` evaluation mode)."""
        return evaluate_memoized(
            expression,
            _BackendDatabaseView(self._backend, self._txn),  # type: ignore[arg-type]
        )

    def state_at(
        self, identifier: str, txn: TransactionNumber
    ) -> Optional[State]:
        """``FINDSTATE`` directly against the backend."""
        return self._backend.state_at(identifier, txn)

    # -- recovery ---------------------------------------------------------------

    def restore(self, database) -> None:
        """Load a semantic :class:`~repro.core.database.Database` value
        into the backend — the crash-recovery path that rebuilds a
        physical representation from a checkpoint + WAL replay, and the
        replica re-snapshot path that rebuilds one from a shipped
        checkpoint.

        A non-empty backend is wiped first via
        :meth:`~repro.storage.backend.StorageBackend.clear`, which also
        drops its cached ``(identifier, version_index)`` reconstructions
        — without that, a cached pre-restore state could be served at
        coordinates the restored history reuses.  Every relation is then
        created and its full state sequence installed with the original
        transaction numbers, so subsequent ``state_at`` probes answer
        exactly as the restored value prescribes.
        """
        if self._backend.identifiers():
            try:
                self._backend.clear()
            except NotImplementedError:
                raise StorageError(
                    "restore over a non-empty backend needs "
                    f"{type(self._backend).__name__}.clear(); the "
                    "backend predates it — pass an empty backend instead"
                ) from None
        for identifier in database.state:
            relation = database.require(identifier)
            self._backend.create(identifier, relation.rtype)
            for state, txn in relation.rstate:
                self._backend.install(identifier, state, txn)
        self._txn = database.transaction_number

    def current(self, identifier: str) -> Optional[State]:
        """The relation's most recent state."""
        return self._backend.state_at(identifier, self._txn)

    # -- internal -------------------------------------------------------------------

    def _resolve_empty(self, identifier: str, state):
        if not is_empty_set(state) and state is not EMPTY_SET:
            return state
        latest = self._backend.state_at(identifier, self._txn)
        if latest is None:
            raise CommandError(
                f"cannot install the untyped empty set into "
                f"{identifier!r}: the relation has no prior state to "
                "take a schema from"
            )
        if isinstance(latest, HistoricalState):
            return HistoricalState.empty(latest.schema)
        return SnapshotState.empty(latest.schema)

    @staticmethod
    def _check_kind(rtype: RelationType, state) -> None:
        if rtype.stores_valid_time and not isinstance(
            state, HistoricalState
        ):
            raise RelationTypeError(
                f"{rtype.value} relations store historical states, got "
                f"{type(state).__name__}"
            )
        if not rtype.stores_valid_time and not isinstance(
            state, SnapshotState
        ):
            raise RelationTypeError(
                f"{rtype.value} relations store snapshot states, got "
                f"{type(state).__name__}"
            )


def backends_agree(
    backends: Sequence[StorageBackend],
    probes: Iterable[tuple[str, TransactionNumber]],
) -> bool:
    """Observation equivalence: every backend answers every
    ``(identifier, txn)`` probe with the same state (or the same absence).

    Raises :class:`StorageError` naming the first disagreement, so test
    failures are diagnosable.
    """
    backends = list(backends)
    if len(backends) < 2:
        return True
    reference = backends[0]
    for identifier, txn in probes:
        expected = reference.state_at(identifier, txn)
        for other in backends[1:]:
            actual = other.state_at(identifier, txn)
            if actual != expected:
                raise StorageError(
                    f"backends disagree at ({identifier!r}, txn {txn}): "
                    f"{reference.name} says "
                    f"{None if expected is None else len(expected)} "
                    f"tuples, {other.name} says "
                    f"{None if actual is None else len(actual)}"
                )
    return True
