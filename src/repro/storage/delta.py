"""The forward-delta backend.

The first version of a relation is stored in full; every later version is
stored as a *delta* — the atoms added and the atoms removed relative to the
previous version.  Space is proportional to the total amount of *change*
rather than the sum of state sizes, so slowly changing relations are cheap.
The price is read cost: ``state_at`` replays deltas from the base state
forward, O(history depth) — except on the two fast paths every backend
shares: probes at or after the newest transaction return the installed
latest state in O(1), and older probes consult the version-aware LRU
state cache before replaying (see :mod:`repro.storage.cache`).

Benchmarks E5/E6 quantify the raw trade-off against the full-copy
semantics, E13 the fast paths; :mod:`repro.storage.checkpoint` bounds the
replay with periodic checkpoints.
"""

from __future__ import annotations

import bisect
from typing import Optional

from repro.errors import StorageError
from repro.core.relation import RelationType
from repro.core.txn import TransactionNumber
from repro.snapshot.schema import Schema
from repro.storage.backend import (
    State,
    StorageBackend,
    atoms_of,
    state_from_atoms,
    state_kind,
)

__all__ = ["DeltaBackend"]


class _DeltaRelation:
    __slots__ = (
        "rtype",
        "txns",
        "base",
        "deltas",
        "schema",
        "kind",
        "latest_atoms",
        "latest_state",
    )

    def __init__(self, rtype: RelationType) -> None:
        self.rtype = rtype
        self.txns: list[TransactionNumber] = []
        self.base: Optional[frozenset] = None
        #: ``deltas[i]`` transforms version i-1 into version i.
        self.deltas: list[tuple[frozenset, frozenset]] = []
        self.schema: Optional[Schema] = None
        self.kind: str = "snapshot"
        #: Cached atoms of the most recent version (write-path helper;
        #: does not count toward stored_atoms).
        self.latest_atoms: frozenset = frozenset()
        #: The most recently installed state itself — the O(1) answer
        #: for any probe at or after the newest transaction (the
        #: dominant production read, ρ(R, now)).
        self.latest_state: Optional[State] = None


class DeltaBackend(StorageBackend):
    """Base state plus forward (added, removed) deltas."""

    name = "forward-delta"

    def __init__(self, **read_options) -> None:
        super().__init__(**read_options)
        self._relations: dict[str, _DeltaRelation] = {}

    # -- write path -----------------------------------------------------------

    def create(self, identifier: str, rtype: RelationType) -> None:
        if identifier in self._relations:
            raise StorageError(f"relation {identifier!r} already exists")
        self._relations[identifier] = _DeltaRelation(rtype)

    def clear(self) -> None:
        self._relations.clear()
        self._clear_cache()

    def install(
        self, identifier: str, state: State, txn: TransactionNumber
    ) -> None:
        relation = self._require(identifier)
        if relation.txns and txn <= relation.txns[-1]:
            raise StorageError(
                f"non-increasing transaction number {txn} for "
                f"{identifier!r}"
            )
        new_atoms = atoms_of(state)
        if not relation.rtype.keeps_history:
            # Replacement semantics: only the latest version matters.
            relation.txns = [txn]
            relation.base = new_atoms
            relation.deltas = []
        elif relation.base is None:
            relation.txns.append(txn)
            relation.base = new_atoms
        else:
            added = new_atoms - relation.latest_atoms
            removed = relation.latest_atoms - new_atoms
            relation.txns.append(txn)
            relation.deltas.append((added, removed))
        relation.latest_atoms = new_atoms
        relation.latest_state = state
        relation.schema = state.schema
        relation.kind = state_kind(state)
        self._cache_invalidate(identifier)
        self._note_install(len(new_atoms))

    # -- read path ----------------------------------------------------------

    def state_at(
        self, identifier: str, txn: TransactionNumber
    ) -> Optional[State]:
        relation = self._require(identifier)
        index = bisect.bisect_right(relation.txns, txn)
        if index == 0 or relation.base is None:
            self._note_state_at(replay_length=0)
            return None
        version = index - 1
        if (
            self._hot_reads
            and version == len(relation.txns) - 1
            and relation.latest_state is not None
        ):
            self._note_state_at(hot=True)
            return relation.latest_state
        cached = self._cache_get(identifier, version)
        if cached is not None:
            self._note_state_at()
            return cached
        atoms = set(relation.base)
        replay = relation.deltas[:version]
        for added, removed in replay:
            atoms -= removed
            atoms |= added
        self._note_state_at(replay_length=len(replay))
        assert relation.schema is not None
        state = state_from_atoms(relation.schema, relation.kind, atoms)
        self._cache_put(identifier, version, state)
        return state

    def type_of(self, identifier: str) -> RelationType:
        return self._require(identifier).rtype

    def identifiers(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def has(self, identifier: str) -> bool:
        return identifier in self._relations

    def transaction_numbers(
        self, identifier: str
    ) -> tuple[TransactionNumber, ...]:
        return tuple(self._require(identifier).txns)

    def latest_txn(
        self, identifier: str
    ) -> Optional[TransactionNumber]:
        txns = self._require(identifier).txns
        return txns[-1] if txns else None

    def version_count(self, identifier: str) -> int:
        return len(self._require(identifier).txns)

    # -- accounting ------------------------------------------------------------

    def stored_atoms(self) -> int:
        total = 0
        for relation in self._relations.values():
            if relation.base is not None:
                total += len(relation.base)
            for added, removed in relation.deltas:
                total += len(added) + len(removed)
        return total

    def stored_versions(self) -> int:
        return sum(
            (1 if relation.base is not None else 0) + len(relation.deltas)
            for relation in self._relations.values()
        )

    # -- internal -----------------------------------------------------------------

    def _require(self, identifier: str) -> _DeltaRelation:
        relation = self._relations.get(identifier)
        if relation is None:
            self._check_unknown(identifier, self._relations)
        return relation  # type: ignore[return-value]
