"""The version-aware LRU state cache shared by every storage backend.

Reconstructing a past state is the expensive half of ``FINDSTATE``: delta
backends replay change records and the tuple-timestamp backend scans every
episode.  But a relation's version *i* is immutable once installed — the
paper's databases are values, and backends only ever append — so any
reconstruction keyed by ``(identifier, version_index)`` can be memoized
safely.  :class:`StateCache` is that memo: a bounded LRU from version
coordinates to reconstructed states.

Version indexes (positions in the relation's transaction-number sequence)
are the key, *not* probe transaction numbers: every probe between two
installs resolves to the same version, so keying by index collapses the
whole probe range onto one entry.

Invalidation is per-identifier on ``install``.  For history-keeping
relations an install only appends a version, but for replacement-semantics
relations (snapshot, historical) it *rewrites* version 0; dropping the
identifier's entries on every install is the rule that is correct for
both, and the differential suite verifies observation equivalence with the
cache on, off, and eviction-thrashed.

Counters ``storage.cache.{hits,misses,evictions}`` flow through the obsv
registry when metrics are enabled; local counts are always kept so tests
and benchmarks can read hit rates without enabling metrics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import StorageError
from repro.obsv import registry as _obsv

__all__ = ["DEFAULT_CACHE_CAPACITY", "StateCache"]

#: Default per-backend capacity: enough to keep a working set of hot
#: versions across a handful of relations without retaining full-copy
#: levels of memory.
DEFAULT_CACHE_CAPACITY = 64

_Key = tuple[str, int]


class StateCache:
    """A bounded LRU of reconstructed states keyed by
    ``(identifier, version_index)``.  Capacity 0 disables the cache
    entirely (every operation a no-op, no counter traffic)."""

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 0:
            raise StorageError(
                f"state-cache capacity must be ≥ 0, got {capacity}"
            )
        self.capacity = capacity
        self._entries: "OrderedDict[_Key, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- the cache protocol ---------------------------------------------------

    def get(self, key: _Key):
        """The cached state for ``key``, or None (counted as a miss)."""
        if self.capacity == 0:
            return None
        state = self._entries.get(key)
        if state is None:
            self.misses += 1
            if _obsv.enabled():
                _obsv.get().counter("storage.cache.misses").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if _obsv.enabled():
            _obsv.get().counter("storage.cache.hits").inc()
        return state

    def put(self, key: _Key, state) -> None:
        """Remember a reconstructed state, evicting the least recently
        used entry when over capacity."""
        if self.capacity == 0:
            return
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = state
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
            if _obsv.enabled():
                _obsv.get().counter("storage.cache.evictions").inc()

    def invalidate(self, identifier: str) -> None:
        """Drop every entry belonging to ``identifier`` (called on
        ``install``; see the module docstring for why this is the rule
        that is correct for every relation type)."""
        if not self._entries:
            return
        stale = [key for key in self._entries if key[0] == identifier]
        for key in stale:
            del self._entries[key]

    def clear(self) -> None:
        self._entries.clear()

    # -- inspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def info(self) -> dict:
        """Capacity, occupancy and traffic counts as plain data."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
