"""The backward-delta backend.

The *current* state is stored in full; each older version is stored as a
backward delta from its successor.  Reads of the current state are O(1) —
the common case in a production rollback database — while rolling back k
versions costs O(k) replay.  This is the classic "reverse delta" design of
version-control systems (RCS), applied to relation states.
"""

from __future__ import annotations

import bisect
from typing import Optional

from repro.errors import StorageError
from repro.core.relation import RelationType
from repro.core.txn import TransactionNumber
from repro.snapshot.schema import Schema
from repro.storage.backend import (
    State,
    StorageBackend,
    atoms_of,
    state_from_atoms,
    state_kind,
)

__all__ = ["ReverseDeltaBackend"]


class _ReverseDeltaRelation:
    __slots__ = (
        "rtype",
        "txns",
        "current",
        "undo",
        "schema",
        "kind",
        "latest_state",
    )

    def __init__(self, rtype: RelationType) -> None:
        self.rtype = rtype
        self.txns: list[TransactionNumber] = []
        self.current: Optional[frozenset] = None
        #: ``undo[i]`` = (re_added, re_removed) transforming version i+1
        #: back into version i; len(undo) == len(txns) - 1.
        self.undo: list[tuple[frozenset, frozenset]] = []
        self.schema: Optional[Schema] = None
        self.kind: str = "snapshot"
        #: The most recently installed state — returned directly for
        #: probes at or after the newest transaction, so the design's
        #: signature O(1) current read skips even the atom-set copy.
        self.latest_state: Optional[State] = None


class ReverseDeltaBackend(StorageBackend):
    """Current state in full plus backward deltas to older versions."""

    name = "reverse-delta"

    def __init__(self, **read_options) -> None:
        super().__init__(**read_options)
        self._relations: dict[str, _ReverseDeltaRelation] = {}

    # -- write path -----------------------------------------------------------

    def create(self, identifier: str, rtype: RelationType) -> None:
        if identifier in self._relations:
            raise StorageError(f"relation {identifier!r} already exists")
        self._relations[identifier] = _ReverseDeltaRelation(rtype)

    def clear(self) -> None:
        self._relations.clear()
        self._clear_cache()

    def install(
        self, identifier: str, state: State, txn: TransactionNumber
    ) -> None:
        relation = self._require(identifier)
        if relation.txns and txn <= relation.txns[-1]:
            raise StorageError(
                f"non-increasing transaction number {txn} for "
                f"{identifier!r}"
            )
        new_atoms = atoms_of(state)
        if not relation.rtype.keeps_history:
            relation.txns = [txn]
            relation.undo = []
        elif relation.current is None:
            relation.txns.append(txn)
        else:
            # To get the *previous* version back from the new one:
            # re-add what the update removed, re-remove what it added.
            re_added = relation.current - new_atoms
            re_removed = new_atoms - relation.current
            relation.undo.append((re_added, re_removed))
            relation.txns.append(txn)
        relation.current = new_atoms
        relation.latest_state = state
        relation.schema = state.schema
        relation.kind = state_kind(state)
        self._cache_invalidate(identifier)
        self._note_install(len(new_atoms))

    # -- read path ----------------------------------------------------------

    def state_at(
        self, identifier: str, txn: TransactionNumber
    ) -> Optional[State]:
        relation = self._require(identifier)
        index = bisect.bisect_right(relation.txns, txn)
        if index == 0 or relation.current is None:
            self._note_state_at(replay_length=0)
            return None
        version = index - 1
        if (
            self._hot_reads
            and version == len(relation.txns) - 1
            and relation.latest_state is not None
        ):
            self._note_state_at(hot=True)
            return relation.latest_state
        cached = self._cache_get(identifier, version)
        if cached is not None:
            self._note_state_at()
            return cached
        atoms = set(relation.current)
        # Walk backward from the newest version to version index-1.
        replay = relation.undo[version:]
        for re_added, re_removed in reversed(replay):
            atoms -= re_removed
            atoms |= re_added
        self._note_state_at(replay_length=len(replay))
        assert relation.schema is not None
        state = state_from_atoms(relation.schema, relation.kind, atoms)
        self._cache_put(identifier, version, state)
        return state

    def type_of(self, identifier: str) -> RelationType:
        return self._require(identifier).rtype

    def identifiers(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def has(self, identifier: str) -> bool:
        return identifier in self._relations

    def transaction_numbers(
        self, identifier: str
    ) -> tuple[TransactionNumber, ...]:
        return tuple(self._require(identifier).txns)

    def latest_txn(
        self, identifier: str
    ) -> Optional[TransactionNumber]:
        txns = self._require(identifier).txns
        return txns[-1] if txns else None

    def version_count(self, identifier: str) -> int:
        return len(self._require(identifier).txns)

    # -- accounting ------------------------------------------------------------

    def stored_atoms(self) -> int:
        total = 0
        for relation in self._relations.values():
            if relation.current is not None:
                total += len(relation.current)
            for re_added, re_removed in relation.undo:
                total += len(re_added) + len(re_removed)
        return total

    def stored_versions(self) -> int:
        return sum(
            (1 if relation.current is not None else 0)
            + len(relation.undo)
            for relation in self._relations.values()
        )

    # -- internal -----------------------------------------------------------------

    def _require(self, identifier: str) -> _ReverseDeltaRelation:
        relation = self._relations.get(identifier)
        if relation is None:
            self._check_unknown(identifier, self._relations)
        return relation  # type: ignore[return-value]
