"""The tuple-timestamp backend.

Each distinct atom (tuple, or coalesced historical tuple) is stored *once*,
stamped with the transaction-time intervals ``[start_txn, stop_txn)``
during which it belonged to the current state.  This is the physical design
of POSTGRES's "no-overwrite" storage and of Ben-Zvi's Time Relational Model
(both cited by the paper), and it is the representation under which the
Time-View operator is natural: ``state_at`` selects atoms whose stamp
covers the probe transaction.

Space is proportional to the number of distinct (atom, tenure) episodes —
the amount of change — and reads cost a scan of the relation's stored atoms
regardless of rollback depth (O(distinct atoms), not O(history)).
"""

from __future__ import annotations

import bisect
from typing import Optional

from repro.errors import StorageError
from repro.core.relation import RelationType
from repro.core.txn import TransactionNumber
from repro.snapshot.schema import Schema
from repro.storage.backend import (
    Atom,
    State,
    StorageBackend,
    atoms_of,
    state_from_atoms,
    state_kind,
)

__all__ = ["TupleTimestampBackend"]

#: Stop stamp of an atom still in the current state.
_OPEN = None


class _StampedRelation:
    __slots__ = (
        "rtype",
        "txns",
        "episodes",
        "open_index",
        "schema",
        "kind",
        "latest_state",
    )

    def __init__(self, rtype: RelationType) -> None:
        self.rtype = rtype
        self.txns: list[TransactionNumber] = []
        #: (atom, start_txn, stop_txn | None) episodes, append-only.
        self.episodes: list[tuple[Atom, TransactionNumber, Optional[int]]] = []
        #: atom -> index of its currently open episode.
        self.open_index: dict[Atom, int] = {}
        self.schema: Optional[Schema] = None
        self.kind: str = "snapshot"
        #: The most recently installed state — probes at or after the
        #: newest transaction skip the full episode scan.
        self.latest_state: Optional[State] = None


class TupleTimestampBackend(StorageBackend):
    """Distinct atoms stamped with transaction-time tenure intervals."""

    name = "tuple-timestamp"

    def __init__(self, **read_options) -> None:
        super().__init__(**read_options)
        self._relations: dict[str, _StampedRelation] = {}

    # -- write path -----------------------------------------------------------

    def create(self, identifier: str, rtype: RelationType) -> None:
        if identifier in self._relations:
            raise StorageError(f"relation {identifier!r} already exists")
        self._relations[identifier] = _StampedRelation(rtype)

    def clear(self) -> None:
        self._relations.clear()
        self._clear_cache()

    def install(
        self, identifier: str, state: State, txn: TransactionNumber
    ) -> None:
        relation = self._require(identifier)
        if relation.txns and txn <= relation.txns[-1]:
            raise StorageError(
                f"non-increasing transaction number {txn} for "
                f"{identifier!r}"
            )
        new_atoms = atoms_of(state)
        if not relation.rtype.keeps_history:
            relation.episodes = [(atom, txn, _OPEN) for atom in new_atoms]
            relation.open_index = {
                atom: i for i, (atom, _, _) in enumerate(relation.episodes)
            }
            relation.txns = [txn]
        else:
            current = set(relation.open_index)
            # Close episodes of departing atoms at this transaction.
            for atom in current - new_atoms:
                index = relation.open_index.pop(atom)
                stored_atom, start, _ = relation.episodes[index]
                relation.episodes[index] = (stored_atom, start, txn)
            # Open episodes for arriving atoms.
            for atom in new_atoms - current:
                relation.open_index[atom] = len(relation.episodes)
                relation.episodes.append((atom, txn, _OPEN))
            relation.txns.append(txn)
        relation.schema = state.schema
        relation.kind = state_kind(state)
        relation.latest_state = state
        self._cache_invalidate(identifier)
        self._note_install(len(new_atoms))

    # -- read path ----------------------------------------------------------

    def state_at(
        self, identifier: str, txn: TransactionNumber
    ) -> Optional[State]:
        relation = self._require(identifier)
        index = bisect.bisect_right(relation.txns, txn)
        if index == 0:
            self._note_state_at(replay_length=0)
            return None
        version = index - 1
        if (
            self._hot_reads
            and version == len(relation.txns) - 1
            and relation.latest_state is not None
        ):
            self._note_state_at(hot=True)
            return relation.latest_state
        cached = self._cache_get(identifier, version)
        if cached is not None:
            self._note_state_at()
            return cached
        atoms = [
            atom
            for atom, start, stop in relation.episodes
            if start <= txn and (stop is _OPEN or txn < stop)
        ]
        # A timestamp read "replays" nothing but scans every episode.
        self._note_state_at(replay_length=len(relation.episodes))
        assert relation.schema is not None
        state = state_from_atoms(relation.schema, relation.kind, atoms)
        self._cache_put(identifier, version, state)
        return state

    def type_of(self, identifier: str) -> RelationType:
        return self._require(identifier).rtype

    def identifiers(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def has(self, identifier: str) -> bool:
        return identifier in self._relations

    def transaction_numbers(
        self, identifier: str
    ) -> tuple[TransactionNumber, ...]:
        return tuple(self._require(identifier).txns)

    def latest_txn(
        self, identifier: str
    ) -> Optional[TransactionNumber]:
        txns = self._require(identifier).txns
        return txns[-1] if txns else None

    def version_count(self, identifier: str) -> int:
        return len(self._require(identifier).txns)

    # -- accounting ------------------------------------------------------------

    def stored_atoms(self) -> int:
        return sum(
            len(relation.episodes)
            for relation in self._relations.values()
        )

    def stored_versions(self) -> int:
        # Each episode is one physical record.
        return self.stored_atoms()

    # -- internal -----------------------------------------------------------------

    def _require(self, identifier: str) -> _StampedRelation:
        relation = self._relations.get(identifier)
        if relation is None:
            self._check_unknown(identifier, self._relations)
        return relation  # type: ignore[return-value]
