"""The full-copy backend: the paper's simple semantics, literally.

Every ``modify_state`` stores a complete copy of the new state.  Reads are
a binary search plus a pointer dereference — the fastest possible rollback
— but space grows with the *sum of state sizes* over the history, which is
the inefficiency the paper acknowledges ("The language would be quite
inefficient, in terms of storage space ..., if mapped directly into an
implementation").  This backend doubles as the *oracle* against which the
optimized backends are verified.
"""

from __future__ import annotations

import bisect
from typing import Optional

from repro.errors import StorageError
from repro.core.relation import RelationType
from repro.core.txn import TransactionNumber
from repro.storage.backend import State, StorageBackend

__all__ = ["FullCopyBackend"]


class _FullCopyRelation:
    __slots__ = ("rtype", "txns", "states")

    def __init__(self, rtype: RelationType) -> None:
        self.rtype = rtype
        self.txns: list[TransactionNumber] = []
        self.states: list[State] = []


class FullCopyBackend(StorageBackend):
    """Complete state per version — the paper's ``RELATION`` domain."""

    name = "full-copy"

    def __init__(self, **read_options) -> None:
        # Reads are already a binary search + pointer dereference, so the
        # shared cache never sees traffic here; the options are accepted
        # for constructor uniformity across the backend family.
        super().__init__(**read_options)
        self._relations: dict[str, _FullCopyRelation] = {}

    # -- write path -----------------------------------------------------------

    def create(self, identifier: str, rtype: RelationType) -> None:
        if identifier in self._relations:
            raise StorageError(f"relation {identifier!r} already exists")
        self._relations[identifier] = _FullCopyRelation(rtype)

    def clear(self) -> None:
        self._relations.clear()
        self._clear_cache()

    def install(
        self, identifier: str, state: State, txn: TransactionNumber
    ) -> None:
        relation = self._require(identifier)
        if relation.txns and txn <= relation.txns[-1]:
            raise StorageError(
                f"non-increasing transaction number {txn} for "
                f"{identifier!r} (last was {relation.txns[-1]})"
            )
        if relation.rtype.keeps_history:
            relation.txns.append(txn)
            relation.states.append(state)
        else:
            relation.txns = [txn]
            relation.states = [state]
        self._note_install(len(state))

    # -- read path ----------------------------------------------------------

    def state_at(
        self, identifier: str, txn: TransactionNumber
    ) -> Optional[State]:
        relation = self._require(identifier)
        self._note_state_at()
        index = bisect.bisect_right(relation.txns, txn)
        if index == 0:
            return None
        return relation.states[index - 1]

    def type_of(self, identifier: str) -> RelationType:
        return self._require(identifier).rtype

    def identifiers(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def has(self, identifier: str) -> bool:
        return identifier in self._relations

    def transaction_numbers(
        self, identifier: str
    ) -> tuple[TransactionNumber, ...]:
        return tuple(self._require(identifier).txns)

    def latest_txn(
        self, identifier: str
    ) -> Optional[TransactionNumber]:
        txns = self._require(identifier).txns
        return txns[-1] if txns else None

    def version_count(self, identifier: str) -> int:
        return len(self._require(identifier).txns)

    # -- accounting ------------------------------------------------------------

    def stored_atoms(self) -> int:
        return sum(
            len(state)
            for relation in self._relations.values()
            for state in relation.states
        )

    def stored_versions(self) -> int:
        return sum(
            len(relation.states) for relation in self._relations.values()
        )

    # -- internal -----------------------------------------------------------------

    def _require(self, identifier: str) -> _FullCopyRelation:
        relation = self._relations.get(identifier)
        if relation is None:
            self._check_unknown(identifier, self._relations)
        return relation  # type: ignore[return-value]
