"""The abstract storage-backend interface and shared state helpers.

A backend stores, for each relation, the information needed to answer
``state_at(identifier, txn)`` — the paper's ``FINDSTATE`` — for every
transaction number.  The *logical* content is always the relation's state
sequence; backends differ only in physical representation, and correctness
means observation equivalence with :class:`FullCopyBackend` (which encodes
the paper's semantics directly).

States are handled generically through their *atoms*: a snapshot state's
atoms are its tuples; an historical state's atoms are its coalesced
(value, valid-time) tuples.  Because both state kinds are canonical sets of
atoms over a schema, delta and timestamp representations work uniformly.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.errors import StorageError
from repro.core.relation import RelationType
from repro.core.txn import TransactionNumber
from repro.historical.state import HistoricalState
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.snapshot.tuples import SnapshotTuple

__all__ = [
    "State",
    "Atom",
    "StorageBackend",
    "atoms_of",
    "state_from_atoms",
    "state_kind",
]

State = Union[SnapshotState, HistoricalState]
Atom = Union[SnapshotTuple, HistoricalTuple]


def atoms_of(state: State) -> frozenset:
    """The canonical atom set of a state."""
    return state.tuples


def state_kind(state: State) -> str:
    """``'snapshot'`` or ``'historical'``."""
    return (
        "historical" if isinstance(state, HistoricalState) else "snapshot"
    )


def state_from_atoms(
    schema: Schema, kind: str, atoms: Iterable[Atom]
) -> State:
    """Rebuild a state of the given kind from an atom set."""
    if kind == "historical":
        return HistoricalState(schema, atoms)  # re-coalesces (idempotent)
    return SnapshotState.from_tuples(schema, frozenset(atoms))


class StorageBackend:
    """Interface every physical representation implements.

    The write path mirrors ``define_relation`` / ``modify_state``; the read
    path mirrors ``FINDSTATE``.  ``txn`` arguments are the commit
    transaction numbers assigned by the command semantics, so they arrive
    strictly increasing per relation — backends may (and do) rely on that.
    """

    #: Human-readable backend name for benchmark output.
    name = "abstract"

    # -- write path -----------------------------------------------------------

    def create(self, identifier: str, rtype: RelationType) -> None:
        """Record a new, empty relation (``define_relation``)."""
        raise NotImplementedError

    def install(
        self, identifier: str, state: State, txn: TransactionNumber
    ) -> None:
        """Record that ``state`` became current at ``txn``
        (``modify_state``).  For non-history types the previous version is
        discarded, matching replacement semantics."""
        raise NotImplementedError

    # -- read path ----------------------------------------------------------

    def state_at(
        self, identifier: str, txn: TransactionNumber
    ) -> Optional[State]:
        """The state current at ``txn`` (largest recorded transaction
        ≤ ``txn``), or None when no state qualifies — the backend analogue
        of ``FINDSTATE`` returning ∅."""
        raise NotImplementedError

    def type_of(self, identifier: str) -> RelationType:
        """The relation's type."""
        raise NotImplementedError

    def identifiers(self) -> tuple[str, ...]:
        """All relation identifiers, sorted."""
        raise NotImplementedError

    def transaction_numbers(
        self, identifier: str
    ) -> tuple[TransactionNumber, ...]:
        """The strictly increasing transaction numbers at which states
        were installed."""
        raise NotImplementedError

    # -- accounting ------------------------------------------------------------

    def stored_atoms(self) -> int:
        """Total atoms physically stored across all relations — the
        space metric benchmarks E5 compares across backends."""
        raise NotImplementedError

    def stored_versions(self) -> int:
        """Total physical version records (full states, deltas or stamped
        intervals) across all relations."""
        raise NotImplementedError

    # -- shared validation -------------------------------------------------------

    @staticmethod
    def _check_unknown(identifier: str, known: Iterable[str]) -> None:
        raise StorageError(
            f"backend has no relation {identifier!r}; known: "
            f"{sorted(known)}"
        )
