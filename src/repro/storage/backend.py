"""The abstract storage-backend interface and shared state helpers.

A backend stores, for each relation, the information needed to answer
``state_at(identifier, txn)`` — the paper's ``FINDSTATE`` — for every
transaction number.  The *logical* content is always the relation's state
sequence; backends differ only in physical representation, and correctness
means observation equivalence with :class:`FullCopyBackend` (which encodes
the paper's semantics directly).

States are handled generically through their *atoms*: a snapshot state's
atoms are its tuples; an historical state's atoms are its coalesced
(value, valid-time) tuples.  Because both state kinds are canonical sets of
atoms over a schema, delta and timestamp representations work uniformly.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.errors import StorageError
from repro.core.relation import RelationType
from repro.core.txn import TransactionNumber
from repro.obsv import registry as _obsv
from repro.historical.state import HistoricalState
from repro.historical.tuples import HistoricalTuple
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState
from repro.snapshot.tuples import SnapshotTuple
from repro.storage.cache import DEFAULT_CACHE_CAPACITY, StateCache

__all__ = [
    "State",
    "Atom",
    "StorageBackend",
    "atoms_of",
    "state_from_atoms",
    "state_kind",
]

State = Union[SnapshotState, HistoricalState]
Atom = Union[SnapshotTuple, HistoricalTuple]


def atoms_of(state: State) -> frozenset:
    """The canonical atom set of a state."""
    return state.tuples


def state_kind(state: State) -> str:
    """``'snapshot'`` or ``'historical'``."""
    return (
        "historical" if isinstance(state, HistoricalState) else "snapshot"
    )


def state_from_atoms(
    schema: Schema, kind: str, atoms: Iterable[Atom]
) -> State:
    """Rebuild a state of the given kind from an atom set."""
    if kind == "historical":
        return HistoricalState(schema, atoms)  # re-coalesces (idempotent)
    return SnapshotState.from_tuples(schema, frozenset(atoms))


class StorageBackend:
    """Interface every physical representation implements.

    The write path mirrors ``define_relation`` / ``modify_state``; the read
    path mirrors ``FINDSTATE``.  ``txn`` arguments are the commit
    transaction numbers assigned by the command semantics, so they arrive
    strictly increasing per relation — backends may (and do) rely on that.
    """

    #: Human-readable backend name for benchmark output.
    name = "abstract"

    #: Class-level defaults so backends (and third-party subclasses) that
    #: never call ``__init__`` still behave: no cache, hot reads allowed.
    _state_cache: Optional[StateCache] = None
    _hot_reads: bool = True

    def __init__(
        self,
        *,
        cache_capacity: Optional[int] = None,
        hot_reads: bool = True,
    ) -> None:
        """Configure the shared read-path machinery.

        ``cache_capacity`` bounds the version-aware LRU state cache
        (None → :data:`~repro.storage.cache.DEFAULT_CACHE_CAPACITY`,
        0 → disabled); ``hot_reads`` toggles the O(1) latest-version
        fast path (left on in production; benchmarks switch it off to
        measure the raw reconstruction cost).
        """
        capacity = (
            DEFAULT_CACHE_CAPACITY
            if cache_capacity is None
            else cache_capacity
        )
        self._state_cache = StateCache(capacity)
        self._hot_reads = hot_reads

    # -- write path -----------------------------------------------------------

    def create(self, identifier: str, rtype: RelationType) -> None:
        """Record a new, empty relation (``define_relation``)."""
        raise NotImplementedError

    def install(
        self, identifier: str, state: State, txn: TransactionNumber
    ) -> None:
        """Record that ``state`` became current at ``txn``
        (``modify_state``).  For non-history types the previous version is
        discarded, matching replacement semantics."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every relation *and* every cached reconstruction, leaving
        the backend as-new.  Restore paths (checkpoint load, replica
        re-snapshot) call this before reinstalling a full history: any
        cached ``(identifier, version_index)`` entry would otherwise
        describe the pre-restore contents at coordinates the restored
        history reuses."""
        raise NotImplementedError

    def _clear_cache(self) -> None:
        """The shared half of :meth:`clear` (backends add their own
        relation-map wipe)."""
        cache = self._state_cache
        if cache is not None:
            cache.clear()

    # -- read path ----------------------------------------------------------

    def state_at(
        self, identifier: str, txn: TransactionNumber
    ) -> Optional[State]:
        """The state current at ``txn`` (largest recorded transaction
        ≤ ``txn``), or None when no state qualifies — the backend analogue
        of ``FINDSTATE`` returning ∅."""
        raise NotImplementedError

    def type_of(self, identifier: str) -> RelationType:
        """The relation's type."""
        raise NotImplementedError

    def identifiers(self) -> tuple[str, ...]:
        """All relation identifiers, sorted."""
        raise NotImplementedError

    def has(self, identifier: str) -> bool:
        """Membership test for ``identifier``.

        Concrete backends override this with an O(1) dictionary probe;
        the default is provided so third-party backends that predate the
        method keep working (at ``identifiers()`` cost).  The expression
        evaluator's name-resolution path calls this once per ``ρ`` leaf,
        which is why it must not materialize a sorted tuple.
        """
        return identifier in self.identifiers()

    def transaction_numbers(
        self, identifier: str
    ) -> tuple[TransactionNumber, ...]:
        """The strictly increasing transaction numbers at which states
        were installed."""
        raise NotImplementedError

    def latest_txn(
        self, identifier: str
    ) -> Optional[TransactionNumber]:
        """The newest installed transaction number, or None for a
        relation with no state yet.

        The default falls back to ``transaction_numbers()`` (O(n) tuple
        materialization) so third-party backends keep working; concrete
        backends override with an O(1) tail read.  The expression
        evaluator's ``current_state`` path calls this once per
        ``ρ(R, now)``-shaped read, which is why it must be cheap.
        """
        txns = self.transaction_numbers(identifier)
        return txns[-1] if txns else None

    def version_count(self, identifier: str) -> int:
        """How many versions are recorded — ``history_length`` without
        materializing the transaction-number tuple.  Concrete backends
        override with an O(1) length read."""
        return len(self.transaction_numbers(identifier))

    # -- shared state cache -------------------------------------------------------

    @property
    def state_cache(self) -> Optional[StateCache]:
        """The backend's version-aware LRU state cache (None when the
        backend predates the cache and never called ``__init__``)."""
        return self._state_cache

    def cache_info(self) -> dict:
        """Capacity, occupancy and hit/miss/eviction counts."""
        if self._state_cache is None:
            return {
                "capacity": 0,
                "size": 0,
                "hits": 0,
                "misses": 0,
                "evictions": 0,
            }
        return self._state_cache.info()

    def _cache_get(self, identifier: str, version_index: int):
        """The cached state for version ``version_index``, or None."""
        cache = self._state_cache
        if cache is None:
            return None
        return cache.get((identifier, version_index))

    def _cache_put(
        self, identifier: str, version_index: int, state: State
    ) -> None:
        """Memoize a reconstructed state."""
        cache = self._state_cache
        if cache is not None:
            cache.put((identifier, version_index), state)

    def _cache_invalidate(self, identifier: str) -> None:
        """Drop the identifier's cached states (every ``install`` must
        call this before the new version becomes readable)."""
        cache = self._state_cache
        if cache is not None:
            cache.invalidate(identifier)

    # -- accounting ------------------------------------------------------------

    def stored_atoms(self) -> int:
        """Total atoms physically stored across all relations — the
        space metric benchmarks E5 compares across backends."""
        raise NotImplementedError

    def stored_versions(self) -> int:
        """Total physical version records (full states, deltas or stamped
        intervals) across all relations."""
        raise NotImplementedError

    # -- shared observability -----------------------------------------------------

    def _note_install(self, atoms: int) -> None:
        """Record an ``install`` under ``storage.<name>.*`` (no-op while
        metrics are disabled)."""
        if _obsv.enabled():
            registry = _obsv.get()
            prefix = f"storage.{self.name}"
            registry.counter(f"{prefix}.installs").inc()
            registry.counter(f"{prefix}.atoms_installed").inc(atoms)

    def _note_state_at(
        self,
        replay_length: Optional[int] = None,
        checkpoint_hit: Optional[bool] = None,
        hot: bool = False,
    ) -> None:
        """Record a ``state_at`` probe under ``storage.<name>.*``.

        ``replay_length`` is the number of physical version records the
        backend processed to reconstruct the answer (deltas replayed,
        undo records applied, or timestamp episodes scanned);
        ``checkpoint_hit`` reports whether a checkpointed backend landed
        exactly on a checkpoint (no replay needed); ``hot`` marks a probe
        answered from the latest-version fast path without touching
        physical version records at all.
        """
        if _obsv.enabled():
            registry = _obsv.get()
            prefix = f"storage.{self.name}"
            registry.counter(f"{prefix}.state_at_calls").inc()
            if hot:
                registry.counter(f"{prefix}.hot_reads").inc()
            if replay_length is not None:
                registry.histogram(f"{prefix}.replay_length").observe(
                    replay_length
                )
            if checkpoint_hit is not None:
                name = "checkpoint_hits" if checkpoint_hit else "checkpoint_misses"
                registry.counter(f"{prefix}.{name}").inc()

    # -- shared validation -------------------------------------------------------

    @staticmethod
    def _check_unknown(identifier: str, known: Iterable[str]) -> None:
        raise StorageError(
            f"backend has no relation {identifier!r}; known: "
            f"{sorted(known)}"
        )
