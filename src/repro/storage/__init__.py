"""Physical storage backends for rollback and temporal relations.

The paper deliberately gives relations "simple semantics at the expense of
efficient direct implementation": a rollback relation stores a *complete*
state per transaction.  "However, the semantics do not preclude more
efficient implementations ... Verifying the correctness of such
implementations would involve demonstrating the equivalence of their
semantics with the simple semantics presented here" (Sections 2 and 5).

This package provides that family of implementations plus the verification
machinery:

* :class:`FullCopyBackend` — the paper's simple semantics, literally;
* :class:`DeltaBackend` — first state full, then forward deltas;
* :class:`ReverseDeltaBackend` — current state full, backward deltas;
* :class:`CheckpointDeltaBackend` — forward deltas with periodic full
  checkpoints (tunable checkpoint interval);
* :class:`TupleTimestampBackend` — each distinct tuple stored once and
  stamped with the transaction-time intervals during which it was current
  (the POSTGRES / Ben-Zvi physical design).

All five expose the same :class:`StorageBackend` interface, and
:func:`backends_agree` checks observation equivalence: identical
``state_at`` results for every (relation, transaction) probe.  Experiment
E7 runs this check over randomized update streams; E5 and E6 measure the
space/time trade-offs the designs embody.

On top of the physical designs sits a shared read-path engine: every
backend answers probes at or after its newest transaction in O(1) from
the installed latest state, and memoizes older reconstructions in a
version-aware LRU :class:`StateCache` (invalidated per-identifier on
install).  Experiment E13 measures the hot-read speedup and hit rates;
the differential suite proves observation equivalence with the cache on,
off, and eviction-thrashed.
"""

from repro.storage.backend import StorageBackend, atoms_of, state_from_atoms
from repro.storage.cache import DEFAULT_CACHE_CAPACITY, StateCache
from repro.storage.full_copy import FullCopyBackend
from repro.storage.delta import DeltaBackend
from repro.storage.reverse_delta import ReverseDeltaBackend
from repro.storage.checkpoint import CheckpointDeltaBackend
from repro.storage.tuple_timestamp import TupleTimestampBackend
from repro.storage.versioned_db import VersionedDatabase, backends_agree

__all__ = [
    "StorageBackend",
    "StateCache",
    "DEFAULT_CACHE_CAPACITY",
    "atoms_of",
    "state_from_atoms",
    "FullCopyBackend",
    "DeltaBackend",
    "ReverseDeltaBackend",
    "CheckpointDeltaBackend",
    "TupleTimestampBackend",
    "VersionedDatabase",
    "backends_agree",
]
