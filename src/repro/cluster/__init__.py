"""Cluster topology: sharded primaries × WAL-shipped replica sets.

Composes :mod:`repro.sharding` (the global-transaction-number
coordinator) with :mod:`repro.replication` (per-primary streams,
bounded-staleness replicas, promotion) into one servable topology with
per-shard failover, degraded-mode write shedding, whole-cluster
restart recovery (``reopen=True``) and a health supervisor that turns
failover and replica repair automatic.  See
:mod:`repro.cluster.cluster` and :mod:`repro.cluster.supervisor` for
the design notes.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.cluster import Cluster
from repro.cluster.supervisor import (
    ClusterSupervisor,
    ShardHealth,
    TickReport,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterSupervisor",
    "ShardHealth",
    "TickReport",
]
