"""Cluster topology: sharded primaries × WAL-shipped replica sets.

Composes :mod:`repro.sharding` (the global-transaction-number
coordinator) with :mod:`repro.replication` (per-primary streams,
bounded-staleness replicas, promotion) into one servable topology with
per-shard failover.  See :mod:`repro.cluster.cluster` for the design
notes.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.cluster import Cluster

__all__ = ["Cluster", "ClusterConfig"]
