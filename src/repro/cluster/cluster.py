"""`Cluster` — sharded primaries × per-shard replica sets.

The paper's rollback relations are append-only version sequences
addressed by one global transaction number, and that is the whole
correctness contract here: ``ρ(I, N)`` must answer byte-identically
whether ``I`` lives on a single database or on a sharded, replicated
topology mid-failover.  The cluster composes the two existing layers
without duplicating either:

* **writes** go through a :class:`~repro.sharding.sharded.ShardedDatabase`
  of durable primaries — the coordinator keeps the global transaction
  counter, the owner map, and the per-identifier global modification
  times exactly as before;
* **each primary publishes its WAL** as a
  :class:`~repro.replication.stream.PrimaryStream` (or whatever the
  config's ``stream_factory`` wraps it in), and N
  :class:`~repro.replication.replica.Replica` followers per shard
  replay it — the replica's local transaction numbering coincides with
  its primary's by construction, so the coordinator's global→local
  numeral translation is valid on the replica too;
* **fan-out reads** run through a second
  :class:`~repro.sharding.router.ScatterGatherRouter` whose per-shard
  evaluation lands on a replica (round-robin over the live ones) under
  the configured freshness contract, falling back to the primary when a
  shard has no live replicas;
* **failover** promotes a caught-up replica through the replication
  layer's :func:`~repro.replication.promote.promote` and swaps it in as
  the shard's primary via
  :meth:`~repro.sharding.sharded.ShardedDatabase.replace_shard` — the
  coordinator metadata never named the old object, so every other shard
  (and every global answer) is undisturbed.  Sibling replicas re-home
  onto the promoted primary's stream; the LSN space is continuous
  across the seam, so their durable prefixes remain valid.
* **degraded mode** keeps a half-dead cluster honest: when a shard's
  primary store starts failing writes, the shard is *marked* and every
  write routed at it is shed with
  :class:`~repro.errors.ClusterDegradedError` instead of hanging or
  half-applying — while fan-out reads keep serving from the shard's
  replicas.  The health supervisor
  (:class:`~repro.cluster.supervisor.ClusterSupervisor`) clears the
  mark by failing the shard over; retrying clients then simply succeed.
* **restart recovery**: a directory-backed cluster persists its
  topology (which directory is each shard's *current* primary) in the
  coordinator journal's extra payload, so
  ``Cluster(directory=..., reopen=True)`` — after a process kill, even
  one that followed failovers — reopens the primaries via
  :meth:`~repro.sharding.sharded.ShardedDatabase.reopen` and rebuilds
  fresh replica sets from them.
"""

from __future__ import annotations

import os
import shutil
from typing import Optional, Union as TypingUnion

from repro.errors import (
    ClusterDegradedError,
    ClusterError,
    ReplicationError,
    ShardingError,
    StaleReadError,
    StorageError,
)
from repro.core.commands import Command, DefineRelation, ModifyState
from repro.core.database import Database
from repro.core.expressions import Expression
from repro.core.txn import TransactionNumber
from repro.durability.durable import DurableDatabase
from repro.durability.files import DirectoryStore
from repro.obsv import hooks as _hooks
from repro.replication.replica import Replica
from repro.replication.stream import PrimaryStream, ReplicationStream
from repro.sharding.journal import CoordinatorJournal
from repro.sharding.partition import Partitioner
from repro.sharding.sharded import RebalanceReport, ShardedDatabase

from repro.cluster.config import ClusterConfig

__all__ = ["Cluster"]


class Cluster:
    """A servable topology: sharded primaries, each with a replica set.

    ``directory`` puts shard ``i``'s primary under
    ``<directory>/shard-<i>``, replicas under
    ``<directory>/replica-<shard>-<seq>``, and the coordinator journal
    (which also persists the topology's primary→directory map) under
    ``<directory>/coordinator``; with no directory the whole topology
    lives in memory.  ``reopen=True`` restores a directory-backed
    cluster after a process kill instead of demanding empty stores.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        *,
        directory: "TypingUnion[str, os.PathLike[str], None]" = None,
        reopen: bool = False,
    ) -> None:
        self._config = config if config is not None else ClusterConfig()
        if directory is None:
            directory = self._config.directory
        reopen = reopen or self._config.reopen
        self._directory = (
            os.fspath(directory) if directory is not None else None
        )
        self._stream_factory = (
            self._config.stream_factory or PrimaryStream
        )
        self._streams: list[ReplicationStream] = []
        self._replicas: list[list[Replica]] = []
        self._cursors: list[int] = []
        self._closed = False
        #: shards currently shedding writes (no live primary)
        self._degraded: set[int] = set()
        #: directory mode: shard index → the directory name of its
        #: *current* primary (failover retargets an entry onto the
        #: promoted replica's directory); persisted in the journal extra
        self._primary_dirs: list[str] = []
        self._replica_seq = 0
        #: directory mode: live replica → its directory name, consulted
        #: when a failover turns that directory into a primary's
        self._replica_names: dict[Replica, str] = {}
        if reopen:
            self._reopen_sharded()
        else:
            self._sharded = ShardedDatabase(
                self._config.shards,
                directory=self._directory,
                partitioner=self._config.partitioner,
                fsync=self._config.fsync,
                checkpoint_every=self._config.checkpoint_every,
            )
            if self._directory is not None:
                self._primary_dirs = [
                    f"shard-{index}"
                    for index in range(self._config.shards)
                ]
        for index in range(self._sharded.shard_count):
            self._attach_shard(index)
        self._persist_topology()
        # the replica-serving read path reuses the write path's router
        # machinery verbatim: same owner map, same numeral translation —
        # only the per-shard evaluation target differs
        from repro.sharding.router import ScatterGatherRouter

        self._read_router = ScatterGatherRouter(
            owner_of=self._sharded._owner_for_read,
            localize_numeral=self._sharded.localize_numeral,
            evaluate_on_shard=self._read_on_shard,
        )

    def _reopen_sharded(self) -> None:
        """Restore the coordinator + primaries from a killed cluster's
        directory.  Replica directories are rebuildable scrap — any
        that survive the kill (including abandoned pre-failover primary
        directories) are deleted and fresh replica sets re-snapshot
        from the reopened primaries."""
        if self._directory is None:
            raise ClusterError(
                "reopen=True needs a directory-backed cluster; an "
                "in-memory topology has nothing to reopen from"
            )
        meta_store = DirectoryStore(
            os.path.join(self._directory, "coordinator")
        )
        meta = CoordinatorJournal.load(meta_store)
        if meta is None:
            raise ClusterError(
                f"no cluster to reopen under {self._directory!r}: the "
                "coordinator has never checkpointed there"
            )
        extra = meta.get("extra", {})
        primary_dirs = [str(name) for name in extra.get("primary_dirs", [])]
        if not primary_dirs:
            # a pre-topology-journal directory: assume the fresh layout
            primary_dirs = [
                f"shard-{index}" for index in range(int(meta["shards"]))
            ]
        self._replica_seq = int(extra.get("replica_seq", 0))
        self._sharded = ShardedDatabase.reopen(
            meta_store=meta_store,
            stores=[
                os.path.join(self._directory, name)
                for name in primary_dirs
            ],
            partitioner=self._config.partitioner,
            fsync=self._config.fsync,
            checkpoint_every=self._config.checkpoint_every,
        )
        self._primary_dirs = primary_dirs
        keep = set(primary_dirs) | {"coordinator"}
        for name in sorted(os.listdir(self._directory)):
            if name in keep:
                continue
            if name.startswith(("shard-", "replica-")):
                shutil.rmtree(
                    os.path.join(self._directory, name),
                    ignore_errors=True,
                )

    def _attach_shard(self, index: int) -> None:
        """Publish shard ``index``'s primary as a stream and spawn its
        replica set (construction and :meth:`add_shard`)."""
        primary = self._sharded.shards[index]
        stream = self._stream_factory(primary)
        self._streams.append(stream)
        followers = [
            self._new_replica(index, stream)
            for _ in range(self._config.replicas_per_shard)
        ]
        self._replicas.append(followers)
        self._cursors.append(0)

    def _new_replica(
        self, shard: int, stream: ReplicationStream
    ) -> Replica:
        store = None
        if self._directory is not None:
            name = f"replica-{shard}-{self._replica_seq}"
            self._replica_seq += 1
            store = DirectoryStore(
                os.path.join(self._directory, name)
            )
        replica = Replica(
            stream,
            store=store,
            retry=self._config.retry,
            max_lag=self._config.max_lag,
            on_stale=self._config.on_stale,
        )
        if store is not None:
            self._replica_names[replica] = name
        return replica

    def _persist_topology(self) -> None:
        """Record the primary→directory map (and the replica name
        counter) in the coordinator journal's extra payload, then
        checkpoint — called whenever the topology changes, so a reopen
        after any number of failovers finds the *current* primaries."""
        journal = self._sharded.journal
        if journal is None:
            return
        journal.set_extra(
            {
                "primary_dirs": list(self._primary_dirs),
                "replica_seq": self._replica_seq,
            }
        )
        self._sharded.meta_checkpoint()

    # -- introspection -----------------------------------------------------

    @property
    def config(self) -> ClusterConfig:
        return self._config

    @property
    def sharded(self) -> ShardedDatabase:
        """The underlying coordinator (the write path)."""
        return self._sharded

    @property
    def shard_count(self) -> int:
        return self._sharded.shard_count

    @property
    def primaries(self) -> tuple[DurableDatabase, ...]:
        return self._sharded.shards

    @property
    def transaction_number(self) -> TransactionNumber:
        return self._sharded.transaction_number

    @property
    def identifiers(self) -> tuple[str, ...]:
        return self._sharded.identifiers

    def replicas(self, shard: int) -> tuple[Replica, ...]:
        """Shard ``shard``'s current replica set."""
        self._check_shard(shard)
        return tuple(self._replicas[shard])

    def lags(self) -> dict[int, list[int]]:
        """Per-shard replica lags (records behind the primary's tail),
        sampled into the ``cluster.shard_lag_records`` histogram."""
        observer = _hooks.cluster_observer()
        lags: dict[int, list[int]] = {}
        for index, followers in enumerate(self._replicas):
            lags[index] = [replica.lag() for replica in followers]
            if observer is not None:
                for lag in lags[index]:
                    observer.lag(lag)
        return lags

    # -- degraded mode -----------------------------------------------------

    @property
    def degraded_shards(self) -> tuple[int, ...]:
        """Shards currently shedding writes (no live primary), sorted."""
        return tuple(sorted(self._degraded))

    def mark_degraded(self, shard: int) -> None:
        """Start shedding writes aimed at ``shard`` (its primary's
        store is failing).  Reads keep serving from the shard's
        replicas; :meth:`failover` (manual or supervisor-driven) clears
        the mark."""
        self._check_shard(shard)
        if shard in self._degraded:
            return
        self._degraded.add(shard)
        observer = _hooks.cluster_observer()
        if observer is not None:
            observer.degraded(marked=True)

    def clear_degraded(self, shard: int) -> None:
        """Stop shedding writes aimed at ``shard``."""
        if shard not in self._degraded:
            return
        self._degraded.discard(shard)
        observer = _hooks.cluster_observer()
        if observer is not None:
            observer.degraded(marked=False)

    def _write_target(self, command: Command) -> Optional[int]:
        """The shard a (flattened) command's write would land on, or
        None when it cannot be told without executing."""
        if isinstance(command, (DefineRelation, ModifyState)):
            owner = self._sharded._owner.get(command.identifier)
            if owner is not None:
                return owner
            return self._sharded.partitioner.shard_for(
                command.identifier, self._sharded.shard_count
            )
        return None

    # -- write path --------------------------------------------------------

    def execute(self, command: Command) -> TransactionNumber:
        """Apply one command (or sentence) through the coordinator;
        replication is asynchronous — replicas pick the records up on
        their next poll/read.

        Writes aimed at a degraded shard are shed with
        :class:`~repro.errors.ClusterDegradedError` *before* touching
        any shard, so a sentence never half-applies across a dead
        primary.  A primary store failure surfacing mid-write marks the
        shard degraded and is re-raised as the same typed, retryable
        error — the coordinator's metadata never committed the failed
        command, so a retry after recovery applies it exactly once."""
        if self._degraded:
            for flat in self._sharded._flatten(command):
                target = self._write_target(flat)
                if target is not None and target in self._degraded:
                    observer = _hooks.cluster_observer()
                    if observer is not None:
                        observer.write_shed()
                    raise ClusterDegradedError(
                        f"shard {target} has no live primary; write "
                        "shed — retry after failover"
                    )
        try:
            return self._sharded.execute(command)
        except (ShardingError, ClusterError, ReplicationError):
            raise
        except StorageError as error:
            # the owning primary's store is dying under the write: mark
            # the shard so subsequent writes shed fast, and surface the
            # typed, retryable error.  The sharded layer tags the error
            # with the shard it arose on; a coordinator-journal failure
            # carries no tag and is not a shard's fault, so it is
            # re-raised untouched.
            target = getattr(error, "shard_index", None)
            if target is None:
                raise
            self.mark_degraded(target)
            observer = _hooks.cluster_observer()
            if observer is not None:
                observer.write_shed()
            raise ClusterDegradedError(
                f"shard {target}'s primary store failed mid-write "
                f"({error}); the shard is degraded — retry after "
                "failover"
            ) from error

    # -- read path ---------------------------------------------------------

    def evaluate(self, expression: Expression):
        """Scatter-gather evaluation with per-shard reads served from
        replicas (round-robin over the live ones) under the configured
        freshness contract; shards with no live replicas answer from
        their primary."""
        observer = _hooks.shard_observer()
        if observer is not None:
            observer.query(self._read_router.fanout(expression))
        return self._read_router.evaluate(expression)

    def evaluate_primary(self, expression: Expression):
        """Scatter-gather evaluation pinned to the primaries (the
        write-path router) — bypasses replicas entirely."""
        return self._sharded.evaluate(expression)

    def state_at(self, identifier: str, txn: TransactionNumber):
        """``FINDSTATE`` at a global transaction number — answered from
        coordinator metadata plus the owning primary."""
        return self._sharded.state_at(identifier, txn)

    def as_database(self) -> Database:
        """The global database value (the differential oracle's
        strongest check) — see
        :meth:`~repro.sharding.sharded.ShardedDatabase.as_database`."""
        return self._sharded.as_database()

    def _read_on_shard(self, index: int, expression: Expression):
        replica = self._pick_replica(index)
        observer = _hooks.cluster_observer()
        if replica is None:
            if observer is not None:
                observer.read(from_replica=False)
            return self._sharded.shards[index].evaluate(expression)
        if self._config.freshness == "fresh":
            replica.catch_up()
        if observer is not None:
            observer.read(from_replica=True)
        try:
            return replica.evaluate(expression)
        except StaleReadError:
            if observer is not None:
                observer.stale_rejected()
            raise

    def _pick_replica(self, index: int) -> Optional[Replica]:
        """The next live replica of shard ``index`` in round-robin
        order, or None when the set is empty or fully condemned."""
        followers = self._replicas[index]
        if not followers:
            return None
        cursor = self._cursors[index]
        for offset in range(len(followers)):
            candidate = followers[(cursor + offset) % len(followers)]
            if not candidate.diverged and not candidate.promoted:
                self._cursors[index] = (
                    cursor + offset + 1
                ) % len(followers)
                return candidate
        return None

    # -- replication control -----------------------------------------------

    def catch_up(self) -> int:
        """Drive every following replica to its primary's published
        tail; returns the total records applied across the cluster.
        Diverged and promoted replicas are skipped — they no longer
        follow the stream (the supervisor resyncs the former)."""
        total = 0
        for followers in self._replicas:
            for replica in followers:
                if replica.diverged or replica.promoted:
                    continue
                total += replica.catch_up()
        observer = _hooks.cluster_observer()
        if observer is not None and total:
            observer.caught_up(total)
        return total

    def stream(self, shard: int) -> "ReplicationStream":
        """Shard ``shard``'s *current* replication stream — re-bound by
        failover, so condemned replicas repaired after a promotion must
        be re-homed onto this, not whatever they last followed."""
        self._check_shard(shard)
        return self._streams[shard]

    def add_replica(self, shard: int) -> Replica:
        """Attach one more replica to shard ``shard``'s stream.  It
        bootstraps from the stream itself (fetching from the retained
        head, or re-snapshotting when the head was compacted away)."""
        self._check_shard(shard)
        replica = self._new_replica(shard, self._streams[shard])
        self._replicas[shard].append(replica)
        self._persist_topology()
        observer = _hooks.cluster_observer()
        if observer is not None:
            observer.replica_added()
        return replica

    # -- topology changes --------------------------------------------------

    def add_shard(self) -> int:
        """Open one more (empty) primary with its own replica set;
        existing identifiers stay put until :meth:`rebalance`."""
        index = self._sharded.add_shard()
        if self._directory is not None:
            self._primary_dirs.append(f"shard-{index}")
        self._attach_shard(index)
        self._persist_topology()
        observer = _hooks.cluster_observer()
        if observer is not None:
            observer.shard_added()
        return index

    def rebalance(
        self, partitioner: Optional[Partitioner] = None
    ) -> RebalanceReport:
        """Move identifiers per the (new) partitioner.  Moves are
        ordinary commands on the shard primaries, so they replicate to
        each shard's followers through the normal stream."""
        return self._sharded.rebalance(partitioner)

    def failover(
        self, shard: int, replica_index: Optional[int] = None
    ) -> None:
        """Replace shard ``shard``'s primary with one of its replicas.

        The chosen replica is caught up to the primary's published tail
        and validated byte-for-byte against the primary *before* it is
        promoted — any failure on that path raises
        :class:`~repro.errors.ClusterError` (or the underlying
        replication error) and leaves the cluster undisturbed, the
        replica still following.  Only after promotion succeeds is the
        primary swapped (the old one closed), and the surviving
        siblings re-homed onto the promoted primary's stream: the LSN
        space is continuous across the seam, so their durable prefixes
        stay valid and gap/divergence detection guards the handoff.
        """
        self._check_shard(shard)
        followers = self._replicas[shard]
        live = [
            r for r in followers if not r.diverged and not r.promoted
        ]
        if not live:
            raise ClusterError(
                f"cannot fail over shard {shard}: no live replicas "
                "to promote"
            )
        if replica_index is None:
            candidate = max(live, key=lambda r: r.applied_lsn)
        else:
            if not 0 <= replica_index < len(followers):
                raise ClusterError(
                    f"shard {shard} has no replica {replica_index} "
                    f"(have {len(followers)})"
                )
            candidate = followers[replica_index]
            if candidate.promoted:
                raise ClusterError(
                    f"replica {replica_index} of shard {shard} was "
                    "already promoted and no longer follows the "
                    "stream; it cannot be promoted again"
                )
            if candidate.diverged:
                raise ClusterError(
                    f"replica {replica_index} of shard {shard} is "
                    "condemned (diverged) and cannot be promoted"
                )
        candidate.catch_up()
        old = self._sharded.shards[shard]
        if candidate.durable.database != old.database:
            raise ClusterError(
                f"refusing to fail over shard {shard}: the caught-up "
                "candidate's database does not match the primary's"
            )
        # promote() checkpoints *before* detaching: a failing
        # checkpoint leaves the candidate attached and the cluster
        # exactly as it was
        promoted = candidate.promote()
        self._sharded.replace_shard(shard, promoted)
        followers.remove(candidate)
        try:
            old.close()
        except StorageError:
            # a write-dead primary can't flush its tail on close — the
            # exact situation failover exists for; the promoted replica
            # already holds the validated history
            pass
        if self._directory is not None:
            name = self._replica_names.pop(candidate, None)
            if name is not None:
                self._primary_dirs[shard] = name
        stream = self._stream_factory(promoted)
        self._streams[shard] = stream
        for sibling in followers:
            # diverged siblings cannot refollow — they are condemned
            # and keep the dead stream until a resync re-homes them
            if sibling.diverged or sibling.promoted:
                continue
            sibling.refollow(stream)
        self.clear_degraded(shard)
        self._persist_topology()
        observer = _hooks.cluster_observer()
        if observer is not None:
            observer.failed_over()

    # -- durability control ------------------------------------------------

    def sync(self) -> None:
        self._sharded.sync()

    def checkpoint(self) -> None:
        self._sharded.checkpoint()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for followers in self._replicas:
            for replica in followers:
                try:
                    replica.close()
                except StorageError:
                    pass  # a write-dead replica store can't flush
        self._sharded.close()

    def kill(self) -> None:
        """Simulate abrupt process death for crash testing: primaries,
        replicas and the coordinator journal all drop their handles
        with buffers discarded.  Recover with ``Cluster(reopen=True)``
        over the same directory."""
        if self._closed:
            return
        self._closed = True
        for followers in self._replicas:
            for replica in followers:
                replica.kill()
        self._sharded.kill()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- guards ------------------------------------------------------------

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < len(self._replicas):
            raise ClusterError(
                f"no shard {shard} (have {len(self._replicas)})"
            )

    def __repr__(self) -> str:
        sets = "+".join(
            str(len(followers)) for followers in self._replicas
        )
        return (
            f"Cluster(shards={self.shard_count}, replicas=[{sets}], "
            f"txn={self.transaction_number})"
        )
