"""`ClusterSupervisor` — the cluster's health loop.

Failover, replica resync and degraded-mode shedding all exist as
manual seams on :class:`~repro.cluster.cluster.Cluster`; the supervisor
is the small deterministic loop that drives them, turning the cluster
self-healing:

* **probing** — each tick, every shard's primary is probed (default: a
  ``sync()`` plus an atomic probe-file write, which exercises the
  store's write path end to end — a passive check cannot work, because
  an *idle* primary has nothing pending to flush and may own no files
  at all).  ``failure_threshold`` consecutive failures condemn the
  primary; a shard the *write path* already marked degraded is
  condemned immediately, because a shed write is stronger evidence
  than any probe.
* **auto-failover** — a condemned primary is replaced through the same
  :meth:`~repro.cluster.cluster.Cluster.failover` an operator would
  call: the candidate replica is caught up and validated byte-for-byte
  *before* promotion, so a botched auto-failover (no live candidate,
  validation failure) raises inside the supervisor, is counted, and
  leaves the cluster exactly as it was — degraded, shedding writes,
  still serving reads — rather than half-switched.
* **replica tending** — condemned (diverged) replicas are quarantined
  by the read path already; the supervisor repairs them through
  :meth:`~repro.replication.replica.Replica.resync` (a full
  re-snapshot, the only honest rebuild after divergence) and then
  backfills each shard's live replica set to the configured size.

Time is injected (``clock``/``sleep``), mirroring
:class:`~repro.replication.retry.RetryPolicy`: tests drive ``tick()``
directly with a fake clock and the chaos harness gets deterministic,
seed-reproducible schedules.  All activity lands under the
``cluster.health.*`` metrics.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import ReproError
from repro.obsv import hooks as _hooks
from repro.replication.replica import Replica

from repro.cluster.cluster import Cluster

__all__ = ["ClusterSupervisor", "ShardHealth", "TickReport"]

#: The health probe's scratch file — written and deleted atomically by
#: every probe tick; recovery ignores it (it is neither a WAL segment
#: nor a checkpoint), so a crash between the two steps is harmless.
PROBE_FILE = "health-probe"


class ShardHealth:
    """One shard's rolling probe state."""

    __slots__ = ("consecutive_failures", "down_since")

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.down_since: Optional[float] = None

    def __repr__(self) -> str:
        return (
            f"ShardHealth(failures={self.consecutive_failures}, "
            f"down_since={self.down_since})"
        )


class TickReport:
    """What one :meth:`ClusterSupervisor.tick` did."""

    __slots__ = (
        "probes",
        "probe_failures",
        "failovers",
        "failover_failures",
        "resyncs",
        "backfills",
        "degraded_marked",
        "degraded_cleared",
    )

    def __init__(self) -> None:
        self.probes = 0
        self.probe_failures = 0
        self.failovers = 0
        self.failover_failures = 0
        self.resyncs = 0
        self.backfills = 0
        self.degraded_marked = 0
        self.degraded_cleared = 0

    def __repr__(self) -> str:
        return (
            f"TickReport(probes={self.probes}, "
            f"probe_failures={self.probe_failures}, "
            f"failovers={self.failovers}, "
            f"failover_failures={self.failover_failures}, "
            f"resyncs={self.resyncs}, backfills={self.backfills})"
        )


class ClusterSupervisor:
    """The health loop over one :class:`Cluster`.

    ``probe`` overrides how a primary is checked (it receives the
    shard's :class:`~repro.durability.durable.DurableDatabase` and
    raises on failure) — the chaos harness's injection seam.
    ``replicas_per_shard`` is the live-set size backfill restores
    (default: the cluster config's).
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        probe_interval: float = 0.25,
        failure_threshold: int = 3,
        replicas_per_shard: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        probe: Optional[Callable[[object], None]] = None,
    ) -> None:
        if probe_interval <= 0:
            raise ValueError(
                f"probe_interval must be > 0, got {probe_interval}"
            )
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be ≥ 1, got {failure_threshold}"
            )
        self._cluster = cluster
        self._interval = probe_interval
        self._threshold = failure_threshold
        self._replicas_per_shard = (
            replicas_per_shard
            if replicas_per_shard is not None
            else cluster.config.replicas_per_shard
        )
        self._clock = clock
        self._sleep = sleep
        self._probe = probe if probe is not None else self._default_probe
        self._health: dict[int, ShardHealth] = {}
        self._running = False
        self.ticks = 0

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    @property
    def failure_threshold(self) -> int:
        return self._threshold

    def health(self, shard: int) -> ShardHealth:
        return self._health.setdefault(shard, ShardHealth())

    @staticmethod
    def _default_probe(primary) -> None:
        """Prove the primary can still commit: closed is dead, and an
        atomic probe-file write drives the store's write+fsync path end
        to end.  Passive checks are not enough — ``sync()`` no-ops when
        nothing is pending and an idle shard may own no files at all,
        so a write-dead primary that happens to get no client writes
        would pass any read-only probe forever."""
        if primary.closed:
            raise ReproError("primary is closed")
        primary.sync()
        primary.store.replace(PROBE_FILE, b"probe")
        primary.store.delete(PROBE_FILE)

    # -- one tick ----------------------------------------------------------

    def tick(self) -> TickReport:
        """Probe every shard, heal what needs healing, tend replicas.
        One tick is re-entrant-free and deterministic given the injected
        clock and probe outcomes."""
        report = TickReport()
        cluster = self._cluster
        observer = _hooks.cluster_observer()
        for shard in range(cluster.shard_count):
            health = self.health(shard)
            ok = True
            try:
                self._probe(cluster.primaries[shard])
            except (ReproError, OSError):
                ok = False
            report.probes += 1
            if observer is not None:
                observer.probed(ok)
            degraded = shard in cluster.degraded_shards
            if ok and not degraded:
                health.consecutive_failures = 0
                health.down_since = None
                continue
            if not ok:
                report.probe_failures += 1
                health.consecutive_failures += 1
            if health.down_since is None:
                health.down_since = self._clock()
            # the write path's own degraded mark is stronger evidence
            # than any probe count: heal immediately
            if degraded or health.consecutive_failures >= self._threshold:
                if not degraded:
                    cluster.mark_degraded(shard)
                    report.degraded_marked += 1
                self._heal_primary(shard, health, report)
        self._tend_replicas(report)
        self.ticks += 1
        return report

    def _heal_primary(
        self, shard: int, health: ShardHealth, report: TickReport
    ) -> None:
        cluster = self._cluster
        observer = _hooks.cluster_observer()
        live = [
            r
            for r in cluster.replicas(shard)
            if not r.diverged and not r.promoted
        ]
        if not live:
            # nothing to promote: try to grow a candidate off the dead
            # primary's stream (reads still serve, so snapshot/fetch
            # work); promotion happens on a later tick once it exists
            try:
                cluster.add_replica(shard)
            except ReproError:
                if observer is not None:
                    observer.auto_failover_failed()
                report.failover_failures += 1
            return
        try:
            cluster.failover(shard)
        except ReproError:
            # validate-then-promote refused: the cluster is untouched
            # and still degraded; count it and retry next tick
            if observer is not None:
                observer.auto_failover_failed()
            report.failover_failures += 1
            return
        report.failovers += 1
        report.degraded_cleared += 1
        down_since = health.down_since
        health.consecutive_failures = 0
        health.down_since = None
        if observer is not None:
            observer.auto_failed_over(
                self._clock() - down_since
                if down_since is not None
                else 0.0
            )

    def _tend_replicas(self, report: TickReport) -> None:
        cluster = self._cluster
        observer = _hooks.cluster_observer()
        for shard in range(cluster.shard_count):
            live = 0
            for replica in cluster.replicas(shard):
                if replica.promoted:
                    continue
                if replica.diverged:
                    # quarantine-and-repair: a diverged replay can never
                    # rejoin, so rebuild from the primary's checkpoint
                    try:
                        replica.resync(cluster.stream(shard))
                    except ReproError:
                        continue  # retried next tick
                    report.resyncs += 1
                    if observer is not None:
                        observer.resynced()
                    try:
                        replica.catch_up()
                    except ReproError:
                        # the rebuilt replica merely lags (or the
                        # transport hiccuped); later ticks converge it
                        continue
                live += 1
            while live < self._replicas_per_shard:
                try:
                    cluster.add_replica(shard)
                except ReproError:
                    break  # e.g. the primary can't snapshot right now
                live += 1
                report.backfills += 1
                if observer is not None:
                    observer.backfilled()

    # -- the loop ----------------------------------------------------------

    def run(self, max_ticks: Optional[int] = None) -> None:
        """Tick every ``probe_interval`` seconds until :meth:`stop` (or
        ``max_ticks``).  Uses the injected sleep, so tests run it
        full-speed; the server drives :meth:`tick` from its event loop
        instead of calling this."""
        self._running = True
        ticked = 0
        while self._running:
            self.tick()
            ticked += 1
            if max_ticks is not None and ticked >= max_ticks:
                break
            self._sleep(self._interval)

    def stop(self) -> None:
        self._running = False

    def __repr__(self) -> str:
        return (
            f"ClusterSupervisor(ticks={self.ticks}, "
            f"interval={self._interval}, threshold={self._threshold})"
        )
