"""Declarative cluster topology configuration.

A :class:`ClusterConfig` names the *shape* of a cluster — how many
sharded primaries, how many WAL-shipped replicas behind each, and the
read-freshness contract replica reads honor — separately from the
machinery that realizes it (:class:`~repro.cluster.cluster.Cluster`).
The split keeps the user-facing surface (``Session(cluster=...)``, the
server's ``ServerConfig``) declarative: a config is validated eagerly,
carries no live resources, and can be reused to open many clusters.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ClusterError
from repro.durability.durable import DurableDatabase
from repro.replication.retry import RetryPolicy
from repro.replication.stream import ReplicationStream
from repro.sharding.partition import Partitioner

__all__ = ["ClusterConfig"]

#: Read-freshness contracts for replica-served fan-out reads.
#:
#: * ``"fresh"`` — catch the chosen replica up to the primary's
#:   published tail before serving (linearizable-at-the-read; the
#:   differential harness's setting).
#: * ``"bounded"`` — serve from the replica as-is under its
#:   ``max_lag``/``on_stale`` bounded-staleness contract.
FRESHNESS_MODES = ("fresh", "bounded")


class ClusterConfig:
    """The shape of a :class:`~repro.cluster.cluster.Cluster`.

    ``stream_factory`` is the chaos seam: it turns a shard primary into
    the :class:`~repro.replication.stream.ReplicationStream` its
    replicas tail (default
    :class:`~repro.replication.stream.PrimaryStream`), so fault plans
    wrap every stream in the topology uniformly.
    """

    __slots__ = (
        "shards",
        "replicas_per_shard",
        "freshness",
        "max_lag",
        "on_stale",
        "partitioner",
        "retry",
        "stream_factory",
        "fsync",
        "checkpoint_every",
        "directory",
        "reopen",
    )

    def __init__(
        self,
        shards: int = 2,
        replicas_per_shard: int = 1,
        *,
        freshness: str = "fresh",
        max_lag: Optional[int] = None,
        on_stale: str = "reject",
        partitioner: Optional[Partitioner] = None,
        retry: Optional[RetryPolicy] = None,
        stream_factory: Optional[
            Callable[[DurableDatabase], ReplicationStream]
        ] = None,
        fsync: str = "batch(64, 100)",
        checkpoint_every: int = 256,
        directory: Optional[str] = None,
        reopen: bool = False,
    ) -> None:
        if shards < 1:
            raise ClusterError(
                f"cluster needs at least 1 shard, got {shards}"
            )
        if replicas_per_shard < 0:
            raise ClusterError(
                "replicas_per_shard must be ≥ 0, got "
                f"{replicas_per_shard}"
            )
        if freshness not in FRESHNESS_MODES:
            raise ClusterError(
                f"freshness must be one of {FRESHNESS_MODES}, got "
                f"{freshness!r}"
            )
        if on_stale not in ("reject", "serve"):
            raise ClusterError(
                f"on_stale must be 'reject' or 'serve', got {on_stale!r}"
            )
        if max_lag is not None and max_lag < 0:
            raise ClusterError(
                f"max_lag must be ≥ 0 records, got {max_lag}"
            )
        self.shards = shards
        self.replicas_per_shard = replicas_per_shard
        self.freshness = freshness
        self.max_lag = max_lag
        self.on_stale = on_stale
        self.partitioner = partitioner
        self.retry = retry
        self.stream_factory = stream_factory
        if reopen and directory is None:
            raise ClusterError(
                "reopen=True needs a directory to reopen from"
            )
        self.fsync = fsync
        self.checkpoint_every = checkpoint_every
        self.directory = directory
        self.reopen = reopen

    def __repr__(self) -> str:
        return (
            f"ClusterConfig(shards={self.shards}, "
            f"replicas_per_shard={self.replicas_per_shard}, "
            f"freshness={self.freshness!r})"
        )
