"""A Quel-style update calculus translated to the algebra.

One of the paper's motivating benefits (Section 1): "The action of update
is available in the algebra, allowing the algebra to be the executable form
to which update operations in a calculus-based language (e.g., append,
delete, replace in Quel) can be mapped."  This package realizes that
mapping for a small Quel-flavored sub-language:

* ``append to R (a = v, ...)``
* ``delete from R [where F]``
* ``replace R (a = v, ...) [where F]``
* ``retrieve (a, ...) from R [where F] [as of N]``

Each update statement translates to a single ``modify_state(R, E)``
command, with ``E`` built exactly as Section 3.5 prescribes:

* *append* — ``ρ(R, now) ∪ constant``
* *delete* — ``ρ(R, now) − σ_F(ρ(R, now))``
* *replace* — ``(ρ(R, now) − σ_F(ρ(R, now))) ∪ π_order(ρ_rename(π_keep(
  σ_F(ρ(R, now))) × constant))`` — the changed tuples rebuilt with the new
  constant values via product + rename + projection, all within the algebra.

``retrieve`` translates to a side-effect-free expression (with ``as of``
mapping to the rollback operator ``ρ``).
"""

from repro.quel.statements import (
    Append,
    Delete,
    Replace,
    Retrieve,
    Statement,
)
from repro.quel.translate import QuelTranslator
from repro.quel.parser import parse_statement
from repro.quel.temporal import (
    TemporalAppend,
    TemporalDelete,
    TemporalQuelTranslator,
    Terminate,
    parse_temporal_statement,
)

__all__ = [
    "Statement",
    "Append",
    "Delete",
    "Replace",
    "Retrieve",
    "QuelTranslator",
    "parse_statement",
    "TemporalAppend",
    "TemporalDelete",
    "Terminate",
    "TemporalQuelTranslator",
    "parse_temporal_statement",
]
