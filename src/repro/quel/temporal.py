"""Temporal update statements — the calculus over historical/temporal
relations.

The paper's Section 4 shows ``modify_state`` working unchanged over
historical states; this module supplies the TQuel-flavored update
statements that map onto it:

* ``append to R (a = v, ...) valid [b, e)`` — start believing a fact
  holds during the given valid-time periods;
* ``delete from R [where F]`` — stop believing the matching facts
  entirely (their whole valid time is retracted from the current state;
  past states keep it, of course);
* ``terminate R [where F] at c`` — the classic temporal operation
  (Ben-Zvi had a ``terminate`` command too): clip the matching facts'
  valid time to end at chronon ``c``.

Each translates to one ``modify_state`` whose expression uses only
algebraic operators over ``ρ̂(R, now)``:

* append:    ``ρ̂ ∪̂ constant``
* delete:    ``ρ̂ −̂ σ̂_F(ρ̂)``
* terminate: ``(ρ̂ −̂ σ̂_F(ρ̂)) ∪̂ δ_{; valid ∩ [0, c)}(σ̂_F(ρ̂))``

Concrete syntax is provided by :func:`parse_temporal_statement`.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.errors import ParseError, TranslationError
from repro.core.commands import ModifyState
from repro.core.expressions import (
    Const,
    Derive,
    Difference,
    Expression,
    Rollback,
    Select,
    Union,
)
from repro.core.txn import NOW
from repro.historical.periods import PeriodSet
from repro.historical.state import HistoricalState
from repro.historical.temporal_exprs import (
    Intersect,
    TemporalConstant,
    ValidTime,
)
from repro.historical.tuples import HistoricalTuple
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType
from repro.quel.parser import _QuelParser
from repro.quel.statements import Statement
from repro.snapshot.predicates import Predicate
from repro.snapshot.schema import Schema

__all__ = [
    "TemporalAppend",
    "TemporalDelete",
    "Terminate",
    "TemporalQuelTranslator",
    "parse_temporal_statement",
]


class TemporalAppend(Statement):
    """``append to R (a = v, ...) valid <periods>``."""

    __slots__ = ("relation", "values", "valid")

    def __init__(
        self, relation: str, values: Mapping[str, Any], valid: PeriodSet
    ) -> None:
        if not values:
            raise TranslationError("append requires at least one value")
        if valid.is_empty():
            raise TranslationError(
                "a temporal append requires a non-empty valid time"
            )
        self.relation = relation
        self.values = dict(values)
        self.valid = valid

    def __repr__(self) -> str:
        inner = ", ".join(f"{k} = {v!r}" for k, v in self.values.items())
        return f"append to {self.relation} ({inner}) valid {self.valid!r}"


class TemporalDelete(Statement):
    """``delete from R [where F]`` over a temporal relation — retract the
    matching facts entirely."""

    __slots__ = ("relation", "where")

    def __init__(
        self, relation: str, where: Optional[Predicate] = None
    ) -> None:
        self.relation = relation
        self.where = where

    def __repr__(self) -> str:
        suffix = f" where {self.where!r}" if self.where is not None else ""
        return f"delete from {self.relation}{suffix}"


class Terminate(Statement):
    """``terminate R [where F] at c`` — clip the matching facts' valid
    time to end (exclusively) at chronon ``c``."""

    __slots__ = ("relation", "where", "chronon")

    def __init__(
        self,
        relation: str,
        chronon: int,
        where: Optional[Predicate] = None,
    ) -> None:
        if chronon < 0:
            raise TranslationError(
                f"terminate chronon must be ≥ 0, got {chronon}"
            )
        self.relation = relation
        self.chronon = chronon
        self.where = where

    def __repr__(self) -> str:
        suffix = f" where {self.where!r}" if self.where is not None else ""
        return f"terminate {self.relation}{suffix} at {self.chronon}"


class TemporalQuelTranslator:
    """Translate temporal statements into the algebra.

    Like :class:`~repro.quel.translate.QuelTranslator`, needs a catalog
    mapping relation identifiers to schemas.
    """

    def __init__(self, catalog: Mapping[str, Schema]) -> None:
        self._catalog = dict(catalog)

    def schema_of(self, relation: str) -> Schema:
        try:
            return self._catalog[relation]
        except KeyError:
            raise TranslationError(
                f"relation {relation!r} is not in the catalog; known "
                f"relations: {sorted(self._catalog)}"
            ) from None

    def translate(self, statement: Statement) -> ModifyState:
        """Translate a temporal update statement to ``modify_state``."""
        if isinstance(statement, TemporalAppend):
            return self._translate_append(statement)
        if isinstance(statement, TemporalDelete):
            return self._translate_delete(statement)
        if isinstance(statement, Terminate):
            return self._translate_terminate(statement)
        raise TranslationError(
            f"unknown temporal statement {statement!r}"
        )

    # -- translations ---------------------------------------------------------

    def _translate_append(self, statement: TemporalAppend) -> ModifyState:
        schema = self.schema_of(statement.relation)
        missing = set(schema.names) - set(statement.values)
        extra = set(statement.values) - set(schema.names)
        if missing or extra:
            raise TranslationError(
                f"append to {statement.relation!r}: missing "
                f"{sorted(missing)}, unknown {sorted(extra)}"
            )
        constant = Const(
            HistoricalState(
                schema,
                [
                    HistoricalTuple(
                        statement.values, statement.valid, schema=schema
                    )
                ],
            )
        )
        current = Rollback(statement.relation, NOW)
        return ModifyState(statement.relation, Union(current, constant))

    def _translate_delete(self, statement: TemporalDelete) -> ModifyState:
        schema = self.schema_of(statement.relation)
        current = Rollback(statement.relation, NOW)
        if statement.where is None:
            empty = Const(HistoricalState.empty(schema))
            return ModifyState(statement.relation, empty)
        doomed = Select(current, statement.where)
        return ModifyState(
            statement.relation, Difference(current, doomed)
        )

    def _translate_terminate(self, statement: Terminate) -> ModifyState:
        current = Rollback(statement.relation, NOW)
        matched: Expression = (
            Select(current, statement.where)
            if statement.where is not None
            else current
        )
        untouched: Expression = (
            Difference(current, Select(current, statement.where))
            if statement.where is not None
            else Const(
                HistoricalState.empty(self.schema_of(statement.relation))
            )
        )
        # Clip the matched facts: valid := valid ∩ [0, c).  Facts whose
        # clipped valid time is empty disappear, per δ's semantics —
        # terminating at or before a fact's start retracts it outright.
        if statement.chronon == 0:
            window = PeriodSet.empty()
        else:
            window = PeriodSet([(0, statement.chronon)])
        clipped = Derive(
            matched,
            expression=Intersect(
                ValidTime(), TemporalConstant(window)
            ),
        )
        return ModifyState(
            statement.relation, Union(untouched, clipped)
        )


# -- concrete syntax --------------------------------------------------------------


class _TemporalQuelParser(_QuelParser):
    """Adds the temporal statement rules to the Quel parser."""

    def temporal_statement(self) -> Statement:
        if self._ident_word("append"):
            self._advance()
            self._expect_word("to")
            relation = self._expect(TokenType.IDENT).value
            values = self._assignments()
            self._expect_word("valid")
            periods = self._periods()
            return TemporalAppend(relation, values, periods)
        if self._ident_word("delete"):
            self._advance()
            self._expect_word("from")
            relation = self._expect(TokenType.IDENT).value
            where = self._optional_where()
            return TemporalDelete(relation, where)
        if self._ident_word("terminate"):
            self._advance()
            relation = self._expect(TokenType.IDENT).value
            where = self._optional_where()
            self._expect_word("at")
            chronon = self._expect(TokenType.INT).value
            return Terminate(relation, chronon, where)
        token = self._peek()
        raise ParseError(
            f"expected a temporal statement but found {token.value!r} "
            f"at position {token.position}",
            token.position,
        )

    def _expect_word(self, word: str):
        # 'valid' lexes as a keyword (it is in the V domain); accept both.
        token = self._peek()
        if token.is_keyword(word):
            return self._advance()
        return super()._expect_word(word)


def parse_temporal_statement(source: str) -> Statement:
    """Parse a temporal update statement.

    Syntax::

        append to R (a = v, ...) valid [b, e) [+ [b2, e2) ...]
        delete from R [where F]
        terminate R [where F] at INT
    """
    parser = _TemporalQuelParser(tokenize(source))
    statement = parser.temporal_statement()
    parser._expect(TokenType.EOF)
    return statement
