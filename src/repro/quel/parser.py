"""A parser for the Quel-style statement surface syntax.

Grammar::

    statement := append | delete | replace | retrieve
    append    := 'append' 'to' IDENT '(' assign (',' assign)* ')'
    delete    := 'delete' 'from' IDENT ['where' predicate]
    replace   := 'replace' IDENT '(' assign (',' assign)* ')'
                 ['where' predicate]
    retrieve  := 'retrieve' '(' IDENT (',' IDENT)* ')' 'from' IDENT
                 ['where' predicate] ['when' INT] ['as' 'of' numeral]
    assign    := IDENT '=' literal
    numeral   := INT | 'now'

The predicate sub-grammar is the same ``F`` domain as the main language;
we reuse :class:`repro.lang.parser.Parser` for it, so comparisons,
``and``/``or``/``not`` and parentheses all work in ``where`` clauses.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ParseError
from repro.core.txn import NOW
from repro.lang.lexer import tokenize
from repro.lang.parser import Parser
from repro.lang.tokens import Token, TokenType
from repro.quel.statements import (
    Append,
    Delete,
    Replace,
    Retrieve,
    Statement,
)

__all__ = ["parse_statement"]

# Words with meaning only inside Quel statements.  They lex as plain
# identifiers, so the parser matches them by value.
_QUEL_WORDS = {"append", "to", "delete", "from", "replace", "retrieve",
               "where", "as", "of"}


class _QuelParser(Parser):
    """Extends the language parser with Quel-statement rules."""

    def _ident_word(self, word: str) -> bool:
        token = self._peek()
        return token.type is TokenType.IDENT and token.value == word

    def _expect_word(self, word: str) -> Token:
        token = self._peek()
        if not self._ident_word(word):
            raise ParseError(
                f"expected {word!r} but found {token.value!r} at "
                f"position {token.position}",
                token.position,
            )
        return self._advance()

    def statement(self) -> Statement:
        if self._ident_word("append"):
            self._advance()
            self._expect_word("to")
            relation = self._expect(TokenType.IDENT).value
            values = self._assignments()
            return Append(relation, values)
        if self._ident_word("delete"):
            self._advance()
            self._expect_word("from")
            relation = self._expect(TokenType.IDENT).value
            where = self._optional_where()
            return Delete(relation, where)
        if self._ident_word("replace"):
            self._advance()
            relation = self._expect(TokenType.IDENT).value
            assignments = self._assignments()
            where = self._optional_where()
            return Replace(relation, assignments, where)
        if self._ident_word("retrieve"):
            self._advance()
            self._expect(TokenType.LPAREN)
            names = [self._expect(TokenType.IDENT).value]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                names.append(self._expect(TokenType.IDENT).value)
            self._expect(TokenType.RPAREN)
            self._expect_word("from")
            relation = self._expect(TokenType.IDENT).value
            where = self._optional_where()
            when = None
            if self._ident_word("when"):
                self._advance()
                when = self._expect(TokenType.INT).value
            as_of: Any = NOW
            if self._ident_word("as"):
                self._advance()
                self._expect_word("of")
                as_of = self._numeral()
            return Retrieve(names, relation, where, as_of, when)
        token = self._peek()
        raise ParseError(
            f"expected a Quel statement but found {token.value!r} at "
            f"position {token.position}",
            token.position,
        )

    def _assignments(self) -> dict[str, Any]:
        self._expect(TokenType.LPAREN)
        values: dict[str, Any] = {}
        name = self._expect(TokenType.IDENT).value
        self._expect(TokenType.EQ)
        values[name] = self._literal()
        while self._peek().type is TokenType.COMMA:
            self._advance()
            name = self._expect(TokenType.IDENT).value
            if name in values:
                raise ParseError(f"attribute {name!r} assigned twice")
            self._expect(TokenType.EQ)
            values[name] = self._literal()
        self._expect(TokenType.RPAREN)
        return values

    def _optional_where(self):
        if self._ident_word("where"):
            self._advance()
            return self.predicate()
        return None


def parse_statement(source: str) -> Statement:
    """Parse a single Quel-style statement."""
    parser = _QuelParser(tokenize(source))
    statement = parser.statement()
    parser._expect(TokenType.EOF)
    return statement
