"""Translation of Quel-style statements into the algebra.

The translator needs a *catalog* — a mapping from relation identifiers to
their schemas — because ``append`` and ``replace`` must build constant
states of the right shape at translation time (the paper's DBMS would read
this from its data dictionary).

Every update statement becomes one ``modify_state`` command whose
expression uses only algebraic operators over ``ρ(R, now)``, following
Section 3.5's recipe:

* *append*: the new state "contains all of the tuples in [the] relation's
  most recent state plus one or more tuples not in the relation's most
  recent state" — ``ρ ∪ constant``.
* *delete*: "a proper subset of the tuples in [the] relation's most recent
  state" — ``ρ − σ_F(ρ)``.
* *replace*: "differs from [the] relation's most recent state only in the
  attribute values of one or more tuples" — the unmatched tuples are kept
  (``ρ − σ_F(ρ)``), and the matched tuples are rebuilt with the new
  constant values by ``π`` / ``×`` / rename, then unioned back in.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import TranslationError
from repro.core.commands import ModifyState
from repro.core.expressions import (
    Const,
    Difference,
    Expression,
    Product,
    Project,
    Rename,
    Rollback,
    Select,
    Union,
)
from repro.core.txn import NOW
from repro.quel.statements import (
    Append,
    Delete,
    Replace,
    Retrieve,
    Statement,
)
from repro.snapshot.schema import Schema
from repro.snapshot.state import SnapshotState

__all__ = ["QuelTranslator"]


class QuelTranslator:
    """Translate Quel-style statements into algebra commands/expressions.

    >>> catalog = {'faculty': Schema(['name', 'rank'])}
    >>> t = QuelTranslator(catalog)
    >>> cmd = t.translate(Append('faculty',
    ...                          {'name': 'merrie', 'rank': 'assistant'}))
    """

    def __init__(self, catalog: Mapping[str, Schema]) -> None:
        self._catalog = dict(catalog)

    def schema_of(self, relation: str) -> Schema:
        """The cataloged schema of a relation."""
        try:
            return self._catalog[relation]
        except KeyError:
            raise TranslationError(
                f"relation {relation!r} is not in the catalog; known "
                f"relations: {sorted(self._catalog)}"
            ) from None

    # -- statement dispatch ------------------------------------------------

    def translate(self, statement: Statement) -> ModifyState:
        """Translate an *update* statement to a ``modify_state`` command."""
        if isinstance(statement, Append):
            return self._translate_append(statement)
        if isinstance(statement, Delete):
            return self._translate_delete(statement)
        if isinstance(statement, Replace):
            return self._translate_replace(statement)
        if isinstance(statement, Retrieve):
            raise TranslationError(
                "retrieve is a query, not an update; use "
                "translate_retrieve"
            )
        raise TranslationError(f"unknown statement {statement!r}")

    def translate_retrieve(self, statement: Retrieve) -> Expression:
        """Translate a ``retrieve`` statement to a side-effect-free
        expression.

        The ``as of`` clause maps to the rollback operator (transaction
        time); the ``when`` clause maps to the valid-time operator
        ``δ_{valid-at}`` (for historical/temporal relations).
        """
        expression: Expression = Rollback(
            statement.relation, statement.as_of
        )
        if statement.when is not None:
            from repro.core.expressions import Derive
            from repro.historical.predicates import ValidAt
            from repro.historical.temporal_exprs import ValidTime

            expression = Derive(
                expression,
                predicate=ValidAt(ValidTime(), statement.when),
            )
        if statement.where is not None:
            expression = Select(expression, statement.where)
        schema = self.schema_of(statement.relation)
        for name in statement.names:
            if name not in schema:
                raise TranslationError(
                    f"retrieve names unknown attribute {name!r} of "
                    f"{statement.relation!r}"
                )
        if tuple(statement.names) != schema.names:
            expression = Project(expression, statement.names)
        return expression

    # -- update translations ---------------------------------------------------

    def _translate_append(self, statement: Append) -> ModifyState:
        schema = self.schema_of(statement.relation)
        self._check_names(
            statement.values, schema, statement.relation, exact=True
        )
        constant = Const(SnapshotState(schema, [statement.values]))
        current = Rollback(statement.relation, NOW)
        return ModifyState(statement.relation, Union(current, constant))

    def _translate_delete(self, statement: Delete) -> ModifyState:
        schema = self.schema_of(statement.relation)
        current = Rollback(statement.relation, NOW)
        if statement.where is None:
            # Delete everything: the new state is the empty state.
            empty = Const(SnapshotState.empty(schema))
            return ModifyState(statement.relation, empty)
        doomed = Select(current, statement.where)
        return ModifyState(
            statement.relation, Difference(current, doomed)
        )

    def _translate_replace(self, statement: Replace) -> ModifyState:
        schema = self.schema_of(statement.relation)
        self._check_names(
            statement.assignments, schema, statement.relation, exact=False
        )
        current = Rollback(statement.relation, NOW)
        matched: Expression = (
            Select(current, statement.where)
            if statement.where is not None
            else current
        )
        untouched: Expression = (
            Difference(current, Select(current, statement.where))
            if statement.where is not None
            else Const(SnapshotState.empty(schema))
        )

        # Rebuild the matched tuples with the assigned constants:
        #   1. project away the assigned attributes;
        #   2. cross with a one-tuple constant carrying the new values
        #      (under temporary names to avoid collisions);
        #   3. rename the temporaries back and restore schema order.
        assigned = list(statement.assignments)
        kept = [n for n in schema.names if n not in statement.assignments]
        temp_names = {name: f"__new_{name}" for name in assigned}
        const_schema = Schema(
            [schema[name].renamed(temp_names[name]) for name in assigned]
        )
        const_values = [
            [statement.assignments[name] for name in assigned]
        ]
        new_values = Const(SnapshotState(const_schema, const_values))

        if kept:
            rebuilt: Expression = Product(
                Project(matched, kept), new_values
            )
        else:
            # Every attribute is assigned: the replacement collapses to
            # the constant tuple (if anything matched).  We keep the
            # product form with a projection to the empty prefix being
            # impossible, so special-case: matched non-empty => constant.
            # π over zero attributes is not in the algebra; instead use
            # the constant directly — replacing every attribute of every
            # matched tuple yields exactly the constant tuple whenever a
            # match exists.  Expressible as: σ is decidable only at run
            # time, so we conservatively union the constant in; when
            # nothing matched the constant still enters the state.  To
            # stay faithful we reject this corner instead.
            raise TranslationError(
                "replace assigning every attribute is not expressible "
                "without generalized projection; delete + append instead"
            )
        renamed = Rename(
            rebuilt, {temp_names[name]: name for name in assigned}
        )
        reordered = Project(renamed, list(schema.names))
        return ModifyState(
            statement.relation, Union(untouched, reordered)
        )

    @staticmethod
    def _check_names(
        values: Mapping[str, object],
        schema: Schema,
        relation: str,
        exact: bool,
    ) -> None:
        extra = set(values) - set(schema.names)
        if extra:
            raise TranslationError(
                f"unknown attributes {sorted(extra)} for relation "
                f"{relation!r} with schema {schema.names}"
            )
        if exact:
            missing = set(schema.names) - set(values)
            if missing:
                raise TranslationError(
                    f"append to {relation!r} must supply every attribute; "
                    f"missing {sorted(missing)}"
                )
