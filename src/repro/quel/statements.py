"""ASTs for the Quel-style update sub-language."""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from repro.errors import TranslationError
from repro.core.txn import NOW, Numeral
from repro.snapshot.predicates import Predicate

__all__ = ["Statement", "Append", "Delete", "Replace", "Retrieve"]


class Statement:
    """Base class for Quel-style statements."""

    __slots__ = ()


class Append(Statement):
    """``append to R (a1 = v1, ..., ak = vk)`` — add one tuple.

    ``values`` maps every attribute of ``R``'s schema to a constant.
    """

    __slots__ = ("relation", "values")

    def __init__(self, relation: str, values: Mapping[str, Any]) -> None:
        if not values:
            raise TranslationError("append requires at least one value")
        self.relation = relation
        self.values = dict(values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k} = {v!r}" for k, v in self.values.items())
        return f"append to {self.relation} ({inner})"


class Delete(Statement):
    """``delete from R [where F]`` — remove the tuples satisfying ``F``
    (all tuples when ``F`` is omitted)."""

    __slots__ = ("relation", "where")

    def __init__(
        self, relation: str, where: Optional[Predicate] = None
    ) -> None:
        self.relation = relation
        self.where = where

    def __repr__(self) -> str:
        suffix = f" where {self.where!r}" if self.where is not None else ""
        return f"delete from {self.relation}{suffix}"


class Replace(Statement):
    """``replace R (a1 = v1, ...) [where F]`` — set the listed attributes
    to the given constants on every tuple satisfying ``F``."""

    __slots__ = ("relation", "assignments", "where")

    def __init__(
        self,
        relation: str,
        assignments: Mapping[str, Any],
        where: Optional[Predicate] = None,
    ) -> None:
        if not assignments:
            raise TranslationError(
                "replace requires at least one assignment"
            )
        self.relation = relation
        self.assignments = dict(assignments)
        self.where = where

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{k} = {v!r}" for k, v in self.assignments.items()
        )
        suffix = f" where {self.where!r}" if self.where is not None else ""
        return f"replace {self.relation} ({inner}){suffix}"


class Retrieve(Statement):
    """``retrieve (a1, ...) from R [where F] [when V] [as of N]`` — a query.

    ``as_of`` defaults to ``now`` (the paper's ``∞``); an integer rolls the
    relation back to that transaction first (transaction time).  ``when``
    is the TQuel-flavored valid-time clause for historical/temporal
    relations: keep only the facts valid at the given chronon.
    """

    __slots__ = ("relation", "names", "where", "as_of", "when")

    def __init__(
        self,
        names: Sequence[str],
        relation: str,
        where: Optional[Predicate] = None,
        as_of: Numeral = NOW,
        when: Optional[int] = None,
    ) -> None:
        if not names:
            raise TranslationError(
                "retrieve requires at least one attribute"
            )
        self.names = tuple(names)
        self.relation = relation
        self.where = where
        self.as_of = as_of
        self.when = when

    def __repr__(self) -> str:
        where = f" where {self.where!r}" if self.where is not None else ""
        when = f" when {self.when}" if self.when is not None else ""
        return (
            f"retrieve ({', '.join(self.names)}) from {self.relation}"
            f"{where}{when} as of {self.as_of!r}"
        )
