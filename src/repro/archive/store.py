"""The archive store: offline segments of (state, txn) pairs."""

from __future__ import annotations

import bisect
import json
from typing import Any, Optional

from repro.errors import StorageError
from repro.core.txn import TransactionNumber
from repro.persistence.json_codec import state_from_dict, state_to_dict

__all__ = ["ArchivedSegment", "ArchiveStore"]


class ArchivedSegment:
    """One archived run of a relation's state sequence.

    Pairs are strictly increasing in transaction number, matching the
    invariant of the live sequence they were cut from.
    """

    __slots__ = ("identifier", "pairs")

    def __init__(
        self,
        identifier: str,
        pairs: list[tuple[Any, TransactionNumber]],
    ) -> None:
        previous = -1
        for _, txn in pairs:
            if txn <= previous:
                raise StorageError(
                    "archived pairs must be strictly increasing in "
                    f"transaction number; saw {txn} after {previous}"
                )
            previous = txn
        self.identifier = identifier
        self.pairs = list(pairs)

    @property
    def first_txn(self) -> TransactionNumber:
        return self.pairs[0][1]

    @property
    def last_txn(self) -> TransactionNumber:
        return self.pairs[-1][1]

    def find_state(self, txn: TransactionNumber):
        """FINDSTATE within this segment; None when txn precedes it."""
        txns = [t for _, t in self.pairs]
        index = bisect.bisect_right(txns, txn)
        if index == 0:
            return None
        return self.pairs[index - 1][0]

    def __len__(self) -> int:
        return len(self.pairs)


class ArchiveStore:
    """Archived segments per relation, with JSON (de)serialization."""

    def __init__(self) -> None:
        self._segments: dict[str, list[ArchivedSegment]] = {}

    def add_segment(self, segment: ArchivedSegment) -> None:
        """Append a segment; it must come strictly after any previously
        archived segment of the same relation."""
        if not segment.pairs:
            raise StorageError("cannot archive an empty segment")
        existing = self._segments.setdefault(segment.identifier, [])
        if existing and segment.first_txn <= existing[-1].last_txn:
            raise StorageError(
                f"segment for {segment.identifier!r} overlaps the "
                "previously archived history"
            )
        existing.append(segment)

    def segments_of(self, identifier: str) -> tuple[ArchivedSegment, ...]:
        """All archived segments of a relation, oldest first."""
        return tuple(self._segments.get(identifier, ()))

    def find_state(self, identifier: str, txn: TransactionNumber):
        """FINDSTATE across the relation's archived segments; None when
        nothing archived qualifies."""
        best = None
        for segment in self._segments.get(identifier, ()):
            if segment.first_txn > txn:
                break
            hit = segment.find_state(txn)
            if hit is not None:
                best = hit
        return best

    def last_archived_txn(
        self, identifier: str
    ) -> Optional[TransactionNumber]:
        """The newest archived transaction of a relation, or None."""
        segments = self._segments.get(identifier)
        if not segments:
            return None
        return segments[-1].last_txn

    def stored_states(self) -> int:
        """Total archived (state, txn) pairs across all relations."""
        return sum(
            len(segment)
            for segments in self._segments.values()
            for segment in segments
        )

    # -- offline representation -------------------------------------------------

    def dumps(self) -> str:
        """Serialize the whole archive to JSON."""
        payload = {
            "format": "repro-archive",
            "version": 1,
            "segments": [
                {
                    "identifier": segment.identifier,
                    "pairs": [
                        {"txn": txn, "state": state_to_dict(state)}
                        for state, txn in segment.pairs
                    ],
                }
                for segments in self._segments.values()
                for segment in segments
            ],
        }
        return json.dumps(payload)

    @classmethod
    def loads(cls, text: str) -> "ArchiveStore":
        """Deserialize an archive previously produced by :meth:`dumps`."""
        payload = json.loads(text)
        if payload.get("format") != "repro-archive":
            raise StorageError("payload is not a repro archive dump")
        store = cls()
        for entry in payload["segments"]:
            pairs = [
                (state_from_dict(item["state"]), item["txn"])
                for item in entry["pairs"]
            ]
            store.add_segment(
                ArchivedSegment(entry["identifier"], pairs)
            )
        return store
