"""Migration of old rollback history into an archive, and tiered reads."""

from __future__ import annotations

from typing import Optional

from repro.errors import RelationTypeError, StorageError
from repro.core.database import Database
from repro.core.expressions import EMPTY_SET
from repro.core.relation import Relation
from repro.core.txn import NOW, Numeral, TransactionNumber, is_now
from repro.archive.store import ArchivedSegment, ArchiveStore

__all__ = ["archive_before", "TieredReader"]


def archive_before(
    database: Database,
    identifier: str,
    cutoff_txn: TransactionNumber,
    store: ArchiveStore,
) -> Database:
    """Move the relation's (state, txn) pairs with txn < ``cutoff_txn``
    into ``store``; return the database with only the remaining pairs.

    Only rollback and temporal relations can be archived (snapshot and
    historical relations have no history to migrate).  Archiving is a
    *physical* reorganization: the information content of (live database,
    archive) is unchanged, which :class:`TieredReader` and the tests make
    precise.  The database's transaction number is untouched — archiving
    is not a transaction on the data.
    """
    relation = database.require(identifier)
    if not relation.rtype.keeps_history:
        raise RelationTypeError(
            f"cannot archive {relation.rtype.value} relation "
            f"{identifier!r}; only rollback and temporal relations "
            "retain history"
        )
    old_pairs = [
        (state, txn)
        for state, txn in relation.rstate
        if txn < cutoff_txn
    ]
    if not old_pairs:
        raise StorageError(
            f"nothing to archive: {identifier!r} has no states before "
            f"transaction {cutoff_txn}"
        )
    if len(old_pairs) == relation.history_length:
        raise StorageError(
            f"refusing to archive the entire history of {identifier!r}; "
            "keep at least the most recent state live"
        )
    live_pairs = [
        (state, txn)
        for state, txn in relation.rstate
        if txn >= cutoff_txn
    ]
    store.add_segment(ArchivedSegment(identifier, old_pairs))
    live_relation = Relation(relation.rtype, live_pairs)
    return database.with_binding(
        identifier, live_relation, database.transaction_number
    )


class TieredReader:
    """``FINDSTATE`` across the live database and an archive.

    The paper's ``ρ(I, N)`` semantics is preserved: a probe transaction
    that predates the live relation's first recorded state is answered
    from the archive; everything else is answered live.
    """

    def __init__(self, database: Database, store: ArchiveStore) -> None:
        self._database = database
        self._store = store

    @property
    def database(self) -> Database:
        """The live database value."""
        return self._database

    def rollback(self, identifier: str, numeral: Numeral = NOW):
        """``ρ(I, N)`` over live + archived history.  Returns the
        paper's ∅ marker when no state anywhere qualifies."""
        relation = self._database.require(identifier)
        probe = (
            self._database.transaction_number
            if is_now(numeral)
            else int(numeral)  # type: ignore[arg-type]
        )
        live_txns = relation.transaction_numbers
        if live_txns and probe >= live_txns[0]:
            return relation.find_state(probe)
        archived = self._store.find_state(identifier, probe)
        if archived is None:
            return EMPTY_SET
        return archived

    def history_length(self, identifier: str) -> int:
        """Total recorded states, live plus archived."""
        live = self._database.require(identifier).history_length
        archived = sum(
            len(segment)
            for segment in self._store.segments_of(identifier)
        )
        return live + archived
