"""Archival of rollback history — the paper's "migrate to tape".

Section 3.1 of the paper: "(We assume that the database administrator
will have additional facilities to migrate rollback relations to tape.)"
This package supplies those facilities:

* :func:`archive_before` — split a rollback/temporal relation's state
  sequence at a cutoff transaction: older (state, txn) pairs move into an
  :class:`ArchiveStore` segment (the "tape"), the live database keeps the
  rest.  The split never loses information.
* :class:`ArchiveStore` — an append-only store of archived segments with
  its own ``FINDSTATE`` and a JSON representation (via
  :mod:`repro.persistence` state codecs) for genuine offline storage.
* :class:`TieredReader` — answers ``ρ(I, N)`` across the live database
  and the archive transparently, so queries keep the paper's semantics
  after migration (verified by tests: tiered reads ≡ reads against the
  un-archived database at every transaction).
"""

from repro.archive.store import ArchiveStore, ArchivedSegment
from repro.archive.migrate import archive_before, TieredReader

__all__ = [
    "ArchiveStore",
    "ArchivedSegment",
    "archive_before",
    "TieredReader",
]
